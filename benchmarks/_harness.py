"""Shared benchmark harness: method factories scaled by REPRO_BENCH_SCALE.

Every ``bench_*.py`` regenerates one table or figure of the paper. The
harness centralizes how each method is instantiated at the active scale so
all benches agree on hyperparameters. Set ``REPRO_BENCH_SCALE=smoke`` for a
fast pass (2 datasets, few epochs) or ``paper`` (default) for the full
evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import (
    BertMatcher, Dader, DeepMatcher, Ditto, Matcher, Rotom, SentenceBert,
    TDmatch, TDmatchConfig, TDmatchStar,
)
from repro.core import PromptEM, PromptEMConfig
from repro.eval.protocol import BenchScale

MODEL_NAME = "minilm-base"


class PromptEMMatcher(Matcher):
    """Adapter exposing the PromptEM facade through the Matcher interface."""

    def __init__(self, config: PromptEMConfig, name: str = "PromptEM") -> None:
        self.name = name
        self._facade = PromptEM(config)

    def fit(self, view):
        self._facade.fit(view)
        return self

    def predict(self, pairs):
        return self._facade.predict(pairs)

    def memory_bytes(self):
        model = self._facade.model
        if model is None:
            return 0
        return model.num_parameters() * 4 * 4

    @property
    def report(self):
        return self._facade.report


def promptem_config(scale: BenchScale, **overrides) -> PromptEMConfig:
    """PromptEM hyperparameters at the given scale."""
    base = dict(
        teacher_epochs=scale.teacher_epochs,
        student_epochs=scale.student_epochs,
        mc_passes=scale.mc_passes,
        unlabeled_cap=scale.unlabeled_cap,
        model_name=MODEL_NAME,
    )
    base.update(overrides)
    return PromptEMConfig(**base)


def tdmatch_config(scale: BenchScale) -> TDmatchConfig:
    if scale.name == "smoke":
        return TDmatchConfig(num_walks=6, walk_length=10, dimensions=24)
    return TDmatchConfig(num_walks=20, walk_length=20, dimensions=48)


def method_factories(scale: BenchScale) -> Dict[str, Callable[[], Matcher]]:
    """All nine Table 2 methods, in paper row order."""
    lm_epochs = scale.lm_epochs
    return {
        "DeepMatcher": lambda: DeepMatcher(epochs=lm_epochs),
        "BERT": lambda: BertMatcher(epochs=lm_epochs, model_name=MODEL_NAME),
        "SentenceBERT": lambda: SentenceBert(epochs=lm_epochs,
                                             model_name=MODEL_NAME),
        "Ditto": lambda: Ditto(epochs=lm_epochs, model_name=MODEL_NAME),
        "DADER": lambda: Dader(epochs=max(lm_epochs // 2, 4),
                               model_name=MODEL_NAME),
        "Rotom": lambda: Rotom(epochs=max(lm_epochs // 2, 4),
                               model_name=MODEL_NAME),
        "TDmatch": lambda: TDmatch(tdmatch_config(scale)),
        "TDmatch*": lambda: TDmatchStar(tdmatch_config(scale)),
        "PromptEM": lambda: PromptEMMatcher(promptem_config(scale)),
    }


def ablation_factories(scale: BenchScale) -> Dict[str, Callable[[], Matcher]]:
    """The three Table 2 ablation rows."""
    return {
        "PromptEM w/o PT": lambda: PromptEMMatcher(
            promptem_config(scale).without_prompt_tuning(), "PromptEM w/o PT"),
        "PromptEM w/o LST": lambda: PromptEMMatcher(
            promptem_config(scale).without_self_training(), "PromptEM w/o LST"),
        "PromptEM w/o DDP": lambda: PromptEMMatcher(
            promptem_config(scale).without_pruning(), "PromptEM w/o DDP"),
    }


def warm_backbone() -> None:
    """Force the pre-trained checkpoint to exist before timing anything."""
    from repro.lm import load_pretrained

    load_pretrained(MODEL_NAME)


#: fractional slack when comparing headline speedups across runs: timing
#: noise on shared CI boxes should not trip the regression guard, a real
#: regression should
_SPEEDUP_SLACK = 0.90


class BenchRegression(RuntimeError):
    """Refusing to overwrite a BENCH_*.json with a worse headline speedup.

    Raised by :func:`emit` when the new run's headline speedup falls below
    ``_SPEEDUP_SLACK`` x the committed one at the same scale. Re-run with
    ``force=True`` (or ``REPRO_BENCH_FORCE=1``) to record the regression
    deliberately -- e.g. after an intentional trade-off."""


def _headline_speedup(payload) -> float:
    """Max value under any key containing "speedup", recursively; 0 when
    the payload carries none."""
    best = 0.0
    if isinstance(payload, dict):
        for key, value in payload.items():
            if "speedup" in str(key) and isinstance(value, (int, float)):
                best = max(best, float(value))
            else:
                best = max(best, _headline_speedup(value))
    elif isinstance(payload, (list, tuple)):
        for value in payload:
            best = max(best, _headline_speedup(value))
    return best


def emit(table: str, name: str, data=None, force: bool = False,
         results_dir=None) -> str:
    """Print a result table and persist it under benchmarks/results/.

    pytest captures stdout by default, so the persisted copy is what the
    EXPERIMENTS.md write-up references. Alongside the human-readable
    ``<name>.txt``, a machine-readable ``BENCH_<name>.json`` records the
    structured numbers (throughput, speedups, parity deltas -- whatever
    ``data`` carries) so the perf trajectory is diffable across PRs; with
    no ``data``, the JSON still captures scale + table for tracking.

    Overwrite protection: when a committed ``BENCH_<name>.json`` at the
    *same scale* carries a higher headline speedup (the max over any
    ``*speedup*`` key, with :data:`_SPEEDUP_SLACK` noise slack), emit
    raises :class:`BenchRegression` instead of silently regressing the
    recorded trajectory. Pass ``force=True`` or set ``REPRO_BENCH_FORCE=1``
    to overwrite anyway.
    """
    import json
    import os
    from pathlib import Path

    results = Path(results_dir) if results_dir is not None else \
        Path(__file__).resolve().parent / "results"
    results.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "scale": os.environ.get("REPRO_BENCH_SCALE", "paper"),
        "table": table.splitlines(),
    }
    if data is not None:
        payload["data"] = _jsonable(data)

    target = results / f"BENCH_{name}.json"
    force = force or os.environ.get("REPRO_BENCH_FORCE", "") == "1"
    if target.exists() and not force:
        try:
            committed = json.loads(target.read_text())
        except ValueError:
            committed = {}
        if committed.get("scale") == payload["scale"]:
            old = _headline_speedup(committed.get("data"))
            new = _headline_speedup(payload.get("data"))
            if old > 0 and new < old * _SPEEDUP_SLACK:
                raise BenchRegression(
                    f"refusing to overwrite {target.name}: headline "
                    f"speedup {new:.2f}x is below the committed "
                    f"{old:.2f}x (slack {_SPEEDUP_SLACK}); pass "
                    f"force=True or set REPRO_BENCH_FORCE=1 to record "
                    f"the regression deliberately")

    (results / f"{name}.txt").write_text(table + "\n")
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("\n" + table)
    return table


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays and tuples for json.dumps."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return value
