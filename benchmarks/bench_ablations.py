"""Extra ablations for the design choices DESIGN.md calls out.

(a) pruning fraction e_r sweep -- how much can DDP prune before F1 drops;
(b) MC-Dropout pass count -- pseudo-label quality vs the number of
    stochastic passes (paper default 10);
(c) pseudo-label ratio u_r sweep (the paper's grid {0.05..0.25}).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _harness import PromptEMMatcher, emit, promptem_config  # noqa: E402
from repro.core import Trainer, TrainerConfig, select_pseudo_labels  # noqa: E402
from repro.core.matcher import PromptEM  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_table  # noqa: E402
from repro.eval.metrics import pseudo_label_quality  # noqa: E402

DATASET = "REL-HETER"


def _teacher_and_view(scale):
    runner = ExperimentRunner(scale)
    view = runner.view_for(DATASET, seed=scale.seeds[0])
    config = promptem_config(scale)
    facade = PromptEM(config)
    facade._ensure_backbone()
    facade._fit_summarizer(view.labeled)
    teacher = facade._make_model()
    Trainer(teacher, TrainerConfig(epochs=config.teacher_epochs,
                                   batch_size=config.batch_size,
                                   lr=config.lr)).fit(view.labeled,
                                                      valid=view.valid)
    return teacher, view


def run_prune_ratio_sweep() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    rows = []
    for e_r in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        config = promptem_config(
            scale, prune_ratio=e_r,
            use_dynamic_pruning=e_r > 0,
            prune_frequency=max(scale.student_epochs // 3, 2))
        result = runner.run(
            f"e_r={e_r}", lambda c=config: PromptEMMatcher(c), DATASET,
            seed=scale.seeds[0], measure_resources=True)
        rows.append([f"{e_r:.1f}", round(result.prf.f1, 1),
                     result.resources.formatted_time])
    return render_table(["e_r", "F1", "train time"], rows,
                        title=f"Ablation: DDP prune ratio on {DATASET}")


def run_mc_passes_sweep() -> str:
    scale = bench_scale()
    teacher, view = _teacher_and_view(scale)
    pool = view.unlabeled[: scale.unlabeled_cap]
    truth = np.array(view.unlabeled_true_labels[: scale.unlabeled_cap])
    rows = []
    for passes in (2, 5, 10, 20):
        selection = select_pseudo_labels(teacher, pool, ratio=0.1,
                                         passes=passes,
                                         strategy="uncertainty")
        tpr, tnr = pseudo_label_quality(truth[selection.indices],
                                        selection.pseudo_labels)
        rows.append([passes, round(tpr, 3), round(tnr, 3)])
    return render_table(["MC passes", "TPR", "TNR"], rows, decimals=3,
                        title=f"Ablation: MC-Dropout passes on {DATASET}")


def run_pseudo_ratio_sweep() -> str:
    scale = bench_scale()
    teacher, view = _teacher_and_view(scale)
    pool = view.unlabeled[: scale.unlabeled_cap]
    truth = np.array(view.unlabeled_true_labels[: scale.unlabeled_cap])
    rows = []
    for u_r in (0.05, 0.10, 0.15, 0.20, 0.25):
        selection = select_pseudo_labels(teacher, pool, ratio=u_r,
                                         passes=scale.mc_passes,
                                         strategy="uncertainty")
        tpr, tnr = pseudo_label_quality(truth[selection.indices],
                                        selection.pseudo_labels)
        rows.append([f"{u_r:.2f}", len(selection.indices),
                     round(tpr, 3), round(tnr, 3)])
    return render_table(["u_r", "N_P", "TPR", "TNR"], rows, decimals=3,
                        title=f"Ablation: pseudo-label ratio u_r on {DATASET}")


def test_ablation_prune_ratio(benchmark):
    table = benchmark.pedantic(run_prune_ratio_sweep, rounds=1, iterations=1)
    emit(table, "ablation_prune_ratio")


def test_ablation_mc_passes(benchmark):
    table = benchmark.pedantic(run_mc_passes_sweep, rounds=1, iterations=1)
    emit(table, "ablation_mc_passes")


def test_ablation_pseudo_ratio(benchmark):
    table = benchmark.pedantic(run_pseudo_ratio_sweep, rounds=1, iterations=1)
    emit(table, "ablation_pseudo_ratio")
