"""ANN blocking benchmark: sub-linear dense candidate generation vs the
exact sparse overlap top-k path.

Catalog model: a seeded synthetic corpus of duplicate *groups* (the GEM
blocking shape -- every entity has a handful of near-copies, everything
else is far). Each entity yields both

* a **token set** (core tokens shared within the group plus per-record
  noise, zipf-weighted vocabulary) feeding the repo's own exact sparse
  path -- :class:`repro.serve.ServingIndex.candidates`, which walks the
  postings of every query token and scores all touched records; and
* an **embedding** (unit vector: group prototype + jitter) feeding the
  :mod:`repro.ann` indexes, quantized to int8 and probed with the fused
  kernels.

Per query the two arms do their full candidate-generation work for the
same top-k budget; the ``speedup`` column is sparse-per-query time over
ANN-per-query time. Recall is measured against the *exact float32 dense
top-k* (ties id-broken, same rule everywhere), and the headline speedup
is the best config whose recall clears 0.95 -- a fast config below the
recall bar does not count. ``int8_agreement`` reports full-scan int8
vs float32 top-k membership overlap (the quantization-only error,
config-independent), with its >= 0.99 acceptance bar.

Embedding the catalog with the frozen bi-encoder is a one-time build
cost, reported separately (measured on a subsample, extrapolated) and
never part of the per-query timing.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.ann import (  # noqa: E402
    RecordEncoder, blocked_topk_dot, exact_topk_dot, make_index,
    quantize_int8,
)
from repro.data.records import EntityRecord  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.serve import ServingIndex  # noqa: E402


def synthetic_catalog(n, n_queries, dim=64, group=10, vocab=20000,
                      core_tokens=8, noise_tokens=4, jitter=0.15, seed=0):
    """Seeded duplicate-group corpus: token sets + unit embeddings.

    Returns ``(texts, vectors, query_texts, query_vectors)``; queries are
    fresh perturbations of existing groups, so each query has ~``group``
    true near-duplicates in the catalog.
    """
    rng = np.random.default_rng(seed)
    entities = -(-n // group)
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    weights = (1.0 / ranks ** 1.07)
    weights /= weights.sum()

    protos = rng.normal(size=(entities, dim)).astype(np.float32)
    protos /= np.linalg.norm(protos, axis=1, keepdims=True)
    cores = [rng.choice(vocab, size=core_tokens, replace=False, p=weights)
             for _ in range(entities)]

    def make_row(entity):
        tokens = np.concatenate([
            cores[entity],
            rng.choice(vocab, size=noise_tokens, replace=False, p=weights)])
        text = " ".join(f"tok{t}" for t in tokens)
        noise = rng.normal(size=dim).astype(np.float32)
        noise *= jitter / np.linalg.norm(noise)
        vector = protos[entity] + noise
        return text, vector / np.linalg.norm(vector)

    texts, vectors = [], np.empty((n, dim), dtype=np.float32)
    for i in range(n):
        texts.append(None)
        texts[i], vectors[i] = make_row(i // group)
    q_texts, q_vectors = [], np.empty((n_queries, dim), dtype=np.float32)
    picks = rng.integers(0, entities, size=n_queries)
    for i in range(n_queries):
        q_texts.append(None)
        q_texts[i], q_vectors[i] = make_row(int(picks[i]))
    return texts, vectors, q_texts, q_vectors


def build_sparse_index(texts):
    index = ServingIndex(threshold=0.0, default_k=10)
    index.add_many(EntityRecord.text_record(f"r{i:06d}", text)
                   for i, text in enumerate(texts))
    return index


def time_sparse(index, query_records, k):
    started = time.perf_counter()
    for record in query_records:
        index.candidates(record, k)
    return (time.perf_counter() - started) / len(query_records)


def time_ann(index, query_vectors, k):
    results = []
    started = time.perf_counter()
    for i in range(query_vectors.shape[0]):
        results.append(index.search(query_vectors[i], k))
    elapsed = time.perf_counter() - started
    return elapsed / query_vectors.shape[0], results


def dense_recall(results, query_vectors, vectors, k):
    """Fraction of exact float32 top-k ids the ANN results retained."""
    hits = wanted = 0
    for i, found in enumerate(results):
        rows, _ = exact_topk_dot(query_vectors[i], vectors, k)
        exact = {f"r{r:06d}" for r in rows.tolist()}
        got = {record_id for record_id, _ in found}
        hits += len(exact & got)
        wanted += min(k, len(exact))
    return hits / wanted if wanted else 1.0


def int8_agreement(query_vectors, vectors, codes, scales, k):
    """Full-scan int8 top-k membership vs exact float32 top-k."""
    agree = total = 0
    for i in range(query_vectors.shape[0]):
        exact_rows, _ = exact_topk_dot(query_vectors[i], vectors, k)
        int8_rows, _ = blocked_topk_dot(query_vectors[i], codes, scales, k)
        exact = set(exact_rows.tolist())
        agree += len(exact & set(int8_rows.tolist()))
        total += min(k, len(exact))
    return agree / total if total else 1.0


def embed_build_cost(n_total, sample=1000, max_len=32):
    """One-time encoder cost, measured on a sample and extrapolated."""
    rng = np.random.default_rng(7)
    records = [EntityRecord.text_record(
        f"e{i}", " ".join(f"tok{t}" for t in rng.integers(0, 20000, 12)))
        for i in range(sample)]
    encoder = RecordEncoder(model_name=MODEL_NAME, max_len=max_len)
    encoder.encode_records(records[:32])        # warm the checkpoint
    started = time.perf_counter()
    encoder.encode_records(records)
    elapsed = time.perf_counter() - started
    per_record = elapsed / sample
    return {"records_per_sec": 1.0 / per_record,
            "full_catalog_seconds": per_record * n_total}


def ann_configs(n):
    nlist = max(16, int(np.sqrt(n) * 2))
    return [
        ("ivf", {"nlist": nlist, "nprobe": 2}),
        ("ivf", {"nlist": nlist, "nprobe": 4}),
        ("ivf", {"nlist": nlist, "nprobe": 8}),
        ("ivf", {"nlist": nlist, "nprobe": 16}),
        ("lsh", {"num_bands": 16, "band_bits": 14, "probes": 2}),
    ]


def run_ann_blocking_bench(n=None, n_queries=None, k=10, seed=0):
    scale = bench_scale()
    if n is None:
        n = 10_000 if scale.name == "smoke" else 100_000
    if n_queries is None:
        n_queries = 50 if scale.name == "smoke" else 200

    texts, vectors, q_texts, q_vectors = synthetic_catalog(
        n, n_queries, seed=seed)
    codes, scales_arr = quantize_int8(vectors)

    sparse = build_sparse_index(texts)
    query_records = [EntityRecord.text_record(f"q{i:04d}", text)
                     for i, text in enumerate(q_texts)]
    time_sparse(sparse, query_records[: max(2, n_queries // 10)], k)  # warm
    sparse_s = time_sparse(sparse, query_records, k)

    agreement = int8_agreement(q_vectors, vectors, codes, scales_arr, k)

    rows, configs_data = [], []
    for kind, kwargs in ann_configs(n):
        index = make_index(kind, vectors.shape[1], seed=seed, **kwargs)
        build_started = time.perf_counter()
        if hasattr(index, "train"):
            index.train(vectors)
        index.add_many((f"r{i:06d}", vectors[i]) for i in range(n))
        build_s = time.perf_counter() - build_started
        time_ann(index, q_vectors[: max(2, n_queries // 10)], k)  # warm
        ann_s, results = time_ann(index, q_vectors, k)
        recall = dense_recall(results, q_vectors, vectors, k)
        speedup = sparse_s / ann_s if ann_s else 0.0
        label = f"{kind} " + ",".join(f"{key}={value}"
                                      for key, value in kwargs.items())
        configs_data.append({
            "config": label, "kind": kind, **kwargs,
            "build_seconds": build_s,
            "query_ms": 1000 * ann_s,
            "qps": 1.0 / ann_s if ann_s else 0.0,
            "recall_at_k": recall,
            "config_speedup": speedup,
        })
        rows.append([label, f"{build_s:.2f}", f"{1000 * ann_s:.3f}",
                     f"{recall:.4f}", f"{speedup:.1f}x"])

    eligible = [c for c in configs_data if c["recall_at_k"] >= 0.95]
    headline = max((c["config_speedup"] for c in eligible), default=0.0)
    headline_cfg = max(eligible, key=lambda c: c["config_speedup"],
                       default=None) if eligible else None

    embed = embed_build_cost(n)

    rows.append(["sparse overlap top-k (exact)", "-",
                 f"{1000 * sparse_s:.3f}", "-", "1.0x"])
    table = render_table(
        ["Config", "Build s", "Query ms", f"Recall@{k}", "Speedup"],
        rows,
        title=(f"ANN blocking vs exact overlap top-k "
               f"(n={n}, q={n_queries}, k={k}, scale={scale.name})"))
    table += (
        f"\nheadline speedup (recall >= 0.95): {headline:.1f}x"
        + (f" [{headline_cfg['config']}]" if headline_cfg else "")
        + f"\nint8 vs float32 top-{k} agreement: {agreement:.4f}"
        + f"\nencoder build cost: {embed['records_per_sec']:.0f} rec/s"
        + f" (~{embed['full_catalog_seconds']:.0f}s for the full catalog,"
        + " one-time)")
    data = {
        "n": n, "queries": n_queries, "k": k, "seed": seed,
        "sparse_query_ms": 1000 * sparse_s,
        "configs": configs_data,
        "speedup": headline,
        "headline_config": headline_cfg["config"] if headline_cfg else None,
        "int8_agreement": agreement,
        "embed": embed,
    }
    return table, data


def test_ann_blocking(benchmark):
    table, data = benchmark.pedantic(run_ann_blocking_bench, rounds=1,
                                     iterations=1)
    emit(table, "ann_blocking", data=data)
    assert data["speedup"] >= 5.0
    assert data["int8_agreement"] >= 0.99
