"""Challenge II check: is the low-resource teacher poorly calibrated?

The paper motivates uncertainty-based pseudo-label selection by the claim
that confident predictions are often wrong in poorly calibrated networks.
This bench measures it directly: train a teacher per dataset, compute ECE
and the overconfidence rate (error rate among confidence >= 0.9
predictions) on the unlabeled pool -- exactly the noise a confidence-based
selector would import as pseudo-labels.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _harness import emit, promptem_config  # noqa: E402
from repro.core import Trainer, TrainerConfig  # noqa: E402
from repro.core.matcher import PromptEM  # noqa: E402
from repro.core.trainer import predict_proba  # noqa: E402
from repro.eval import (  # noqa: E402
    bench_scale, calibration_report, overconfidence_rate, render_table,
)
from repro.eval.protocol import ExperimentRunner  # noqa: E402


def run_calibration() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    rows = []
    for dataset in scale.datasets:
        view = runner.view_for(dataset, seed=scale.seeds[0])
        config = promptem_config(scale)
        facade = PromptEM(config)
        facade._ensure_backbone()
        facade._fit_summarizer(view.labeled)
        teacher = facade._make_model()
        Trainer(teacher, TrainerConfig(
            epochs=config.teacher_epochs, batch_size=config.batch_size,
            lr=config.lr, seed=config.seed)).fit(view.labeled,
                                                 valid=view.valid)
        pool = view.unlabeled[: scale.unlabeled_cap]
        truth = np.array(view.unlabeled_true_labels[: scale.unlabeled_cap])
        probs = predict_proba(teacher, pool, batch_size=config.batch_size)
        report = calibration_report(probs, truth, num_bins=10)
        rows.append([dataset, round(report.ece, 3), round(report.mce, 3),
                     round(overconfidence_rate(probs, truth, 0.9), 3)])
    return render_table(
        ["Dataset", "ECE", "MCE", "overconf. error@0.9"], rows, decimals=3,
        title=f"Calibration of the low-resource teacher (scale={scale.name})")


def test_calibration_of_teacher(benchmark):
    table = benchmark.pedantic(run_calibration, rounds=1, iterations=1)
    emit(table, "calibration")
