"""Figure 3: F1 versus training rate, 5% .. 25%.

Sweeps the labeled fraction for the main methods. Shape to check:
PromptEM dominates at the low end and converges with the fine-tuning
baselines as the rate grows; TDmatch (unsupervised) is a flat line.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit, method_factories  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_series  # noqa: E402

RATES = (0.05, 0.15, 0.25)
#: methods plotted in Figure 3 (a representative subset to bound runtime)
FIGURE3_METHODS = ("BERT", "Ditto", "TDmatch", "PromptEM")


#: paper-scale Figure 3 uses a representative dataset subset for runtime
FIGURE3_DATASETS = ("REL-HETER", "SEMI-HOMO", "SEMI-TEXT-c", "REL-TEXT")


def run_figure3() -> str:
    scale = bench_scale()
    factories = method_factories(scale)
    rates = RATES
    datasets = [d for d in FIGURE3_DATASETS if d in scale.datasets] or list(scale.datasets)
    blocks = []
    for dataset in datasets:
        series = {m: [] for m in FIGURE3_METHODS}
        runner = ExperimentRunner(scale)
        for rate in rates:
            for method in FIGURE3_METHODS:
                result = runner.run(method, factories[method], dataset,
                                    rate=rate, seed=scale.seeds[0])
                series[method].append(result.prf.f1)
        blocks.append(render_series(
            f"Figure 3 [{dataset}]: F1 vs training rate (scale={scale.name})",
            "rate", [f"{r:.0%}" for r in rates], series))
    return "\n\n".join(blocks)


def test_figure3_low_resource_rates(benchmark):
    table = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    emit(table, "figure3")
