"""Figure 4 (+ Section 5.5): effect of template choices.

Four variants: continuous/hard x T1/T2, without self-training so the
template effect is isolated. Shapes to check: continuous > hard for the
same layout; T2 better than T1 overall (the paper's finding).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _harness import PromptEMMatcher, emit, promptem_config  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_table  # noqa: E402

VARIANTS = {
    "continuous T1": dict(template="t1", continuous=True),
    "hard T1": dict(template="t1", continuous=False),
    "continuous T2": dict(template="t2", continuous=True),
    "hard T2": dict(template="t2", continuous=False),
}


def run_figure4() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    grid = {}
    for variant, overrides in VARIANTS.items():
        config = promptem_config(scale, use_self_training=False, **overrides)
        for dataset in scale.datasets:
            result = runner.run(
                variant,
                lambda c=config, v=variant: PromptEMMatcher(c, v),
                dataset, seed=scale.seeds[0])
            grid.setdefault(variant, {})[dataset] = result.prf.f1

    rows = []
    for variant in VARIANTS:
        f1s = [grid[variant][d] for d in scale.datasets]
        rows.append([variant, *[round(f, 1) for f in f1s],
                     round(float(np.mean(f1s)), 1)])
    return render_table(["Template", *scale.datasets, "avg F1"], rows,
                        title=f"Figure 4: template choices (scale={scale.name})")


def test_figure4_template_choices(benchmark):
    table = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    emit(table, "figure4")
