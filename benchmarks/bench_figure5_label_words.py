"""Figure 5 (+ Section 5.5): effect of label-word choices.

Designed label words (matched/similar/relevant vs mismatched/different/
irrelevant) against the simple pair (matched vs mismatched), for both
continuous templates. Shape to check: designed words win on average --
the general-relationship verbalizer transfers better, especially on the
relevance-style datasets (REL-TEXT).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _harness import PromptEMMatcher, emit, promptem_config  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_table  # noqa: E402

VARIANTS = {
    "T1 designed": dict(template="t1", label_words="designed"),
    "T1 simple": dict(template="t1", label_words="simple"),
    "T2 designed": dict(template="t2", label_words="designed"),
    "T2 simple": dict(template="t2", label_words="simple"),
}


def run_figure5() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    grid = {}
    for variant, overrides in VARIANTS.items():
        config = promptem_config(scale, use_self_training=False, **overrides)
        for dataset in scale.datasets:
            result = runner.run(
                variant,
                lambda c=config, v=variant: PromptEMMatcher(c, v),
                dataset, seed=scale.seeds[0])
            grid.setdefault(variant, {})[dataset] = result.prf.f1

    rows = []
    for variant in VARIANTS:
        f1s = [grid[variant][d] for d in scale.datasets]
        rows.append([variant, *[round(f, 1) for f in f1s],
                     round(float(np.mean(f1s)), 1)])
    return render_table(["Label words", *scale.datasets, "avg F1"], rows,
                        title=f"Figure 5: label-word choices (scale={scale.name})")


def test_figure5_label_word_choices(benchmark):
    table = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    emit(table, "figure5")
