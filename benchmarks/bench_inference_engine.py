"""Inference-engine benchmark: MC-Dropout pseudo-label selection throughput.

Times the hottest loop of self-training -- ``passes`` stochastic forwards
over the unlabeled pool (paper Section 4.2) -- two ways:

* **seed loop**: the pre-engine implementation; chunked ``model(batch)``
  calls per pass, re-serializing and re-tokenizing every pair every pass;
* **engine**: one :class:`repro.infer.InferenceEngine` with encoding cache,
  length-bucketed batches and vectorized (tiled) MC-Dropout.

Both paths run ``iterations`` sweeps to model repeated self-training
rounds, which is where the encoding cache pays off. The engine's eval-mode
probabilities are also checked against the naive path (max abs diff), so
the table doubles as an equivalence report.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.autograd import no_grad  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.infer import EngineConfig, InferenceEngine  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402


def seed_style_mc_dropout(model, pairs, passes, batch_size=32):
    """The seed implementation's loop: re-encode every chunk, every pass."""
    was_training = model.training
    model.train()
    stacked = []
    try:
        with no_grad():
            for _ in range(passes):
                chunks = [model(list(pairs[i:i + batch_size])).numpy()
                          for i in range(0, len(pairs), batch_size)]
                stacked.append(np.concatenate(chunks, axis=0))
    finally:
        model.train(was_training)
    return np.stack(stacked)


def seed_style_predict(model, pairs, batch_size=32):
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            chunks = [model(list(pairs[i:i + batch_size])).numpy()
                      for i in range(0, len(pairs), batch_size)]
    finally:
        model.train(was_training)
    return np.concatenate(chunks, axis=0)


def run_engine_comparison(model, pairs, passes, token_budget=2048,
                          iterations=2):
    """Time seed loop vs engine over ``iterations`` MC-Dropout sweeps.

    Returns a dict of throughput numbers plus ``max_abs_diff``, the
    eval-mode probability difference between the two paths (expected to be
    float32-zero: bucketing and caching are semantics-preserving).
    """
    pairs = list(pairs)
    engine = InferenceEngine(EngineConfig(token_budget=token_budget))

    started = time.perf_counter()
    for _ in range(iterations):
        seed_style_mc_dropout(model, pairs, passes)
    baseline_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(iterations):
        engine.mc_dropout_proba(model, pairs, passes=passes)
    engine_elapsed = time.perf_counter() - started

    naive = seed_style_predict(model, pairs)
    bucketed = engine.predict_proba(model, pairs)

    scored = iterations * len(pairs)
    baseline_pps = scored / baseline_elapsed if baseline_elapsed else 0.0
    engine_pps = scored / engine_elapsed if engine_elapsed else 0.0
    return {
        "pairs": len(pairs),
        "passes": passes,
        "baseline_pps": baseline_pps,
        "engine_pps": engine_pps,
        "speedup": engine_pps / baseline_pps if baseline_pps else 0.0,
        "cache_hit_rate": engine.stats.cache_hit_rate,
        "padding_fraction": engine.stats.padding_fraction,
        "batches": engine.stats.batches,
        "max_abs_diff": float(np.abs(bucketed - naive).max())
        if len(pairs) else 0.0,
    }


def run_inference_engine_bench():
    scale = bench_scale()
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template("t2", tok, max_len=128)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()

    passes = max(scale.mc_passes, 5)
    rows = []
    results = {}
    for dataset_name in scale.datasets:
        dataset = load_dataset(dataset_name)
        pool = (dataset.train + dataset.test)[:4 * scale.unlabeled_cap]
        result = run_engine_comparison(model, pool, passes)
        results[dataset_name] = result
        rows.append([
            dataset_name,
            result["pairs"],
            result["passes"],
            f"{result['baseline_pps']:.1f}",
            f"{result['engine_pps']:.1f}",
            f"{result['speedup']:.2f}x",
            f"{result['cache_hit_rate']:.2f}",
            f"{result['padding_fraction']:.2f}",
            f"{result['max_abs_diff']:.2e}",
        ])

    headers = ["Dataset", "Pairs", "Passes", "Seed p/s", "Engine p/s",
               "Speedup", "Cache hit", "Padding", "Max |diff|"]
    table = render_table(
        headers, rows,
        title=f"Inference engine: MC-Dropout selection (scale={scale.name})")
    return table, results


def test_inference_engine(benchmark):
    table, data = benchmark.pedantic(run_inference_engine_bench, rounds=1,
                                     iterations=1)
    emit(table, "inference_engine", data=data)
