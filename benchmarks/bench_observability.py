"""Observability overhead benchmark: Trainer.fit with telemetry off vs on.

The instrumentation contract (``docs/OBSERVABILITY.md``) is that disabled
telemetry is a strict no-op fast path: call sites fetch the active session
once and hit shared null objects, so shipping the instrumented trainer must
cost under 2% of the uninstrumented loop. Two measurements bound it:

* **micro**: a tight loop over the exact disabled hot-path sequence
  (``get_telemetry()`` + ``enabled`` check + null counter ``inc()`` + null
  span enter/exit) gives nanoseconds per instrumented step. Charging that
  full sequence to *every* optimizer step -- although the real loop guards
  the counter/event calls behind ``tel.enabled`` and pays only the branch
  -- yields ``disabled_overhead_pct``, a deliberate upper bound;
* **macro**: the same ``Trainer.fit`` (identical initial weights, same
  seed, fresh optimizer per run) timed under three arms -- ``disabled``
  (no session), ``metrics`` (in-memory registry + tracer) and ``full``
  (JSONL run log with ``trace=True``) -- reporting steps/sec and the
  enabled arms' overhead over the disabled one.

The model state is restored from one initial ``state_dict`` between runs
(dropout seeds are drawn at module construction, so re-building the model
would change the work); every arm therefore executes bit-identical math.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import MODEL_NAME, emit, warm_backbone  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.core.trainer import Trainer, TrainerConfig  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.obs import get_telemetry, telemetry_session  # noqa: E402

#: instrumented operations charged to every optimizer step by the micro
#: bound (get_telemetry + enabled check + counter inc + span enter/exit)
NOOP_ITERATIONS = 200_000


def measure_noop_ns(iterations: int = NOOP_ITERATIONS) -> float:
    """Nanoseconds per disabled hot-path sequence (no session installed)."""
    start = time.perf_counter()
    for _ in range(iterations):
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("bench.noop").inc()
        tel.metrics.counter("bench.noop").inc()
        with tel.span("bench.noop"):
            pass
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def run_overhead_comparison(model, pairs, epochs=2, batch_size=8,
                            repeats=2, seed=0):
    """Time Trainer.fit under the three telemetry arms.

    Returns a dict with per-arm best wall time and steps/sec, the enabled
    arms' overhead over the disabled arm, and the micro-measured no-op
    cost with the upper-bound ``disabled_overhead_pct`` it implies.
    """
    pairs = list(pairs)
    initial = {k: v.copy() for k, v in model.state_dict().items()}
    cfg = TrainerConfig(epochs=epochs, batch_size=batch_size, seed=seed)

    def one_fit():
        model.load_state_dict(initial)
        start = time.perf_counter()
        history = Trainer(model, cfg).fit(pairs)
        return time.perf_counter() - start, history.steps

    arms = {}
    steps = 0
    for arm in ("disabled", "metrics", "full"):
        times = []
        for _ in range(repeats):
            if arm == "disabled":
                elapsed, steps = one_fit()
            elif arm == "metrics":
                with telemetry_session():
                    elapsed, steps = one_fit()
            else:
                with tempfile.TemporaryDirectory() as tmp:
                    with telemetry_session(path=os.path.join(tmp, "t.jsonl"),
                                           trace=True):
                        elapsed, steps = one_fit()
            times.append(elapsed)
        best = min(times)
        arms[arm] = {"seconds": best, "steps": steps,
                     "steps_per_sec": steps / best if best > 0 else 0.0}

    base = arms["disabled"]["seconds"]
    for arm in ("metrics", "full"):
        arms[arm]["overhead_pct"] = 100.0 * (arms[arm]["seconds"] - base) \
            / base if base > 0 else 0.0

    noop_ns = measure_noop_ns()
    step_ns = base / steps * 1e9 if steps else float("inf")
    return {
        "pairs": len(pairs),
        "epochs": epochs,
        "steps": steps,
        "arms": arms,
        "noop_ns": noop_ns,
        "disabled_overhead_pct": 100.0 * noop_ns / step_ns,
        "budget_pct": 2.0,
    }


def main() -> None:
    scale = bench_scale()
    warm_backbone()
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template("t2", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    dataset = load_dataset("REL-HETER")
    if scale.name == "paper":
        pairs = dataset.low_resource(rate=0.8, seed=0).labeled
        epochs, repeats = 4, 3
    else:
        pairs = dataset.low_resource(seed=0).labeled
        epochs, repeats = 2, 2

    result = run_overhead_comparison(model, pairs, epochs=epochs,
                                     repeats=repeats)
    rows = []
    for arm in ("disabled", "metrics", "full"):
        stats = result["arms"][arm]
        rows.append([arm, f"{stats['seconds']:.2f}s",
                     f"{stats['steps_per_sec']:.1f}",
                     "--" if arm == "disabled"
                     else f"{stats['overhead_pct']:+.2f}%"])
    rows.append(["no-op bound", f"{result['noop_ns']:.0f}ns/step", "--",
                 f"{result['disabled_overhead_pct']:+.4f}%"])
    table = render_table(
        ["Arm", "Wall", "steps/s", "Overhead"], rows,
        title=f"Telemetry overhead on Trainer.fit ({result['steps']} steps, "
              f"budget {result['budget_pct']:.0f}%)")
    emit(table, "observability", data=result)

    within = result["disabled_overhead_pct"] < result["budget_pct"]
    print(f"disabled fast path: {result['disabled_overhead_pct']:.4f}% "
          f"of a step ({'within' if within else 'OVER'} the "
          f"{result['budget_pct']:.0f}% budget)")


if __name__ == "__main__":
    main()
