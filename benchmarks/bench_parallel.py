"""Parallel subsystem benchmark: worker-sharded MC-Dropout end to end.

Times the self-training selection sweep (``passes`` stochastic forwards
over a candidate pool) at 1/2/4 workers and checks the subsystem's core
contract: **the worker count changes wall-clock time, never bits**.

Arms per dataset:

* **serial**: the engine's default scoring path (vectorized tiled sweep)
  on a ``workers=1`` engine -- the exact code self-training runs when the
  parallel subsystem is off;
* **workers=W**: the same sweep with packed buckets sharded across ``W``
  forked workers. ``Max |diff|`` is the probability divergence against the
  serial arm and must be exactly ``0.0`` -- identical bucket shapes,
  identical per-pass dropout seeds, only the scheduling differs;
* **seq ref**: the sequential per-pass reference
  (``mc_dropout_proba(..., vectorized=False)``) is also timed, so the
  table shows the end-to-end win over unvectorized scoring ("vs seq").

Scaling numbers are hardware-bound: forked workers only run concurrently
when the host grants multiple cores, so ``pool x`` (W workers vs the
1-worker arm) approaches W only on multicore hosts and honestly hovers
near 1.0x on a single-core container, where every process time-slices one
CPU. The title and JSON record ``cores`` so runs are comparable across
machines; the divergence column is the part no hardware can change.
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.infer import EngineConfig, InferenceEngine  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402

WORKER_COUNTS = (1, 2, 4)


def run_parallel_comparison(model, pairs, passes, seed=0, token_budget=1024,
                            iterations=2):
    """Time serial vs worker-sharded MC-Dropout sweeps.

    Returns a dict with the sequential-reference throughput plus one entry
    per worker count carrying throughput, speedup over the serial
    (1-worker) arm, speedup over the sequential reference, and the max abs
    probability difference against the serial arm (exactly 0.0 -- the
    sharding is bit-parity-preserving).
    """
    pairs = list(pairs)
    scored = iterations * len(pairs)

    def sweep(workers, vectorized):
        engine = InferenceEngine(EngineConfig(token_budget=token_budget,
                                              workers=workers))
        started = time.perf_counter()
        for _ in range(iterations):
            probs = engine.mc_dropout_proba(model, pairs, passes=passes,
                                            seed=seed, vectorized=vectorized)
        return probs, time.perf_counter() - started

    _, sequential_elapsed = sweep(workers=1, vectorized=False)

    arms = {}
    for workers in WORKER_COUNTS:
        probs, elapsed = sweep(workers, vectorized=True)
        arms[workers] = {
            "probs": probs,
            "elapsed": elapsed,
            "pairs_per_sec": scored / elapsed if elapsed else 0.0,
        }

    serial = arms[WORKER_COUNTS[0]]
    serial_elapsed = serial["elapsed"]
    serial_probs = serial["probs"]
    for arm in arms.values():
        elapsed = arm["elapsed"]
        arm["speedup_vs_serial"] = \
            serial_elapsed / elapsed if elapsed else 0.0
        arm["speedup_vs_sequential"] = \
            sequential_elapsed / elapsed if elapsed else 0.0
        arm["divergence"] = float(
            np.abs(arm.pop("probs") - serial_probs).max()) \
            if len(pairs) else 0.0

    return {
        "pairs": len(pairs),
        "passes": passes,
        "sequential_elapsed": sequential_elapsed,
        "sequential_pps": scored / sequential_elapsed
        if sequential_elapsed else 0.0,
        "arms": arms,
    }


def run_parallel_bench():
    scale = bench_scale()
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template("t2", tok, max_len=128)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()

    passes = max(scale.mc_passes, 5)
    cores = os.cpu_count() or 1
    rows = []
    results = {"cores_detected": cores, "worker_counts": list(WORKER_COUNTS),
               "datasets": {}}
    for dataset_name in scale.datasets:
        dataset = load_dataset(dataset_name)
        pool = (dataset.train + dataset.test)[:4 * scale.unlabeled_cap]
        result = run_parallel_comparison(model, pool, passes)
        results["datasets"][dataset_name] = result
        for workers in WORKER_COUNTS:
            arm = result["arms"][workers]
            rows.append([
                dataset_name,
                result["pairs"],
                result["passes"],
                workers,
                f"{arm['pairs_per_sec']:.1f}",
                f"{arm['speedup_vs_serial']:.2f}x",
                f"{arm['speedup_vs_sequential']:.2f}x",
                f"{arm['divergence']:.2e}",
            ])

    headers = ["Dataset", "Pairs", "Passes", "Workers", "Pairs/s",
               "Pool x", "vs seq", "Max |diff|"]
    table = render_table(
        headers, rows,
        title=f"Parallel MC-Dropout sweep (scale={scale.name}, "
              f"cores={cores}; pool scaling is core-bound, "
              "divergence is not)")
    return table, results


def test_parallel(benchmark):
    table, data = benchmark.pedantic(run_parallel_bench, rounds=1,
                                     iterations=1)
    emit(table, "parallel", data=data)
