"""PEFT multi-tenant benchmark: soft prompts/adapters over one backbone.

Three claims, measured:

* **memory** -- a tenant's :class:`repro.serve.DeltaBundle` carries only
  the parameters PEFT actually moved (a soft-prompt matrix, optionally
  bottleneck adapters), so serving T tenants costs one backbone plus T
  KB-scale deltas instead of T full bundles. Measured from real on-disk
  bundle directories and from a :class:`repro.serve.TenantRegistry`
  holding every delta resident at once, at T in {1, 10, 100}.
* **tuning cost and F1 parity** -- freezing the backbone shrinks the
  optimizer to the delta (hundreds of parameters, not tens of thousands)
  and skips the frozen weight-gradient kernels in backward. Each arm
  (full fine-tuning / soft prompt / soft prompt + adapters) trains on the
  same low-resource split of the same generator datasets; the PEFT arms
  must land within 2 F1 points of full tuning (``within_2_f1``).
* **serving throughput** -- a mixed-tenant request stream served with
  micro-batch fusion (per-row gathered prompt embeddings, one fused
  forward) against the naive arm that splits every batch per tenant and
  hot-swaps deltas serially (``fuse_tenants=False``). Throughput scaling
  is modest on a single-core container -- fusion saves scheduling and
  bind overhead, not model FLOPs, and both arms share one CPU; the JSON
  records ``cores``. Bit-identity is hardware-independent: every served
  probability, grouped by tenant, must equal an offline
  :class:`repro.infer.InferenceEngine` replay with that tenant's delta
  bound, bit for bit (``bit_identical_per_tenant``).

Runnable under pytest (the CI smoke job) or directly::

    python benchmarks/bench_peft_tenants.py --smoke
"""

import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.core import (  # noqa: E402
    PromptModel, Trainer, TrainerConfig, Verbalizer, apply_peft,
    evaluate_f1, make_template, trainable_fraction,
)
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.infer import InferenceEngine  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.serve import (  # noqa: E402
    DeltaBundle, MatchServer, ModelBundle, ServerConfig, TenantRegistry,
)

#: tenant counts for the memory table
TENANT_COUNTS = (1, 10, 100)

#: PEFT arms measured against full fine-tuning
PEFT_KINDS = ("soft_prompt", "adapter")


def fresh_model(template_name: str = "t1", max_len: int = 96) -> PromptModel:
    """A brand-new backbone + prompt model (arms must not share weights)."""
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template(template_name, tok, max_len=max_len)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    return model


def dir_bytes(path) -> int:
    return sum(f.stat().st_size for f in Path(path).rglob("*") if f.is_file())


# ----------------------------------------------------------------------
# Arm 1: tuning cost + F1 parity
# ----------------------------------------------------------------------
def run_tuning_arm(dataset_names, epochs: int, seed: int = 0) -> dict:
    out = {}
    for name in dataset_names:
        view = load_dataset(name).low_resource(seed=seed)
        arms = {}
        for kind in ("full",) + PEFT_KINDS:
            model = fresh_model()
            if kind == "full":
                config = TrainerConfig(epochs=epochs, seed=seed)
            else:
                # the delta is tiny; PEFT wants a larger step and can
                # afford more epochs inside the same wall-clock budget.
                # bottleneck 4 keeps the adapter delta under 2% of the
                # backbone's parameter count
                apply_peft(model, kind, bottleneck=4, seed=seed)
                config = TrainerConfig(epochs=3 * epochs, lr=1e-2,
                                       seed=seed)
            trainer = Trainer(model, config)
            started = time.perf_counter()
            trainer.fit(view.labeled, view.valid)
            elapsed = time.perf_counter() - started
            arms[kind] = {
                "f1": 100.0 * evaluate_f1(model, view.test),
                "fit_seconds": elapsed,
                "seconds_per_epoch": elapsed / config.epochs,
                "epochs": config.epochs,
                "trainable_fraction": trainable_fraction(model),
                "trainable_params": model.num_trainable_parameters(),
            }
        full = arms["full"]
        for kind in PEFT_KINDS:
            arm = arms[kind]
            arm["f1_delta_vs_full"] = arm["f1"] - full["f1"]
            # one-sided: "within 2 points" bounds the loss vs full
            # fine-tuning; beating it is a pass, not a deviation
            arm["within_2_f1"] = bool(arm["f1"] >= full["f1"] - 2.0)
            arm["epoch_speedup_vs_full"] = (
                full["seconds_per_epoch"] / arm["seconds_per_epoch"]
                if arm["seconds_per_epoch"] else 0.0)
        arms["peft_within_2_f1"] = bool(
            any(arms[kind]["within_2_f1"] for kind in PEFT_KINDS))
        out[name] = arms
    out["f1_parity_datasets"] = sum(
        1 for name in dataset_names if out[name]["peft_within_2_f1"])
    return out


# ----------------------------------------------------------------------
# Arm 2: per-tenant memory, on disk and resident
# ----------------------------------------------------------------------
def make_tenant_deltas(base_dir, count: int, seed: int = 0):
    """``count`` distinct soft-prompt deltas (perturbed, not trained --
    the memory arm measures format overhead, not model quality)."""
    model = fresh_model()
    apply_peft(model, "soft_prompt", seed=seed)
    emb = model.prompt_encoder.embeddings.data
    pristine = emb.copy()
    paths = []
    for i in range(count):
        rng = np.random.default_rng((seed, i))
        emb[...] = pristine + (rng.standard_normal(emb.shape)
                               * 0.05).astype(emb.dtype)
        path = Path(base_dir) / f"tenant{i:03d}"
        DeltaBundle.from_model(model, name=f"tenant{i:03d}",
                               threshold=0.5).save(path)
        paths.append(path)
    return paths


def run_memory_arm(workdir) -> dict:
    model = fresh_model()
    bundle_dir = Path(workdir) / "base_bundle"
    bundle = ModelBundle.from_model(model, threshold=0.5, name=MODEL_NAME)
    bundle.save(bundle_dir)
    full_bytes = dir_bytes(bundle_dir)

    tenants_dir = Path(workdir) / "tenants"
    tenants_dir.mkdir()
    make_tenant_deltas(tenants_dir, max(TENANT_COUNTS))
    delta_bytes = dir_bytes(tenants_dir) // max(TENANT_COUNTS)

    # every delta resident at once: registry-reported delta memory must
    # stay KB-scale while the backbone is held exactly once
    registry = TenantRegistry(capacity=2 * max(TENANT_COUNTS),
                              tenants_dir=tenants_dir)
    registry.attach(bundle.model)
    for name in registry.tenants():
        registry.entry(name)
    stats = registry.stats()

    backbone_params = bundle.model.num_parameters()
    delta_params = DeltaBundle.load(
        tenants_dir / "tenant000").param_count
    counts = {}
    for tenants in TENANT_COUNTS:
        shared = full_bytes + tenants * delta_bytes
        naive = tenants * full_bytes
        counts[tenants] = {
            "shared_backbone_bytes": shared,
            "full_bundles_bytes": naive,
            "memory_ratio": naive / shared if shared else 0.0,
        }
    return {
        "full_bundle_bytes": full_bytes,
        "delta_bundle_bytes": delta_bytes,
        "backbone_params": backbone_params,
        "delta_params": delta_params,
        "delta_param_fraction": delta_params / backbone_params,
        "delta_within_2pct": bool(delta_params <= 0.02 * backbone_params),
        "resident_deltas": stats["loaded"],
        "resident_delta_bytes": stats["delta_bytes"],
        "tenant_counts": counts,
    }


# ----------------------------------------------------------------------
# Arm 3: mixed-tenant serving, fused vs serial hot-swap
# ----------------------------------------------------------------------
def run_serving_arm(workdir, pairs, tenant_count: int,
                    iterations: int = 3) -> dict:
    model = fresh_model()
    bundle = ModelBundle.from_model(model, threshold=0.5, name=MODEL_NAME)
    tenants_dir = Path(workdir) / "serving_tenants"
    tenants_dir.mkdir()
    make_tenant_deltas(tenants_dir, tenant_count, seed=7)
    names = sorted(p.name for p in tenants_dir.iterdir())
    pairs = list(pairs)
    stream = [names[i % len(names)] for i in range(len(pairs))]

    def run(fuse: bool):
        registry = TenantRegistry(tenants_dir=tenants_dir)
        server = MatchServer(
            ModelBundle.from_model(fresh_model(), threshold=0.5,
                                   name=MODEL_NAME),
            ServerConfig(max_batch_pairs=16, token_budget=4096,
                         max_queue=max(1024, 4 * len(pairs)),
                         record_batches=True, fuse_tenants=fuse),
            tenants=registry)
        server.score_batch(pairs, tenants=stream)  # warm caches + deltas
        started = time.perf_counter()
        for _ in range(iterations - 1):
            server.score_batch(pairs, tenants=stream)
        responses = server.score_batch(pairs, tenants=stream)
        elapsed = time.perf_counter() - started
        batches = len(server.batch_log)
        return responses, elapsed, batches

    fused_responses, fused_elapsed, fused_batches = run(fuse=True)
    serial_responses, serial_elapsed, serial_batches = run(fuse=False)
    scored = iterations * len(pairs)
    fused_pps = scored / fused_elapsed if fused_elapsed else 0.0
    serial_pps = scored / serial_elapsed if serial_elapsed else 0.0

    # bit-identity: served rows, grouped by tenant, against an offline
    # replay with that tenant's delta bound on a fresh backbone
    replay_model = ModelBundle.from_model(fresh_model(), threshold=0.5,
                                          name=MODEL_NAME).model
    registry = TenantRegistry(tenants_dir=tenants_dir)
    registry.attach(replay_model)
    engine = InferenceEngine()
    bit_identical = True
    max_abs = 0.0
    for responses in (fused_responses, serial_responses):
        for tenant in names:
            rows = [i for i, t in enumerate(stream) if t == tenant]
            if not rows:
                continue
            registry.bind(tenant)
            want = engine.predict_proba(replay_model,
                                        [pairs[i] for i in rows])
            got = np.stack([responses[i].probs for i in rows])
            max_abs = max(max_abs, float(np.max(np.abs(got - want))))
            bit_identical = bit_identical and np.array_equal(got, want)

    return {
        "tenants": tenant_count,
        "pairs": len(pairs),
        "iterations": iterations,
        "fused_pairs_per_sec": fused_pps,
        "serial_pairs_per_sec": serial_pps,
        "fused_speedup_vs_serial": (fused_pps / serial_pps
                                    if serial_pps else 0.0),
        "fused_batches": fused_batches,
        "serial_batches": serial_batches,
        "bit_identical_per_tenant": bool(bit_identical),
        "max_abs_vs_offline": max_abs,
    }


def run_peft_tenants_bench():
    scale = bench_scale()
    cores = os.cpu_count() or 1
    workdir = tempfile.mkdtemp(prefix="bench_peft_")
    try:
        tuning = run_tuning_arm(list(scale.datasets)[:2],
                                epochs=scale.teacher_epochs)
        memory = run_memory_arm(workdir)

        dataset = load_dataset(scale.datasets[0])
        pairs = (dataset.train + dataset.test)[:4 * scale.unlabeled_cap]
        tenant_count = 4 if scale.name == "smoke" else 8
        serving = run_serving_arm(workdir, pairs, tenant_count)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    results = {
        "cores_detected": cores,
        "tuning": tuning,
        "memory": memory,
        "serving": serving,
    }

    rows = []
    for name, arms in tuning.items():
        if not isinstance(arms, dict):
            continue
        for kind in ("full",) + PEFT_KINDS:
            arm = arms[kind]
            rows.append([
                name, kind, f"{arm['f1']:.1f}",
                f"{arm.get('f1_delta_vs_full', 0.0):+.1f}",
                str(arm.get("within_2_f1", "-")),
                f"{arm['seconds_per_epoch']:.2f}s",
                f"{arm['trainable_fraction']:.2%}",
            ])
    tuning_table = render_table(
        ["Dataset", "Tuning", "F1", "dF1", "<=2pts", "s/epoch", "Trainable"],
        rows, title=f"PEFT tuning vs full fine-tuning (scale={scale.name})")

    mem_rows = [[tenants,
                 f"{memory['tenant_counts'][tenants]['shared_backbone_bytes']:,}",
                 f"{memory['tenant_counts'][tenants]['full_bundles_bytes']:,}",
                 f"{memory['tenant_counts'][tenants]['memory_ratio']:.1f}x"]
                for tenants in TENANT_COUNTS]
    mem_table = render_table(
        ["Tenants", "Backbone+deltas", "Full bundles", "Saved"],
        mem_rows,
        title=f"Tenant memory: {memory['delta_bundle_bytes']:,}B delta vs "
              f"{memory['full_bundle_bytes']:,}B full bundle "
              f"({memory['delta_param_fraction']:.2%} of backbone params)")

    serve_table = render_table(
        ["Tenants", "Fused p/s", "Serial p/s", "Fused x", "Bit-identical"],
        [[serving["tenants"], f"{serving['fused_pairs_per_sec']:.1f}",
          f"{serving['serial_pairs_per_sec']:.1f}",
          f"{serving['fused_speedup_vs_serial']:.2f}x",
          str(serving["bit_identical_per_tenant"])]],
        title=f"Mixed-tenant serving, fused vs serial hot-swap "
              f"(cores={cores}; fusion saves batching overhead, not FLOPs; "
              "bit-identity is core-count-independent)")

    table = "\n".join([tuning_table, "", mem_table, "", serve_table])
    return table, results


def test_peft_tenants(benchmark):
    table, data = benchmark.pedantic(run_peft_tenants_bench, rounds=1,
                                     iterations=1)
    emit(table, "peft_tenants", data=data)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at smoke scale (sets REPRO_BENCH_SCALE)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite a better committed result")
    cli_args = parser.parse_args()
    if cli_args.smoke:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
    bench_table, bench_data = run_peft_tenants_bench()
    emit(bench_table, "peft_tenants", data=bench_data,
         force=cli_args.force)
