"""PPRL benchmark: popcount Dice kernel speedup + privacy/F1 trade-off.

Two arms, one ``BENCH_pprl.json``:

* **kernel** -- one packed query filter scored against a large synthetic
  catalog.  The vectorized arm is the serving hot path
  (:func:`repro.privacy.dice_topk`: SWAR popcount, blocked AND into a
  recycled scratch buffer, streaming top-k pool); the naive arm is the
  per-pair pure-Python loop (:func:`naive_dice_scores`, ``bin().count``
  per word), timed on a row subsample and extrapolated to the full
  catalog.  The top-k ids of both arms must agree exactly (the kernels
  are a full scan -- any disagreement is a bit-level bug, not an
  approximation), and the speedup must clear 10x.

* **trade-off** -- what CLK encoding costs in match quality, measured on
  the same benchmark generators the plaintext pipeline uses.  For each
  dataset, every labeled pair is scored two ways: plaintext q-gram Dice
  (the same tokens/q-grams the encoder hashes, compared in the clear)
  and CLK Dice over packed filters at several encoding configs
  (1024/2048 bits, balance/fold hardening).  Both arms sweep the score
  threshold and report their best F1, so the delta isolates the Bloom
  collision + hardening loss.  ``PrivateBlocker`` recall against the
  true matches completes the picture (can a filters-only blocker still
  find the real pairs), with ``measure_recall`` doubling as the kernel
  exactness canary.

The headline of this bench is the *trade-off table*, not a single
scalar: ``data["headline"]`` carries a one-line summary string and
``scripts/bench_report.py`` renders it in place of a speedup number
(the kernel speedup is still recorded under ``data["kernel_speedup"]``
for the regression guard).
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import emit  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.privacy import (  # noqa: E402
    ClkConfig, ClkEncoder, PrivateBlocker, dice_topk, naive_dice_scores,
    popcount,
)

#: encoding configs of the trade-off arm: (label, config)
CLK_CONFIGS = [
    ("clk 2048/none", ClkConfig(nbits=2048)),
    ("clk 1024/none", ClkConfig(nbits=1024)),
    ("clk 1024/balance", ClkConfig(nbits=1024, hardening="balance")),
    ("clk 1024/fold", ClkConfig(nbits=1024, hardening="fold")),
]

#: the shared secret both parties would hold; fixed so runs are repeatable
_BENCH_SALT = "bench-pprl-shared-salt"


# ----------------------------------------------------------------------
# Kernel arm
# ----------------------------------------------------------------------
def synthetic_filters(n, words, rng):
    """Random packed filters at ~50% fill -- the density a well-sized CLK
    converges to, i.e. the worst case for popcount work per word."""
    return rng.integers(0, 2 ** 64, size=(n, words), dtype=np.uint64)


def run_kernel_arm(n, n_queries, words=16, k=10, naive_rows=1500, seed=0):
    rng = np.random.default_rng(seed)
    filters = synthetic_filters(n, words, rng)
    queries = synthetic_filters(n_queries, words, rng)
    pops = popcount(filters)

    naive_rows = min(naive_rows, n)
    sub = np.arange(naive_rows)

    # top-k agreement on the subsample: both arms rank by (-score, row)
    agree = total = 0
    for q in range(n_queries):
        pool_rows, pool_scores = dice_topk(queries[q], filters, k,
                                           pops=pops, rows=sub)
        kernel_ids = [row for _, row in sorted(
            zip(-pool_scores, pool_rows.tolist()))][:k]
        naive = naive_dice_scores(queries[q], filters[sub])
        exact_ids = [row for _, row in sorted(
            (-score, row) for row, score in enumerate(naive))][:k]
        agree += len(set(kernel_ids) & set(exact_ids))
        total += k

    # timing: kernel over the full catalog, naive extrapolated from the
    # subsample (a full pure-Python pass would dominate the bench run)
    dice_topk(queries[0], filters, k, pops=pops)  # warm scratch buffers
    started = time.perf_counter()
    for q in range(n_queries):
        dice_topk(queries[q], filters, k, pops=pops)
    kernel_s = (time.perf_counter() - started) / n_queries

    started = time.perf_counter()
    for q in range(n_queries):
        naive_dice_scores(queries[q], filters[sub])
    naive_sub_s = (time.perf_counter() - started) / n_queries
    naive_s = naive_sub_s * (n / naive_rows)

    return {
        "n": n, "queries": n_queries, "words": words, "k": k,
        "naive_rows_timed": naive_rows,
        "kernel_query_ms": 1000 * kernel_s,
        "naive_query_ms_extrapolated": 1000 * naive_s,
        "speedup": naive_s / kernel_s if kernel_s else 0.0,
        "topk_agreement": agree / total if total else 1.0,
    }


# ----------------------------------------------------------------------
# Trade-off arm
# ----------------------------------------------------------------------
def best_f1(scores, labels):
    """Best F1 over a sweep of the observed score thresholds.

    Identical procedure for the plaintext and CLK arms, so the reported
    delta is the encoding's doing, not the calibration's.
    """
    order = np.argsort(scores)[::-1]
    labels = np.asarray(labels)[order]
    positives = int(labels.sum())
    if positives == 0:
        return 0.0, 0.0
    tp = np.cumsum(labels)
    predicted = np.arange(1, len(labels) + 1)
    precision = tp / predicted
    recall = tp / positives
    f1 = np.divide(2 * precision * recall, precision + recall,
                   out=np.zeros_like(precision),
                   where=(precision + recall) > 0)
    best = int(np.argmax(f1))
    return float(f1[best]), float(np.asarray(scores)[order][best])


def plaintext_dice(encoder, left, right, cache):
    """Q-gram Dice in the clear -- same grams the encoder hashes."""
    a = cache.setdefault(left.record_id, encoder.qgrams(left))
    b = cache.setdefault(right.record_id, encoder.qgrams(right))
    if not a and not b:
        return 0.0
    a, b = set(a), set(b)
    return 2.0 * len(a & b) / (len(a) + len(b))


def run_tradeoff_arm(dataset_name, k=10):
    dataset = load_dataset(dataset_name)
    pairs = dataset.train + dataset.valid + dataset.test
    labels = [pair.label for pair in pairs]
    true_matches = {(pair.left.record_id, pair.right.record_id)
                    for pair in pairs if pair.label == 1}

    rows = []
    # plaintext arm: one encoder just for its q-gram normalization
    base = ClkEncoder(_BENCH_SALT, CLK_CONFIGS[1][1])
    gram_cache = {}
    scores = [plaintext_dice(base, pair.left, pair.right, gram_cache)
              for pair in pairs]
    plain_f1, plain_threshold = best_f1(scores, labels)
    rows.append({"config": "plaintext q-gram dice", "f1": plain_f1,
                 "threshold": plain_threshold, "f1_cost": 0.0,
                 "blocker_recall": None, "kernel_recall": None})

    for label, config in CLK_CONFIGS:
        encoder = ClkEncoder(_BENCH_SALT, config)
        clk_cache = {}
        scores = []
        for pair in pairs:
            a = clk_cache.setdefault(pair.left.record_id,
                                     encoder.encode_record(pair.left))
            b = clk_cache.setdefault(pair.right.record_id,
                                     encoder.encode_record(pair.right))
            inter = int(popcount(a & b))
            denom = int(popcount(a)) + int(popcount(b))
            scores.append(2.0 * inter / denom if denom else 0.0)
        f1, threshold = best_f1(scores, labels)

        blocker = PrivateBlocker(encoder, k=k)
        result = blocker.block(dataset.left_table, dataset.right_table,
                               measure_recall=True)
        found = {(left.record_id, right.record_id)
                 for left, right in result.candidates}
        recall = (len(found & true_matches) / len(true_matches)
                  if true_matches else 1.0)
        rows.append({"config": label, "f1": f1, "threshold": threshold,
                     "f1_cost": plain_f1 - f1, "blocker_recall": recall,
                     "kernel_recall": result.recall_at_k})
    return {"dataset": dataset_name, "pairs": len(pairs),
            "true_matches": len(true_matches), "k": k, "rows": rows}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_pprl_bench(seed=0):
    scale = bench_scale()
    if scale.name == "smoke":
        n, n_queries, naive_rows = 20_000, 10, 1000
    else:
        n, n_queries, naive_rows = 200_000, 40, 2000

    kernel = run_kernel_arm(n, n_queries, naive_rows=naive_rows, seed=seed)
    tradeoffs = [run_tradeoff_arm(name) for name in scale.datasets]

    table_rows = []
    for tradeoff in tradeoffs:
        for row in tradeoff["rows"]:
            table_rows.append([
                tradeoff["dataset"], row["config"], f"{row['f1']:.4f}",
                f"{row['f1_cost']:+.4f}",
                ("-" if row["blocker_recall"] is None
                 else f"{row['blocker_recall']:.4f}"),
                ("-" if row["kernel_recall"] is None
                 else f"{row['kernel_recall']:.4f}"),
            ])
    table = render_table(
        ["Dataset", "Scoring", "Best F1", "F1 cost", "Recall@k", "Kernel"],
        table_rows,
        title=(f"Privacy/F1 trade-off: CLK Dice vs plaintext q-gram Dice "
               f"(k={tradeoffs[0]['k']}, scale={scale.name})"))
    table += (
        f"\nkernel: packed dice_topk {kernel['kernel_query_ms']:.3f} ms/query"
        f" vs naive per-pair loop "
        f"{kernel['naive_query_ms_extrapolated']:.1f} ms/query"
        f" (n={kernel['n']}, extrapolated from "
        f"{kernel['naive_rows_timed']} rows) -> "
        f"{kernel['speedup']:.1f}x, top-{kernel['k']} agreement "
        f"{kernel['topk_agreement']:.4f}")

    worst = max((row["f1_cost"] for t in tradeoffs for row in t["rows"]
                 if row["blocker_recall"] is not None), default=0.0)
    headline = (f"kernel {kernel['speedup']:.0f}x vs naive loop; "
                f"CLK F1 cost <= {worst:.3f} vs plaintext across "
                f"{len(tradeoffs)} datasets x {len(CLK_CONFIGS)} configs")
    data = {
        "kernel": kernel,
        "kernel_speedup": kernel["speedup"],
        "kernel_topk_agreement": kernel["topk_agreement"],
        "tradeoff": tradeoffs,
        "worst_f1_cost": worst,
        "headline": headline,
    }
    return table, data


def test_pprl(benchmark):
    table, data = benchmark.pedantic(run_pprl_bench, rounds=1, iterations=1)
    emit(table, "pprl", data=data)
    assert data["kernel_speedup"] >= 10.0
    assert data["kernel_topk_agreement"] == 1.0
    for tradeoff in data["tradeoff"]:
        for row in tradeoff["rows"]:
            if row["kernel_recall"] is not None:
                assert row["kernel_recall"] == 1.0


if __name__ == "__main__":
    table, data = run_pprl_bench()
    emit(table, "pprl", data=data)
