"""Serving benchmark: dynamic micro-batching vs naive per-request scoring.

Runs the same request stream three ways:

* **naive per-request**: the pre-serving implementation -- each arriving
  request is scored alone with a direct ``model([pair])`` call under
  ``no_grad``, re-serializing and re-tokenizing per request (the same
  seed-style baseline convention as ``bench_inference_engine.py`` /
  ``bench_training.py``);
* **per-request server**: a :class:`repro.serve.MatchServer` with
  ``max_batch_pairs=1`` -- the full serving stack, but every request
  still pays its own forward;
* **micro-batched server**: the production configuration -- requests
  coalesce into token-budgeted micro-batches before one vectorized
  forward through the inference engine.

The headline ``speedup`` column is micro-batched vs naive per-request
scoring. Besides throughput and latency, the table reports the
serving-identity contract: with ``record_batches=True`` the server keeps
the exact pair composition of every micro-batch, and replaying those
batches through an offline :class:`repro.infer.InferenceEngine` with the
same configuration must reproduce every served probability bit for bit
(``bit_identical=True``). A full-list offline call is also compared
(``max_abs_diff``), which can differ by float-reduction noise only.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.autograd import no_grad  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.infer import EngineConfig, InferenceEngine  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.serve import MatchServer, ModelBundle, ServerConfig  # noqa: E402


def naive_per_request(model, pairs):
    """Score each request alone, the way a handler written directly on the
    model would: one ``model([pair])`` forward per request."""
    probs = []
    with no_grad():
        for pair in pairs:
            probs.append(model([pair]).numpy()[0])
    return np.stack(probs)


def replay_is_bit_identical(server, bundle, responses, pairs):
    """Replay every logged micro-batch offline; True when all served
    probabilities match the replayed ones exactly."""
    config = server.config
    engine = InferenceEngine(EngineConfig(
        token_budget=config.token_budget,
        max_batch_pairs=config.max_batch_pairs,
        cache_capacity=config.cache_capacity))
    position = {id(pair): i for i, pair in enumerate(pairs)}
    rows = 0
    for entry in server.batch_log:
        replayed = engine.predict_proba(bundle.model, entry["pairs"])
        for row, pair in enumerate(entry["pairs"]):
            response = responses[position[id(pair)]]
            if not np.array_equal(response.probs, replayed[row]):
                return False
            rows += 1
    return rows == len(pairs)


def run_serving_comparison(bundle, pairs, iterations=3, max_batch_pairs=48,
                           token_budget=8192):
    """Time naive / per-request-server / micro-batched serving over the
    same stream of ``iterations`` sweeps.

    Each arm gets one untimed warmup sweep first, so the timed sweeps
    measure steady-state serving: the servers run with a warm encoding
    cache the way a long-lived process would, while the naive handler --
    which keeps no state between requests -- is unaffected.
    """
    pairs = list(pairs)

    naive_per_request(bundle.model, pairs)
    started = time.perf_counter()
    for _ in range(iterations):
        naive_per_request(bundle.model, pairs)
    naive_elapsed = time.perf_counter() - started

    single = MatchServer(bundle, ServerConfig(
        max_batch_pairs=1, token_budget=token_budget))
    for pair in pairs:
        single.score(pair)
    started = time.perf_counter()
    for _ in range(iterations):
        for pair in pairs:
            single.score(pair)
    single_elapsed = time.perf_counter() - started

    batched = MatchServer(bundle, ServerConfig(
        max_batch_pairs=max_batch_pairs, token_budget=token_budget,
        max_queue=max(256, len(pairs)), record_batches=True))
    batched.score_batch(pairs)
    warmup_batches = batched.stats()["batches"]
    started = time.perf_counter()
    for _ in range(iterations - 1):
        batched.score_batch(pairs)
    responses = batched.score_batch(pairs)
    batched_elapsed = time.perf_counter() - started
    timed_batches = batched.stats()["batches"] - warmup_batches

    # identity contract: replay the last sweep's batches offline (every
    # sweep logs batches; ``responses`` belongs to the final one)
    last_sweep = []
    seen = 0
    for entry in reversed(batched.batch_log):
        last_sweep.append(entry)
        seen += len(entry["pairs"])
        if seen >= len(pairs):
            break
    batched.batch_log[:] = reversed(last_sweep)
    bit_identical = replay_is_bit_identical(batched, bundle, responses, pairs)

    offline = InferenceEngine(EngineConfig(
        token_budget=token_budget, max_batch_pairs=max_batch_pairs))
    full = offline.predict_proba(bundle.model, pairs)
    served = np.stack([response.probs for response in responses])
    max_abs_diff = float(np.abs(served - full).max()) if len(pairs) else 0.0

    latencies = sorted(response.queue_seconds + response.service_seconds
                       for response in responses)
    scored = iterations * len(pairs)
    naive_pps = scored / naive_elapsed if naive_elapsed else 0.0
    single_pps = scored / single_elapsed if single_elapsed else 0.0
    batched_pps = scored / batched_elapsed if batched_elapsed else 0.0
    return {
        "pairs": len(pairs),
        "iterations": iterations,
        "naive_pps": naive_pps,
        "single_pps": single_pps,
        "batched_pps": batched_pps,
        "speedup": batched_pps / naive_pps if naive_pps else 0.0,
        "speedup_vs_single": batched_pps / single_pps if single_pps else 0.0,
        "batches": timed_batches,
        "mean_batch_size": scored / timed_batches if timed_batches else 0.0,
        "p50_latency_ms": 1000 * latencies[len(latencies) // 2]
        if latencies else 0.0,
        "p95_latency_ms": 1000 * latencies[int(len(latencies) * 0.95)]
        if latencies else 0.0,
        "bit_identical": bit_identical,
        "max_abs_diff": max_abs_diff,
        "shed": batched.stats()["shed"],
    }


def run_serving_bench():
    scale = bench_scale()
    lm, tok = load_pretrained(MODEL_NAME)
    # the training default (PromptEMConfig: t2 template, max_len=96) --
    # i.e. the model a bundle exported by ``repro run`` actually contains
    template = make_template("t2", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    bundle = ModelBundle.from_model(model, threshold=0.5, name=MODEL_NAME)

    rows = []
    results = {}
    for dataset_name in scale.datasets:
        dataset = load_dataset(dataset_name)
        pool = (dataset.train + dataset.test)[:4 * scale.unlabeled_cap]
        result = run_serving_comparison(bundle, pool)
        results[dataset_name] = result
        rows.append([
            dataset_name,
            result["pairs"],
            f"{result['naive_pps']:.1f}",
            f"{result['single_pps']:.1f}",
            f"{result['batched_pps']:.1f}",
            f"{result['speedup']:.2f}x",
            f"{result['mean_batch_size']:.1f}",
            f"{result['p50_latency_ms']:.1f}",
            f"{result['p95_latency_ms']:.1f}",
            str(result["bit_identical"]),
            f"{result['max_abs_diff']:.2e}",
        ])

    headers = ["Dataset", "Pairs", "Naive p/s", "1-req srv p/s",
               "Batched p/s", "Speedup", "Batch size", "p50 ms", "p95 ms",
               "Bit-identical", "Max |diff|"]
    table = render_table(
        headers, rows,
        title=f"Serving: micro-batched vs per-request (scale={scale.name})")
    return table, results


def test_serving(benchmark):
    table, data = benchmark.pedantic(run_serving_bench, rounds=1,
                                     iterations=1)
    emit(table, "serving", data=data)
