"""Serving observability overhead benchmark: one request stream, three
telemetry arms.

The serving observability layer (``docs/OBSERVABILITY.md``) promises two
things at once: *disabled telemetry is a strict no-op fast path* (within
the same ~2% budget the training-side ``bench_observability.py`` holds),
and *enabled telemetry never changes a served byte*. Both are measured
here by serving the identical pair stream through a fresh
:class:`repro.serve.MatchServer` under three arms:

* **disabled** -- no telemetry session: the always-on SLO/drift
  accounting still runs (it is part of the serving path), but every
  metrics/trace call sites hits the shared null objects;
* **metrics** -- an in-memory session: registry counters, histograms and
  drift gauges live, no run log, no request traces;
* **full** -- a JSONL run log with ``trace=True``: per-request
  ``TraceContext`` admission, stage timing, stitching, ``serve.trace``
  events flushed per record.

Every arm gets one untimed warmup sweep (steady-state encoding cache, the
way a long-lived server runs), then the timed sweeps. The final sweep's
probabilities are compared bit-for-bit across arms
(``bit_identical``) -- tracing rides entirely outside the scored path, so
a single differing byte fails the benchmark's contract.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.obs import telemetry_session  # noqa: E402
from repro.serve import MatchServer, ModelBundle, ServerConfig  # noqa: E402

#: telemetry arms, in reporting order; "disabled" is the baseline
ARMS = ("disabled", "metrics", "full")


def _serve_sweeps(bundle, pairs, iterations, max_batch_pairs, token_budget):
    """One fresh server: warmup sweep, then ``iterations`` timed sweeps.

    Returns (elapsed_seconds, responses_of_final_sweep, server).
    """
    server = MatchServer(bundle, ServerConfig(
        max_batch_pairs=max_batch_pairs, token_budget=token_budget,
        max_queue=max(256, len(pairs))))
    server.score_batch(pairs)  # warmup: encoding cache, lazy telemetry
    started = time.perf_counter()
    for _ in range(iterations - 1):
        server.score_batch(pairs)
    responses = server.score_batch(pairs)
    return time.perf_counter() - started, responses, server


def run_obs_overhead(bundle, pairs, iterations=3, max_batch_pairs=32,
                     token_budget=4096):
    """Serve the same stream under the three arms; see module docstring.

    Returns a dict with per-arm wall/throughput/overhead, trace counts
    from the full arm, and the cross-arm ``bit_identical`` verdict.
    """
    pairs = list(pairs)
    arms = {}
    probs = {}
    trace_count = 0
    runlog_records = 0
    for arm in ARMS:
        if arm == "disabled":
            elapsed, responses, server = _serve_sweeps(
                bundle, pairs, iterations, max_batch_pairs, token_budget)
        elif arm == "metrics":
            with telemetry_session():
                elapsed, responses, server = _serve_sweeps(
                    bundle, pairs, iterations, max_batch_pairs,
                    token_budget)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                with telemetry_session(path=os.path.join(tmp, "s.jsonl"),
                                       trace=True) as tel:
                    elapsed, responses, server = _serve_sweeps(
                        bundle, pairs, iterations, max_batch_pairs,
                        token_budget)
                    runlog_records = tel.runlog.records_written
            tracer = server.request_tracer
            trace_count = tracer.count if tracer is not None else 0
            assert all(r.trace is not None for r in responses), \
                "full arm must attach a stitched tree to every response"
        probs[arm] = np.stack([response.probs for response in responses])
        scored = iterations * len(pairs)
        arms[arm] = {
            "seconds": elapsed,
            "requests": scored,
            "requests_per_sec": scored / elapsed if elapsed > 0 else 0.0,
        }

    base = arms["disabled"]["seconds"]
    for arm in ("metrics", "full"):
        arms[arm]["overhead_pct"] = (
            100.0 * (arms[arm]["seconds"] - base) / base if base > 0
            else 0.0)

    bit_identical = all(np.array_equal(probs["disabled"], probs[arm])
                        for arm in ("metrics", "full"))
    assert bit_identical, \
        "telemetry changed a served probability -- contract violation"
    return {
        "pairs": len(pairs),
        "iterations": iterations,
        "arms": arms,
        "traced_requests": trace_count,
        "runlog_records": runlog_records,
        "bit_identical": bit_identical,
        "budget_pct": 2.0,
    }


def main() -> None:
    scale = bench_scale()
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template("t2", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    bundle = ModelBundle.from_model(model, threshold=0.5, name=MODEL_NAME)
    dataset = load_dataset("REL-HETER")
    if scale.name == "paper":
        pairs, iterations = (dataset.train + dataset.test)[:128], 4
    else:
        pairs, iterations = dataset.test[:16], 2

    result = run_obs_overhead(bundle, pairs, iterations=iterations)
    rows = []
    for arm in ARMS:
        stats = result["arms"][arm]
        rows.append([arm, f"{stats['seconds']:.2f}s",
                     f"{stats['requests_per_sec']:.1f}",
                     "--" if arm == "disabled"
                     else f"{stats['overhead_pct']:+.2f}%"])
    table = render_table(
        ["Arm", "Wall", "req/s", "Overhead"], rows,
        title=f"Serving telemetry overhead ({result['pairs']} pairs x "
              f"{result['iterations']} sweeps, budget "
              f"{result['budget_pct']:.0f}%, bit_identical="
              f"{result['bit_identical']})")
    emit(table, "serving_obs", data=result)

    full_pct = result["arms"]["full"]["overhead_pct"]
    within = full_pct < result["budget_pct"]
    print(f"full tracing overhead: {full_pct:+.2f}% "
          f"({'within' if within else 'OVER'} the "
          f"{result['budget_pct']:.0f}% budget); "
          f"{result['traced_requests']} requests traced, "
          f"{result['runlog_records']} run-log records")


if __name__ == "__main__":
    main()
