"""Serving-pool benchmark: replicated workers vs one micro-batched server.

Runs the same request stream through a single-process
:class:`repro.serve.MatchServer` (the PR-5 configuration) and through
:class:`repro.serve.pool.ServingPool` at 1/2/4 replicas, each replica a
forked worker adopting the bundle's weights zero-copy from shared memory
with the candidate catalog hash-sharded across them.

Two numbers matter:

* **throughput scaling** -- ``pool x`` is each replica count against the
  single-process server. Like ``bench_parallel.py``, scaling is
  hardware-bound: forked replicas only run concurrently when the host
  grants multiple cores, so ``pool x`` approaches the replica count on
  multicore hosts and honestly hovers near (or below -- the router adds
  pipe hops) 1.0x on a single-core container where every process
  time-slices one CPU. The title and JSON record ``cores``;
* **bit-identity** -- the part no hardware can change. Every replica logs
  the exact pair composition of its micro-batches; replaying every logged
  batch through an offline :class:`repro.infer.InferenceEngine` must
  reproduce every served probability bit for bit at every replica/shard
  count (``bit_identical=True``). The pool's responses are also compared
  pair for pair against the single-process server's
  (``matches_single``/``max_abs_vs_single``) -- to float32 reduction
  tolerance rather than bitwise, because the two arms batch the stream
  differently and batch composition changes padding/accumulation shapes
  in the engine. Replication changes wall-clock, never the replay bits.
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.infer import EngineConfig, InferenceEngine  # noqa: E402
from repro.lm import load_pretrained  # noqa: E402
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.serve import MatchServer, ModelBundle, ServerConfig  # noqa: E402
from repro.serve.pool import PoolConfig, ServingPool  # noqa: E402

REPLICA_COUNTS = (1, 2, 4)


def replay_pool_batches(pool, bundle, responses, config):
    """Replay every replica's logged micro-batches offline.

    Pairs cross process pipes, so responses cannot be matched to log
    entries by object identity the way ``bench_serving.py`` does; instead
    responses are grouped by ``(replica, batch_id)`` -- both stamped on
    the response by the worker that scored it -- and each group's sorted
    probability rows must equal the offline engine's rows for the logged
    pair list, bit for bit. Returns ``(bit_identical, replayed_rows)``.
    """
    engine = InferenceEngine(EngineConfig(
        token_budget=config.token_budget,
        max_batch_pairs=config.max_batch_pairs,
        cache_capacity=config.cache_capacity))
    by_batch = {}
    for response in responses:
        # the serial fallback stamps replica None but logs under key 0
        replica = response.replica if response.replica is not None else 0
        by_batch.setdefault((replica, response.batch_id),
                            []).append(response)

    rows = 0
    for replica, entries in pool.batch_logs().items():
        for entry in entries:
            batch_responses = by_batch.get((replica, entry["batch_id"]))
            if batch_responses is None:
                continue
            if len(batch_responses) != len(entry["pairs"]):
                return False, rows
            replayed = engine.predict_proba(bundle.model, entry["pairs"])
            got = np.stack(sorted((r.probs for r in batch_responses),
                                  key=lambda p: tuple(p)))
            want = np.stack(sorted(replayed, key=lambda p: tuple(p)))
            if not np.array_equal(got, want):
                return False, rows
            rows += len(batch_responses)
    return rows == len(responses), rows


def run_pool_comparison(bundle, pairs, replica_counts=REPLICA_COUNTS,
                        shards=None, iterations=2, max_batch_pairs=16,
                        token_budget=4096):
    """Time single-process serving vs the pool at each replica count.

    Every arm scores the same ``iterations`` sweeps after one untimed
    warmup sweep (steady-state: warm encoding caches, replicas forked and
    idle). Identity checks run on the final sweep's responses.
    """
    pairs = list(pairs)
    scored = iterations * len(pairs)

    def server_config():
        return ServerConfig(
            max_batch_pairs=max_batch_pairs, token_budget=token_budget,
            max_queue=max(1024, 4 * len(pairs)), record_batches=True)

    single = MatchServer(bundle, server_config())
    single.score_batch(pairs)
    started = time.perf_counter()
    for _ in range(iterations - 1):
        single.score_batch(pairs)
    single_responses = single.score_batch(pairs)
    single_elapsed = time.perf_counter() - started
    single_pps = scored / single_elapsed if single_elapsed else 0.0
    single_probs = np.stack([r.probs for r in single_responses])

    arms = {}
    mode = None
    for replicas in replica_counts:
        config = server_config()
        # size the per-replica window to the stream so the timed sweeps
        # measure scoring, not the Overloaded retry loop of score_batch
        pool = ServingPool(bundle, PoolConfig(
            replicas=replicas, shards=shards or replicas, server=config,
            max_outstanding=max(64, len(pairs))))
        with pool:
            mode = pool.stats()["mode"]
            pool.score_batch(pairs, timeout=120.0)
            responses = []
            started = time.perf_counter()
            for _ in range(iterations):
                responses.extend(pool.score_batch(pairs, timeout=120.0))
            elapsed = time.perf_counter() - started

            bit_identical, replayed_rows = replay_pool_batches(
                pool, bundle, responses, config)
            final = responses[-len(pairs):]
            final_probs = np.stack([r.probs for r in final])
            max_abs_vs_single = float(
                np.max(np.abs(final_probs - single_probs)))
            matches_single = bool(np.allclose(
                final_probs, single_probs, rtol=1e-5, atol=1e-7))
            stats = pool.stats()
            replicas_used = sorted({r.replica for r in final
                                    if r.replica is not None})
        pps = scored / elapsed if elapsed else 0.0
        arms[replicas] = {
            "pairs_per_sec": pps,
            "elapsed": elapsed,
            "speedup_vs_single": pps / single_pps if single_pps else 0.0,
            "bit_identical": bit_identical,
            "replayed_rows": replayed_rows,
            "matches_single": matches_single,
            "max_abs_vs_single": max_abs_vs_single,
            "replicas_used": replicas_used,
            "shed": stats["shed"],
            "redispatched": stats["redispatched"],
            "deaths": stats["deaths"],
        }

    return {
        "pairs": len(pairs),
        "iterations": iterations,
        "mode": mode,
        "single_pps": single_pps,
        "arms": arms,
    }


def run_pool_bench():
    scale = bench_scale()
    lm, tok = load_pretrained(MODEL_NAME)
    template = make_template("t2", tok, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    model.eval()
    bundle = ModelBundle.from_model(model, threshold=0.5, name=MODEL_NAME)

    cores = os.cpu_count() or 1
    rows = []
    results = {"cores_detected": cores,
               "replica_counts": list(REPLICA_COUNTS), "datasets": {}}
    for dataset_name in scale.datasets:
        dataset = load_dataset(dataset_name)
        pool = (dataset.train + dataset.test)[:4 * scale.unlabeled_cap]
        result = run_pool_comparison(bundle, pool)
        results["datasets"][dataset_name] = result
        for replicas in REPLICA_COUNTS:
            arm = result["arms"][replicas]
            rows.append([
                dataset_name,
                result["pairs"],
                replicas,
                f"{arm['pairs_per_sec']:.1f}",
                f"{arm['speedup_vs_single']:.2f}x",
                str(arm["bit_identical"]),
                str(arm["matches_single"]),
                arm["shed"],
            ])

    headers = ["Dataset", "Pairs", "Replicas", "Pairs/s", "Pool x",
               "Bit-identical", "= single", "Shed"]
    table = render_table(
        headers, rows,
        title=f"Serving pool: replicas vs single process (scale={scale.name},"
              f" cores={cores}; pool scaling is core-bound, "
              "bit-identity is not)")
    return table, results


def test_serving_pool(benchmark):
    table, data = benchmark.pedantic(run_pool_bench, rounds=1, iterations=1)
    emit(table, "serving_pool", data=data)
