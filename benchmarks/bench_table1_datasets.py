"""Table 1: statistics of the eight benchmark datasets.

Regenerates the dataset-statistics table (rows, attrs, labeled examples,
low-resource rate and train size) for our scaled-down synthetic versions.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit  # noqa: E402
from repro.data import DATASET_NAMES, load_dataset  # noqa: E402
from repro.eval import render_table


def build_table1() -> str:
    rows = []
    for name in DATASET_NAMES:
        s = load_dataset(name).statistics()
        rows.append([s.name, s.domain, s.left_rows, f"{s.left_attrs:.2f}",
                     s.right_rows, f"{s.right_attrs:.2f}", s.labeled,
                     f"{s.rate:.0%}", s.train_low_resource])
    return render_table(
        ["Dataset", "Domain", "L#row", "L#attr", "R#row", "R#attr",
         "All", "rate", "Train"],
        rows, title="Table 1: dataset statistics (scaled-down synthetic)")


def test_table1_dataset_statistics(benchmark):
    table = benchmark(build_table1)
    emit(table, "table1")
