"""Table 2: main results under the default low-resource setting.

All nine methods plus the three PromptEM ablations, across the benchmark
datasets at the active scale, reporting P/R/F1 on the test split. The
paper's headline shape to check: PromptEM best or near-best everywhere;
TDmatch strong on digit-heavy SEMI-HETER; DeepMatcher weakest.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import ablation_factories, emit, method_factories  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_prf_table  # noqa: E402


def run_table2() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    factories = {**method_factories(scale), **ablation_factories(scale)}
    for dataset in scale.datasets:
        for method, factory in factories.items():
            runner.run(method, factory, dataset, seed=scale.seeds[0])
    return render_prf_table(
        f"Table 2: default low-resource results (scale={scale.name})",
        list(scale.datasets), runner.as_prf_grid())


def test_table2_main_results(benchmark):
    table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(table, "table2")
