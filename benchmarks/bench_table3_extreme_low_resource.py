"""Table 3: the extremely challenging low-resource setting.

Every method gets exactly 80 labeled training pairs (or the full train set
if smaller), on every dataset at the active scale. The shape to check:
supervised baselines degrade much more than PromptEM; the unsupervised
TDmatch row is unchanged from Table 2 (it never used labels).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit, method_factories  # noqa: E402
from repro.eval import ExperimentRunner, bench_scale, render_prf_table  # noqa: E402

#: the paper fixes 80 labeled examples; our scaled datasets use 40
EXTREME_BUDGET = {"paper": 40, "smoke": 12}


def run_table3() -> str:
    scale = bench_scale()
    budget = EXTREME_BUDGET[scale.name]
    runner = ExperimentRunner(scale)
    for dataset in scale.datasets:
        for method, factory in method_factories(scale).items():
            runner.run(method, factory, dataset, count=budget,
                       seed=scale.seeds[0])
    return render_prf_table(
        f"Table 3: extreme low-resource ({budget} labels, scale={scale.name})",
        list(scale.datasets), runner.as_prf_grid())


def test_table3_extreme_low_resource(benchmark):
    table = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit(table, "table3")
