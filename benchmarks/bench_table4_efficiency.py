"""Table 4: efficiency -- training time and memory.

Compares the best baselines per category (SBERT, Rotom, TDmatch) against
PromptEM- (no dynamic pruning) and full PromptEM, reporting wall-clock
training time and tracked memory. Shapes to check: TDmatch is by far the
most expensive in time and memory on the larger datasets; DDP cuts
PromptEM's time versus PromptEM-; the LM methods have similar memory.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import (  # noqa: E402
    MODEL_NAME, PromptEMMatcher, emit, promptem_config, tdmatch_config,
)
from repro.baselines import Rotom, SentenceBert, TDmatch  # noqa: E402
from repro.eval import (  # noqa: E402
    ExperimentRunner, bench_scale, render_table,
)


def run_table4() -> str:
    scale = bench_scale()
    methods = {
        "SBERT": lambda: SentenceBert(epochs=scale.lm_epochs,
                                      model_name=MODEL_NAME),
        "Rotom": lambda: Rotom(epochs=max(scale.lm_epochs // 2, 4),
                               model_name=MODEL_NAME),
        "TDmatch": lambda: TDmatch(tdmatch_config(scale)),
        "PromptEM-": lambda: PromptEMMatcher(
            promptem_config(scale).without_pruning(), "PromptEM-"),
        "PromptEM": lambda: PromptEMMatcher(promptem_config(scale)),
    }
    runner = ExperimentRunner(scale)
    rows = []
    for dataset in scale.datasets:
        row = [dataset]
        for method, factory in methods.items():
            result = runner.run(method, factory, dataset,
                                seed=scale.seeds[0], measure_resources=True)
            row.append(result.resources.formatted_time)
            row.append(result.resources.formatted_memory)
        rows.append(row)

    headers = ["Dataset"]
    for method in methods:
        headers += [f"{method}:T", f"{method}:M"]
    return render_table(headers, rows,
                        title=f"Table 4: efficiency (scale={scale.name})")


def test_table4_efficiency(benchmark):
    table = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    emit(table, "table4")
