"""Table 5: pseudo-label selection strategies -- TPR/TNR quality.

Trains a PromptEM teacher per dataset, then compares the quality of
pseudo-labels selected by uncertainty (the paper's), confidence, and
clustering at u_r = 0.1 fixed (as in Section 5.5). The shape to check:
uncertainty dominates both alternatives on nearly every dataset.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from _harness import emit, promptem_config  # noqa: E402
from repro.core import Trainer, TrainerConfig, select_pseudo_labels  # noqa: E402
from repro.core.matcher import PromptEM  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.eval.metrics import pseudo_label_quality  # noqa: E402
from repro.eval.protocol import ExperimentRunner  # noqa: E402

STRATEGIES = ("uncertainty", "confidence", "clustering")


def run_table5() -> str:
    scale = bench_scale()
    runner = ExperimentRunner(scale)
    rows = []
    for dataset in scale.datasets:
        view = runner.view_for(dataset, seed=scale.seeds[0])
        config = promptem_config(scale)
        facade = PromptEM(config)
        facade._ensure_backbone()
        facade._fit_summarizer(view.labeled)
        teacher = facade._make_model()
        Trainer(teacher, TrainerConfig(
            epochs=config.teacher_epochs, batch_size=config.batch_size,
            lr=config.lr, seed=config.seed)).fit(view.labeled,
                                                 valid=view.valid)

        pool = view.unlabeled[: scale.unlabeled_cap]
        truth = np.array(view.unlabeled_true_labels[: scale.unlabeled_cap])
        row = [dataset]
        for strategy in STRATEGIES:
            selection = select_pseudo_labels(
                teacher, pool, ratio=0.1, passes=scale.mc_passes,
                strategy=strategy, seed=0)
            tpr, tnr = pseudo_label_quality(truth[selection.indices],
                                            selection.pseudo_labels)
            row += [round(tpr, 3), round(tnr, 3)]
        rows.append(row)

    headers = ["Dataset"]
    for strategy in STRATEGIES:
        headers += [f"{strategy}:TPR", f"{strategy}:TNR"]
    return render_table(headers, rows, decimals=3,
                        title=f"Table 5: pseudo-label quality (scale={scale.name})")


def test_table5_pseudo_label_strategies(benchmark):
    table = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    emit(table, "table5")
