"""Table 6 (appendix): results under the sufficient-resource setting.

Every supervised method trains on 100% of the train split. Shapes to
check: everyone improves over Table 2; PromptEM still best on average;
the w/o PT gap shrinks but stays positive (paper: -5.2% average).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import dataclasses  # noqa: E402

from _harness import (  # noqa: E402
    PromptEMMatcher, emit, method_factories, promptem_config,
)
from repro.eval import ExperimentRunner, bench_scale, render_prf_table  # noqa: E402


def run_table6() -> str:
    scale = bench_scale()
    # The full train split has ~20x more steps per epoch; use the reduced
    # sufficient-resource epoch budget.
    scale = dataclasses.replace(
        scale, lm_epochs=scale.sufficient_epochs,
        teacher_epochs=scale.sufficient_epochs,
        student_epochs=scale.sufficient_epochs + 2)
    runner = ExperimentRunner(scale)
    factories = dict(method_factories(scale))
    factories["PromptEM w/o PT"] = lambda: PromptEMMatcher(
        promptem_config(scale).without_prompt_tuning(), "PromptEM w/o PT")
    for dataset in scale.datasets:
        for method, factory in factories.items():
            runner.run(method, factory, dataset, rate=1.0,
                       seed=scale.seeds[0])
    return render_prf_table(
        f"Table 6: sufficient-resource results (scale={scale.name})",
        list(scale.datasets), runner.as_prf_grid())


def test_table6_sufficient_resource(benchmark):
    table = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    emit(table, "table6")
