"""Training-fastpath benchmark: MLM pre-training and Trainer.fit throughput.

Times the two training loops that dominate the benchmark sweeps two ways:

* **seed loop**: faithful copies of the pre-fastpath implementations --
  per-parameter looped AdamW, python-sum gradient clipping, the composed
  ``log_softmax`` cross-entropy over *every* sequence position, fixed
  ``batch_size`` slices of the shuffled order, per-pair re-serialization
  each epoch and a transient validation engine (``Trainer.fit``);
* **fastpath**: the current implementations -- flat-buffer AdamW with the
  clip folded into ``step()``, fused cross-entropy over *masked positions
  only*, token-budget length-bucketed batches, and one persistent
  engine + encoding cache per fit.

The table reports optimizer steps/sec for both arms plus a **parity**
column: both arms re-run under float64 in rng-order-preserving mode (same
batches, same masking/dropout draws), and the max-abs difference over all
final parameters is reported. Everything then differs only in summation
order, so the divergence is pure round-off (<= 1e-6 documented bound).
"""

import sys
import time
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _harness import MODEL_NAME, emit  # noqa: E402
from repro.autograd import (  # noqa: E402
    Tensor, functional as F, get_default_dtype, set_default_dtype, where,
)
from repro.core import PromptModel, Verbalizer, make_template  # noqa: E402
from repro.core.trainer import (  # noqa: E402
    Trainer, TrainerConfig, _class_balance_weights, predict_proba,
)
from repro.data import load_dataset  # noqa: E402
from repro.eval import bench_scale, render_table  # noqa: E402
from repro.eval.metrics import ConfusionMatrix  # noqa: E402
from repro.lm import (  # noqa: E402
    IGNORE_INDEX, LMConfig, MiniLM, PretrainConfig, load_pretrained,
    mask_tokens, pretrain,
)
from repro.lm.model import pad_batch  # noqa: E402
from repro.text import Tokenizer, build_corpus, build_vocab  # noqa: E402


# ----------------------------------------------------------------------
# Seed-style reference implementations (pre-fastpath, kept for comparison)
# ----------------------------------------------------------------------
_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def composed_gelu(x):
    """The seed ``gelu``: seven chained elementwise Tensor ops."""
    inner = (x + (x ** 3) * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def composed_layer_norm(x, gamma, beta, eps=1e-5):
    """The seed ``LayerNorm.forward``: mean/var/sqrt recorded op by op."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mu) / (var + eps).sqrt()
    return normed * gamma + beta


@contextmanager
def seed_style_ops():
    """Swap the fused gelu/layer_norm graph nodes for the seed's composed
    chains for the duration of a reference-arm run.

    Every call site goes through the shared ``repro.autograd.functional``
    module object (``F.gelu`` / ``F.layer_norm``), so patching its
    attributes restores the pre-fastpath op graph everywhere -- including
    inside model forward passes -- without touching model code. The
    ``no_grad`` inference kernels (:mod:`repro.infer.fastpath`) are
    unaffected, matching the state after PR 1.
    """
    fused_gelu, fused_layer_norm = F.gelu, F.layer_norm
    F.gelu = composed_gelu
    F.layer_norm = composed_layer_norm
    try:
        yield
    finally:
        F.gelu, F.layer_norm = fused_gelu, fused_layer_norm


class LoopedAdam:
    """The seed ``Adam``: a Python loop over per-parameter moment arrays."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self):
        for p in self.parameters:
            p.grad = None

    def step(self):
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class LoopedAdamW(LoopedAdam):
    """The seed ``AdamW``: decoupled decay loop, then the Adam loop."""

    def __init__(self, parameters, lr=2e-5, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.01):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps,
                         weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self):
        if self.decoupled_weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.decoupled_weight_decay * p.data
        super().step()


class LoopedSGD:
    """The seed ``SGD`` with momentum, looped per parameter."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self):
        for p in self.parameters:
            p.grad = None

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


def seed_clip_grad_norm(parameters, max_norm):
    """The seed clip: python ``sum`` of per-parameter squared norms."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


def seed_cross_entropy(logits, targets, ignore_index=None):
    """The seed loss: composed ``log_softmax`` + gather + mean graph."""
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=-1)
    if ignore_index is not None:
        keep = targets != ignore_index
    else:
        keep = np.ones(n, dtype=bool)
    if not keep.any():
        return Tensor(0.0, requires_grad=logits.requires_grad)
    rows = np.nonzero(keep)[0]
    picked = log_probs[rows, targets[rows]]
    return -picked.sum() / len(rows)


def seed_tune_threshold(probs, labels):
    """The seed threshold search: one ConfusionMatrix per candidate cut."""
    labels = np.asarray(labels, dtype=np.int64)
    scores = probs[:, 1]
    best_threshold, best_f1 = 0.5, -1.0
    candidates = np.unique(scores)
    cuts = np.concatenate([[0.5], (candidates[:-1] + candidates[1:]) / 2.0]) \
        if len(candidates) > 1 else np.array([0.5])
    for cut in cuts:
        cm = ConfusionMatrix.from_labels(labels, (scores > cut).astype(int))
        if cm.f1 > best_f1:
            best_f1, best_threshold = cm.f1, float(cut)
    return best_threshold


def seed_style_pretrain(model, tokenizer, corpus, config):
    """The seed MLM loop: full-position vocab projection, looped optimizer.

    Returns the number of optimizer steps taken. Batch order and rng use
    match ``pretrain(..., order_preserving=True)`` exactly, so in float64
    the two runs differ only in round-off.
    """
    rng = np.random.default_rng(config.seed)
    vocab = tokenizer.vocab
    encoded = [
        tokenizer.encode(text,
                         max_len=min(config.max_len, model.config.max_len)).ids
        for text in corpus
    ]
    encoded = [ids for ids in encoded if len(ids) > 2]
    optimizer = LoopedAdamW(model.parameters(), lr=config.lr,
                            weight_decay=config.weight_decay)
    focus_ids = [vocab.id_of(t) for t in config.focus_tokens if t in vocab]
    model.train()
    steps = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(encoded))
        for start in range(0, len(order), config.batch_size):
            batch = [encoded[i] for i in order[start:start + config.batch_size]]
            ids, pad_mask = pad_batch(batch, pad_id=vocab.pad_id)
            masked, labels = mask_tokens(
                ids, pad_mask, vocab_size=len(vocab), mask_id=vocab.mask_id,
                special_ids=vocab.special_ids, rng=rng,
                mask_prob=config.mask_prob, focus_ids=focus_ids,
                focus_mask_prob=config.focus_mask_prob)
            if (labels == IGNORE_INDEX).all():
                continue
            hidden = model.encode(masked, pad_mask=pad_mask)
            logits = model.mlm_logits(hidden)
            loss = seed_cross_entropy(logits.reshape(-1, len(vocab)),
                                      labels.reshape(-1),
                                      ignore_index=IGNORE_INDEX)
            optimizer.zero_grad()
            loss.backward()
            seed_clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            steps += 1
    model.eval()
    return steps


def seed_style_prompt_loss(model, pairs, labels, sample_weights=None):
    """The seed ``PromptModel`` loss: vocab projection over *every* position.

    Replicates the pre-fastpath ``mask_logits_encoded``, which ran the
    ``(B*T, d) x (d, V)`` MLM head over the whole padded batch and only
    then gathered the [MASK] rows. Row-independent ops make the gathered
    logits bit-identical to the fastpath's gather-then-project, so this is
    a pure-cost reference.
    """
    encodings = [model.encode_pair(p) for p in pairs]
    ids, pad_mask, is_prompt, prompt_idx, mask_positions = \
        model._assemble(encodings)
    batch, longest = ids.shape
    token_vecs = model.lm.token_embedding(ids)
    if model.prompt_encoder is not None and is_prompt.any():
        prompt_vecs = model.prompt_encoder()
        gathered = prompt_vecs[prompt_idx.reshape(-1)].reshape(
            batch, longest, model.lm.config.d_model)
        condition = np.broadcast_to(
            is_prompt[:, :, None], (batch, longest, model.lm.config.d_model))
        token_vecs = where(condition, gathered, token_vecs)
    positions = np.broadcast_to(np.arange(longest), ids.shape)
    embeds = model.lm.embed_from_vectors(token_vecs, positions, token_ids=ids)
    hidden = model.lm.encode(ids, pad_mask=pad_mask, inputs_embeds=embeds)
    logits = model.lm.mlm_logits(hidden)  # (B, T, V): the seed's hot spot
    mask_logits = logits[(np.arange(batch), mask_positions)]

    probs = model._class_probs(mask_logits)
    labels = np.asarray(labels, dtype=np.int64)
    picked = probs[(np.arange(len(labels)), labels)]
    logs = (picked + 1e-12).log()
    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            return Tensor(0.0)
        return -(logs * Tensor(weights)).sum() / total
    return -logs.mean()


def seed_style_fit(model, train, valid, cfg, loss_fn=None):
    """The seed ``Trainer.fit``: per-pair losses (re-serializing every
    batch every epoch), looped AdamW, transient validation engine.

    ``loss_fn(model, batch, labels, sample_weights)`` defaults to
    ``model.loss``; the benchmark passes :func:`seed_style_prompt_loss` so
    the arm also pays the seed's full-position MLM projection.
    Returns the number of optimizer steps taken.
    """
    if loss_fn is None:
        def loss_fn(model, batch, labels, sample_weights=None):
            return model.loss(batch, labels, sample_weights=sample_weights)
    rng = np.random.default_rng(cfg.seed)
    train = list(train)
    weights = _class_balance_weights(train) if cfg.balance_classes else None
    optimizer = LoopedAdamW(model.parameters(), lr=cfg.lr,
                            weight_decay=cfg.weight_decay)
    best_f1, best_state, best_threshold = -1.0, None, None
    steps = 0
    for _ in range(cfg.epochs):
        order = rng.permutation(len(train))
        model.train()
        for start in range(0, len(order), cfg.batch_size):
            idx = order[start:start + cfg.batch_size]
            batch = [train[i] for i in idx]
            labels = np.array([p.label for p in batch], dtype=np.int64)
            batch_weights = weights[idx] if weights is not None else None
            loss = loss_fn(model, batch, labels,
                           sample_weights=batch_weights)
            optimizer.zero_grad()
            loss.backward()
            seed_clip_grad_norm(model.parameters(), cfg.grad_clip)
            optimizer.step()
            steps += 1
        if valid:
            probs = predict_proba(model, valid, batch_size=cfg.batch_size)
            truth = np.array([p.label for p in valid], dtype=np.int64)
            threshold = (seed_tune_threshold(probs, truth)
                         if cfg.calibrate_threshold else None)
            if threshold is None:
                preds = probs.argmax(axis=1)
            else:
                preds = (probs[:, 1] > threshold).astype(np.int64)
            f1 = ConfusionMatrix.from_labels(truth, preds).f1
            if cfg.select_best_on_valid and f1 > best_f1:
                best_f1 = f1
                best_state = model.state_dict()
                best_threshold = threshold
    if best_state is not None:
        model.load_state_dict(best_state)
    if cfg.calibrate_threshold:
        model.decision_threshold = best_threshold \
            if best_threshold is not None else 0.5
    model.eval()
    return steps


def max_param_divergence(model_a, model_b) -> float:
    """Max-abs difference over all parameters of two same-shape models."""
    return max(
        float(np.abs(np.asarray(pa.data, dtype=np.float64)
                     - np.asarray(pb.data, dtype=np.float64)).max())
        for pa, pb in zip(model_a.parameters(), model_b.parameters()))


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def run_pretrain_comparison(corpus_sentences=240, epochs=2,
                            parity_epochs=1, d_model=32, num_layers=2):
    """Time seed loop vs fastpath MLM pre-training; float64 parity check."""
    corpus = build_corpus(corpus_sentences, seed=0)
    vocab = build_vocab(corpus, max_words=600)
    lm_cfg = LMConfig(vocab_size=len(vocab), d_model=d_model,
                      num_layers=num_layers, num_heads=2, d_ff=4 * d_model,
                      max_len=64)
    tok = Tokenizer(vocab)
    cfg = PretrainConfig(epochs=epochs, batch_size=32, max_len=48,
                         lr=1e-3, seed=0, focus_tokens=("yes", "no"))

    started = time.perf_counter()
    with seed_style_ops():
        seed_steps = seed_style_pretrain(MiniLM(lm_cfg), tok, corpus, cfg)
    seed_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    fast_steps = pretrain(MiniLM(lm_cfg), tok, corpus, cfg).steps
    fast_elapsed = time.perf_counter() - started

    # Parity: both arms in float64, identical batch order and rng streams.
    prev_dtype = get_default_dtype()
    set_default_dtype(np.float64)
    try:
        parity_cfg = replace(cfg, epochs=parity_epochs,
                             order_preserving=True)
        ref_model = MiniLM(lm_cfg)
        fast_model = MiniLM(lm_cfg)
        with seed_style_ops():
            seed_style_pretrain(ref_model, tok, corpus, parity_cfg)
        pretrain(fast_model, tok, corpus, parity_cfg)
        divergence = max_param_divergence(ref_model, fast_model)
    finally:
        set_default_dtype(prev_dtype)

    seed_sps = seed_steps / seed_elapsed if seed_elapsed else 0.0
    fast_sps = fast_steps / fast_elapsed if fast_elapsed else 0.0
    return {
        "sequences": len(corpus),
        "seed_steps": seed_steps,
        "fast_steps": fast_steps,
        "seed_sps": seed_sps,
        "fast_sps": fast_sps,
        "speedup": fast_sps / seed_sps if seed_sps else 0.0,
        "divergence": divergence,
    }


def run_fit_comparison(model_name=MODEL_NAME, dataset_name="REL-HETER",
                       train_cap=48, valid_cap=32, epochs=3,
                       parity_epochs=2):
    """Time seed loop vs fastpath ``Trainer.fit``; float64 parity check."""
    dataset = load_dataset(dataset_name)
    train = dataset.train[:train_cap]
    valid = dataset.valid[:valid_cap] if dataset.valid else \
        dataset.test[:valid_cap]
    cfg = TrainerConfig(epochs=epochs, batch_size=16, lr=5e-4, seed=0)

    def build_model():
        lm, tok = load_pretrained(model_name)
        template = make_template("t2", tok, max_len=128)
        return PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))

    model = build_model()
    started = time.perf_counter()
    with seed_style_ops():
        seed_steps = seed_style_fit(model, train, valid, cfg,
                                    loss_fn=seed_style_prompt_loss)
    seed_elapsed = time.perf_counter() - started

    model = build_model()
    started = time.perf_counter()
    fast_steps = Trainer(model, cfg).fit(train, valid).steps
    fast_elapsed = time.perf_counter() - started

    prev_dtype = get_default_dtype()
    set_default_dtype(np.float64)
    try:
        parity_cfg = replace(cfg, epochs=parity_epochs,
                             preserve_rng_order=True)
        ref_model = build_model()
        fast_model = build_model()
        with seed_style_ops():
            seed_style_fit(ref_model, train, valid, parity_cfg,
                           loss_fn=seed_style_prompt_loss)
        Trainer(fast_model, parity_cfg).fit(train, valid)
        divergence = max_param_divergence(ref_model, fast_model)
    finally:
        set_default_dtype(prev_dtype)

    seed_sps = seed_steps / seed_elapsed if seed_elapsed else 0.0
    fast_sps = fast_steps / fast_elapsed if fast_elapsed else 0.0
    return {
        "pairs": len(train),
        "seed_steps": seed_steps,
        "fast_steps": fast_steps,
        "seed_sps": seed_sps,
        "fast_sps": fast_sps,
        "speedup": fast_sps / seed_sps if seed_sps else 0.0,
        "divergence": divergence,
    }


def run_training_bench():
    scale = bench_scale()
    if scale.name == "smoke":
        mlm = run_pretrain_comparison(corpus_sentences=240, epochs=2)
        fit = run_fit_comparison(train_cap=48, valid_cap=32, epochs=3)
    else:
        mlm = run_pretrain_comparison(corpus_sentences=1200, epochs=3,
                                      d_model=64)
        fit = run_fit_comparison(train_cap=160, valid_cap=80, epochs=6)

    rows = []
    for name, result, size_key in (("MLM pretrain", mlm, "sequences"),
                                   ("Trainer.fit", fit, "pairs")):
        rows.append([
            name,
            result[size_key],
            result["seed_steps"],
            result["fast_steps"],
            f"{result['seed_sps']:.2f}",
            f"{result['fast_sps']:.2f}",
            f"{result['speedup']:.2f}x",
            f"{result['divergence']:.2e}",
        ])
    headers = ["Loop", "Size", "Seed steps", "Fast steps", "Seed st/s",
               "Fast st/s", "Speedup", "Parity max|d|"]
    table = render_table(
        headers, rows,
        title=f"Training fastpath vs seed-style loops (scale={scale.name}; "
              "parity in float64, rng-order-preserving mode)")
    return table, {"mlm_pretrain": mlm, "trainer_fit": fit}


def test_training(benchmark):
    table, data = benchmark.pedantic(run_training_bench, rounds=1,
                                     iterations=1)
    emit(table, "training", data=data)
