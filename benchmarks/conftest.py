"""Benchmark configuration: make sure the checkpoint exists up front."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import warm_backbone  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _warm_backbone():
    """Pre-train (or load) the MiniLM once, outside any timed region."""
    warm_backbone()
