"""Active learning vs self-training: two ways to spend a label budget.

The paper's related work cites active learning as the other low-resource
EM family. This example compares, on SEMI-HOMO:

* PromptEM's lightweight self-training (no extra labels -- it mines the
  unlabeled pool with pseudo-labels), against
* an active learner that queries an oracle for the same number of
  *additional real labels* as LST adds pseudo-labels.

Run:  python examples/active_learning.py
"""

from repro import PromptEM, PromptEMConfig, load_dataset
from repro.core import (
    ActiveLearner, ActiveLearningConfig, evaluate_f1, oracle_from_view,
)


def main() -> None:
    dataset = load_dataset("SEMI-HOMO")
    view = dataset.low_resource(seed=0)
    print(f"SEMI-HOMO: {len(view.labeled)} seed labels, "
          f"{len(view.unlabeled)} unlabeled")

    config = PromptEMConfig(teacher_epochs=8, student_epochs=10,
                            mc_passes=6, unlabeled_cap=60)

    print("\n[self-training] PromptEM with LST (zero extra human labels)...")
    st_matcher = PromptEM(config).fit(view)
    st_prf = st_matcher.evaluate(view.test)
    pseudo_added = st_matcher.report.pseudo_labels_added[0]
    print(f"  +{pseudo_added} pseudo-labels -> test F1 {st_prf.f1:.1f}")

    print("\n[active learning] querying the oracle for the same budget...")
    facade = PromptEM(config)
    facade._ensure_backbone()
    facade._fit_summarizer(view.labeled)
    al_config = ActiveLearningConfig(
        rounds=2, queries_per_round=max(pseudo_added // 2, 1),
        strategy="uncertainty", mc_passes=6, epochs_per_round=8)
    learner = ActiveLearner(facade._make_model, al_config)
    al_model, al_report = learner.run(
        view.labeled, view.unlabeled[:60], oracle_from_view(view), view.valid)
    al_f1 = 100 * evaluate_f1(al_model, view.test)
    print(f"  labels used per round: {al_report.labels_used}")
    print(f"  -> test F1 {al_f1:.1f}")

    print("\nsummary:")
    print(f"  self-training (free):        F1 {st_prf.f1:.1f}")
    print(f"  active learning (paid):      F1 {al_f1:.1f}")
    print("AL buys real labels and usually wins per-label; LST is free.")


if __name__ == "__main__":
    main()
