"""Bring your own data: hand-built records -> dataset -> PromptEM.

Shows the full adopter path without any generator: construct entity
records in the three formats, label candidate pairs, split, persist to
disk (both bundle JSON and Machamp layout), reload, and train.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import PromptEM, PromptEMConfig
from repro.data import (
    CandidatePair, EntityRecord, GEMDataset, Table, load_dataset_file,
    save_dataset, split_pairs,
)


def build_tiny_catalog():
    """A hand-written product catalog with dirty duplicates."""
    kinds = ["laptop", "phone", "tablet", "monitor", "keyboard", "mouse",
             "camera", "printer", "router", "headset"]
    lines = ["pro", "air", "max", "mini", "plus", "ultra"]
    colors = ["silver", "gold", "black", "red", "gray", "white"]
    products = [
        (f"{kind} {line} {i}", colors[(i + j) % len(colors)],
         f"{99 + 100 * ((i * 7 + j) % 12)} dollars")
        for i, kind in enumerate(kinds)
        for j, line in enumerate(lines[: 3])
    ]
    left_records, right_records, pairs = [], [], []
    for i, (name, color, price) in enumerate(products):
        left = EntityRecord(f"cat{i}", "relational", {
            "product": name, "color": color, "price": price})
        # The marketplace listing: free text, partially overlapping words.
        right = EntityRecord.text_record(
            f"mkt{i}", f"{name} in {color} great deal {price}")
        left_records.append(left)
        right_records.append(right)
        pairs.append(CandidatePair(left, right, 1))
        # A hard negative: this listing against the next product.
        other = right_records[i - 1] if i else right
        if i:
            pairs.append(CandidatePair(left, other, 0))
            pairs.append(CandidatePair(left_records[i - 1], right, 0))

    train, valid, test = split_pairs(pairs, seed=0,
                                     fractions=(0.5, 0.25, 0.25))
    return GEMDataset(
        name="my-catalog", domain="product",
        left_table=Table("catalog", "relational", left_records),
        right_table=Table("marketplace", "text", right_records),
        train=train, valid=valid, test=test, default_rate=0.5)


def main() -> None:
    dataset = build_tiny_catalog()
    stats = dataset.statistics()
    print(f"built {stats.name}: {stats.labeled} labeled pairs "
          f"({stats.left_rows} x {stats.right_rows} records)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my-catalog.json"
        save_dataset(dataset, path)
        reloaded = load_dataset_file(path)
        print(f"round-tripped through {path.name}: "
              f"{reloaded.all_labeled} pairs intact")

    view = dataset.low_resource(rate=0.9, seed=0)
    config = PromptEMConfig(teacher_epochs=12, use_self_training=False,
                            mc_passes=2, batch_size=8)
    matcher = PromptEM(config).fit(view)
    prf = matcher.evaluate(view.test)
    print(f"PromptEM on the custom catalog: P={prf.precision:.0f} "
          f"R={prf.recall:.0f} F1={prf.f1:.0f}")


if __name__ == "__main__":
    main()
