"""Error analysis on SEMI-HETER (paper Appendix C).

Trains PromptEM, then dumps false positives and false negatives. The paper
observes that errors concentrate on pairs whose decisive evidence is a
digit attribute (ISBN, dates): LMs are poor at digit semantics, and the
benchmark generator plants exactly that trap (sibling editions differing
only in digit fields).

Run:  python examples/error_analysis.py
"""

import numpy as np

from repro import PromptEM, PromptEMConfig, load_dataset, serialize


def main() -> None:
    dataset = load_dataset("SEMI-HETER")
    view = dataset.low_resource(seed=0)

    config = PromptEMConfig(teacher_epochs=10, student_epochs=12,
                            mc_passes=6, unlabeled_cap=80)
    matcher = PromptEM(config).fit(view)
    preds = matcher.predict(view.test)
    truth = np.array([p.label for p in view.test])

    false_positives = [p for p, y, t in zip(view.test, preds, truth)
                       if y == 1 and t == 0]
    false_negatives = [p for p, y, t in zip(view.test, preds, truth)
                       if y == 0 and t == 1]
    print(f"test errors: {len(false_positives)} FP, {len(false_negatives)} FN\n")

    def show(pair, kind):
        print(f"--- {kind} ---")
        print(f"  left : {serialize(pair.left)[:140]}")
        print(f"  right: {serialize(pair.right)[:140]}")
        left_digits = sum(c.isdigit() for c in serialize(pair.left))
        print(f"  (left side contains {left_digits} digit characters)\n")

    for pair in false_positives[:2]:
        show(pair, "false positive: sibling edition, digits differ")
    for pair in false_negatives[:2]:
        show(pair, "false negative: same book, surface text corrupted")

    if not false_positives and not false_negatives:
        print("no errors on this run -- lower teacher_epochs to see some")


if __name__ == "__main__":
    main()
