"""Geospatial entity resolution on GEO-HETER.

Points of interest from two gazetteers: the left source keeps latitude and
longitude as separate attributes, the right merges them into one "position"
string -- a heterogeneous-schema case built exactly like the paper's
Appendix E. The example also demonstrates the blocking stage of the classic
EM workflow (Section 2.1) before matching.

Run:  python examples/geospatial_matching.py
"""

from repro import PromptEM, PromptEMConfig, load_dataset
from repro.data import OverlapBlocker, blocking_recall


def main() -> None:
    dataset = load_dataset("GEO-HETER")

    # Stage 1 of the EM workflow: blocking.
    blocker = OverlapBlocker(threshold=0.2)
    result = blocker.block(dataset.left_table, dataset.right_table)
    truth = [(p.left.record_id, p.right.record_id)
             for split in (dataset.train, dataset.valid, dataset.test)
             for p in split if p.label == 1]
    print(f"blocking: {result.total_pairs} possible pairs -> "
          f"{len(result.candidates)} candidates "
          f"(reduction {result.reduction_ratio:.1%}, "
          f"recall {blocking_recall(result, truth):.1%})")

    # Stage 2: matching with PromptEM on the low-resource view.
    view = dataset.low_resource(seed=0)
    config = PromptEMConfig(teacher_epochs=10, student_epochs=12,
                            mc_passes=6, unlabeled_cap=80)
    matcher = PromptEM(config).fit(view)
    prf = matcher.evaluate(view.test)
    print(f"\nGEO-HETER test: P={prf.precision:.1f} R={prf.recall:.1f} "
          f"F1={prf.f1:.1f}")


if __name__ == "__main__":
    main()
