"""The paper's Figure 1 scenario: match textual abstracts to paper metadata.

REL-TEXT pairs a free-text abstract (left) with a relational metadata row
(right). No schema matching can bridge the two formats -- this is exactly
the Generalized EM setting PromptEM was designed for. The example also
shows the serialization (Section 2.2) each side receives.

Run:  python examples/paper_matching.py
"""

from repro import PromptEM, PromptEMConfig, load_dataset, serialize


def main() -> None:
    dataset = load_dataset("REL-TEXT")
    view = dataset.low_resource(seed=0)

    sample = next(p for p in view.test if p.label == 1)
    print("A matched pair, as the model sees it after serialization:")
    print(f"  abstract (text):   {serialize(sample.left)[:100]}...")
    print(f"  metadata (table):  {serialize(sample.right)[:100]}...")
    print()

    config = PromptEMConfig(
        template="t1",                # "<e> <e'> They are [MASK]"
        label_words="designed",       # relevant/irrelevant matter here:
                                      # abstract vs metadata is a *relevance*
                                      # relationship, not string equality
        teacher_epochs=10,
        student_epochs=12,
        mc_passes=6,
        unlabeled_cap=80,
        summarize_long_text=True,     # Appendix F TF-IDF summarization
        summary_tokens=40,
    )
    matcher = PromptEM(config).fit(view)
    prf = matcher.evaluate(view.test)
    print(f"REL-TEXT test: P={prf.precision:.1f} R={prf.recall:.1f} "
          f"F1={prf.f1:.1f}")

    probs = matcher.predict_proba(view.test[:6])
    print("\nper-pair match probabilities (first six test pairs):")
    for pair, p in zip(view.test[:6], probs[:, 1]):
        print(f"  label={pair.label}  P(match)={p:.3f}")


if __name__ == "__main__":
    main()
