"""Product matching: structured spec sheets vs noisy marketing text.

SEMI-TEXT-c pairs a 10-attribute spec record with a free-text description
that mentions only some attributes, corrupted. This example compares
PromptEM against the fine-tuning ablation (w/o PT) on one of the hardest
cross-format tasks -- at this reproduction's tiny-model scale either
variant can win here (see EXPERIMENTS.md), which is itself informative:
the prompt-tuning advantage concentrates where the pre-trained cloze
pattern transfers cleanly.

Run:  python examples/product_matching.py
"""

from repro import PromptEM, PromptEMConfig, load_dataset


def main() -> None:
    dataset = load_dataset("SEMI-TEXT-c")
    view = dataset.low_resource(seed=0)
    print(f"SEMI-TEXT-c: {len(view.labeled)} labeled / "
          f"{len(view.unlabeled)} unlabeled training pairs")

    base = PromptEMConfig(
        template="t2",
        teacher_epochs=10,
        student_epochs=12,
        mc_passes=6,
        unlabeled_cap=80,
        summary_tokens=40,
    )

    print("\ntraining PromptEM (prompt-tuning)...")
    prompt_matcher = PromptEM(base).fit(view)
    prompt_prf = prompt_matcher.evaluate(view.test)

    print("training PromptEM w/o PT (vanilla fine-tuning)...")
    finetune_matcher = PromptEM(base.without_prompt_tuning()).fit(view)
    finetune_prf = finetune_matcher.evaluate(view.test)

    print(f"\n{'variant':24s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    for name, prf in (("PromptEM", prompt_prf),
                      ("PromptEM w/o PT", finetune_prf)):
        print(f"{name:24s} {prf.precision:6.1f} {prf.recall:6.1f} {prf.f1:6.1f}")


if __name__ == "__main__":
    main()
