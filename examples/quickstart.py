"""Quickstart: match restaurant records across heterogeneous schemas.

Trains PromptEM on the REL-HETER benchmark's default low-resource split
(10% of training labels) and reports test precision / recall / F1.

Run:  python examples/quickstart.py
"""

from repro import PromptEM, PromptEMConfig, load_dataset


def main() -> None:
    dataset = load_dataset("REL-HETER")
    stats = dataset.statistics()
    print(f"dataset: {stats.name} ({stats.domain}) -- "
          f"left {stats.left_rows} rows, right {stats.right_rows} rows, "
          f"{stats.labeled} labeled pairs")

    # The low-resource view keeps `rate` of the training labels and exposes
    # the rest as the unlabeled pool that self-training consumes.
    view = dataset.low_resource(seed=0)
    print(f"labeled: {len(view.labeled)}  unlabeled: {len(view.unlabeled)}  "
          f"valid: {len(view.valid)}  test: {len(view.test)}")

    config = PromptEMConfig(
        template="t2",            # "<e> is [MASK] to <e'>"
        continuous=True,          # P-tuning continuous prompts
        teacher_epochs=10,
        student_epochs=12,
        mc_passes=6,
        unlabeled_cap=80,         # keep the demo fast
    )
    matcher = PromptEM(config).fit(view)

    prf = matcher.evaluate(view.test)
    print(f"\ntest precision={prf.precision:.1f} recall={prf.recall:.1f} "
          f"F1={prf.f1:.1f}")

    if matcher.report is not None:
        report = matcher.report
        print(f"self-training: +{report.pseudo_labels_added[0]} pseudo-labels, "
              f"{report.samples_pruned[0]} samples pruned, "
              f"final train size {report.final_train_size}")


if __name__ == "__main__":
    main()
