"""Anatomy of lightweight self-training (Algorithm 1).

Runs the teacher -> pseudo-label -> student loop step by step on SEMI-HOMO,
printing what the uncertainty-aware selector picks and how good the
pseudo-labels actually are (the Table 5 quality measurement), then what
dynamic data pruning removes.

Run:  python examples/self_training_demo.py
"""

import numpy as np

from repro import load_dataset
from repro.core import (
    PromptEMConfig, Trainer, TrainerConfig, evaluate_f1, mc_dropout,
    prune_dataset, select_by_uncertainty, top_n_count,
)
from repro.core.matcher import PromptEM
from repro.eval.metrics import pseudo_label_quality


def main() -> None:
    dataset = load_dataset("SEMI-HOMO")
    view = dataset.low_resource(seed=0)
    print(f"SEMI-HOMO low-resource: {len(view.labeled)} labeled, "
          f"{len(view.unlabeled)} unlabeled")

    # Build the prompt model through the facade so we reuse its plumbing.
    config = PromptEMConfig(teacher_epochs=10, mc_passes=6, unlabeled_cap=60)
    facade = PromptEM(config)
    facade._ensure_backbone()
    facade._fit_summarizer(view.labeled)

    print("\n[1] training the teacher on the labeled seed set...")
    teacher = facade._make_model()
    Trainer(teacher, TrainerConfig(epochs=config.teacher_epochs,
                                   lr=config.lr,
                                   batch_size=config.batch_size)).fit(
        view.labeled, valid=view.valid)
    print(f"    teacher valid F1: {evaluate_f1(teacher, view.valid):.3f}")

    print("\n[2] MC-Dropout over the unlabeled pool "
          f"({config.mc_passes} stochastic passes)...")
    pool = view.unlabeled[:60]
    truth = np.array(view.unlabeled_true_labels[:60])
    result = mc_dropout(teacher, pool, passes=config.mc_passes)
    count = top_n_count(len(pool), config.pseudo_label_ratio)
    chosen = select_by_uncertainty(result, count)
    print(f"    pool uncertainty: min={result.uncertainty.min():.4f} "
          f"median={np.median(result.uncertainty):.4f} "
          f"max={result.uncertainty.max():.4f}")
    print(f"    selected the {count} least-uncertain samples")

    tpr, tnr = pseudo_label_quality(truth[chosen], result.labels[chosen])
    print(f"    pseudo-label quality: TPR={tpr:.3f} TNR={tnr:.3f}")

    print("\n[3] dynamic data pruning with MC-EL2N...")
    augmented = list(view.labeled) + [
        pool[i].with_label(int(result.labels[i])) for i in chosen]
    kept = prune_dataset(teacher, augmented, ratio=config.prune_ratio,
                         passes=config.mc_passes)
    print(f"    train set {len(augmented)} -> {len(kept)} "
          f"after pruning e_r={config.prune_ratio:.0%}")


if __name__ == "__main__":
    main()
