#!/bin/sh
# Waits for the running benchmark pytest to exit, then appends the
# separately-run calibration bench output to bench_output.txt.
while ps aux | grep "[p]ytest benchmarks/" > /dev/null 2>&1; do
  sleep 30
done
sleep 5
if [ -f /tmp/calibration_bench.txt ]; then
  {
    echo ""
    echo "===== bench_calibration.py (run separately; added after the main suite) ====="
    cat /tmp/calibration_bench.txt
  } >> /root/repo/bench_output.txt
fi
