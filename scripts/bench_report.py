#!/usr/bin/env python
"""Collate every ``benchmarks/results/BENCH_*.json`` into one markdown
trajectory table.

Each benchmark's :func:`emit` (see ``benchmarks/_harness.py``) persists a
machine-readable ``BENCH_<name>.json`` next to the human-readable table.
This script is the cross-PR view: one row per benchmark with its headline
speedup (the max over any ``*speedup*`` key, the same definition the
regression guard uses), the scale it was recorded at, and when.

Usage::

    python scripts/bench_report.py                 # markdown to stdout
    python scripts/bench_report.py --out BENCH.md  # write a file
"""

import argparse
import datetime
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from _harness import _headline_speedup  # noqa: E402


def collect(results_dir: Path) -> list:
    rows = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, ValueError) as error:
            rows.append({"name": path.stem, "error": str(error)})
            continue
        speedup = _headline_speedup(payload.get("data"))
        recorded = datetime.date.fromtimestamp(path.stat().st_mtime)
        data = payload.get("data")
        headline = data.get("headline") if isinstance(data, dict) else None
        rows.append({
            "name": payload.get("bench", path.stem.replace("BENCH_", "")),
            "speedup": speedup,
            "headline": headline if isinstance(headline, str) else None,
            "scale": payload.get("scale", "?"),
            "date": recorded.isoformat(),
            "file": path.name,
        })
    return rows


def render(rows: list) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "One row per committed `BENCH_*.json`. Benchmarks whose payload",
        "carries a `data.headline` *string* (e.g. a trade-off summary)",
        "show that; otherwise the headline is the max over any `*speedup*`",
        "key (the same number the `emit()` regression guard protects). A",
        "dash means the benchmark records parity/identity contracts",
        "rather than a speedup.",
        "",
        "| Benchmark | Headline | Scale | Recorded |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if "error" in row:
            lines.append(f"| {row['name']} | unreadable: {row['error']} "
                         f"| - | - |")
            continue
        if row.get("headline"):
            headline = row["headline"].replace("|", "\\|")
        else:
            headline = (f"{row['speedup']:.2f}x"
                        if row["speedup"] > 0 else "-")
        lines.append(f"| {row['name']} | {headline} | {row['scale']} "
                     f"| {row['date']} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default=REPO / "benchmarks" / "results",
                        type=Path, help="directory of BENCH_*.json files")
    parser.add_argument("--out", default=None,
                        help="write markdown here instead of stdout")
    args = parser.parse_args(argv)
    rows = collect(args.results)
    if not rows:
        print(f"no BENCH_*.json under {args.results}", file=sys.stderr)
        return 1
    report = render(rows)
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out} ({len(rows)} benchmarks)", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
