#!/bin/sh
# Final deliverable refresh: re-run the test suite teeing to
# test_output.txt, and append the separately-run calibration bench to
# bench_output.txt (it was added after the main suite started).
set -e
cd /root/repo
pytest tests/ 2>&1 | tee /root/repo/test_output.txt
if [ -f /tmp/calibration_bench.txt ]; then
  {
    echo ""
    echo "===== bench_calibration.py (run separately) ====="
    cat /tmp/calibration_bench.txt
  } >> /root/repo/bench_output.txt
fi
echo "finalized"
