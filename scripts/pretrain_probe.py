"""Experiment: architecture / epochs until the comparison circuit emerges.

Trains a candidate MiniLM and reports held-out cloze accuracy on phrase
statements (easy: topic-level) and record statements (hard: value-swap),
plus downstream zero-shot AUC on REL-HETER, every two epochs.
"""

import sys
import time

import numpy as np

from repro.autograd import no_grad
from repro.lm import LMConfig, MiniLM, PretrainConfig
from repro.lm.pretrain import pretrain
from repro.lm.zoo import _build_vocabulary, _specs
from repro.text import Tokenizer, build_corpus, lexicon


def cloze_accuracy(lm, tok, kind, seed=999, n=200):
    from repro.text.corpus import relation_statement

    vocab = tok.vocab
    pos_ids = [vocab.id_of(w) for w in lexicon.POSITIVE_LABEL_WORDS]
    neg_ids = [vocab.id_of(w) for w in lexicon.NEGATIVE_LABEL_WORDS]
    rng = np.random.default_rng(seed)
    correct = total = 0
    attempts = 0
    while total < n and attempts < 20 * n:
        attempts += 1
        positive = bool(attempts % 2)
        text = relation_statement(rng, "restaurant", positive)
        is_record = "[COL]" in text
        if (kind == "record") != is_record:
            continue
        words = text.split()
        lw = [w for w in words
              if w in lexicon.POSITIVE_LABEL_WORDS + lexicon.NEGATIVE_LABEL_WORDS]
        if not lw:
            continue
        masked = " ".join("[MASK]" if w == lw[0] else w for w in words)
        enc = tok.encode(masked, max_len=96)
        if "[MASK]" not in enc.tokens:
            continue
        pos = enc.tokens.index("[MASK]")
        with no_grad():
            logits = lm.mlm_logits(lm.encode(np.array([enc.ids]))).numpy()[0, pos]
        p = np.exp(logits - logits.max())
        p /= p.sum()
        pred_pos = p[pos_ids].sum() > p[neg_ids].sum()
        correct += pred_pos == positive
        total += 1
    return correct / max(total, 1)


def zero_shot_auc(lm, tok):
    from repro.core import PromptModel, Verbalizer, make_template
    from repro.core.trainer import predict_proba
    from repro.data import load_dataset

    ds = load_dataset("REL-HETER")
    labels = np.array([p.label for p in ds.test])
    template = make_template("t2", tok, continuous=False, max_len=96)
    model = PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))
    probs = predict_proba(model, ds.test)
    return (probs[labels == 1, 1][:, None] > probs[labels == 0, 1][None, :]).mean()


def main():
    num_layers = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    spec = _specs()["minilm-base"]
    vocab = _build_vocabulary(spec)
    tok = Tokenizer(vocab)
    config = LMConfig(**{**spec.lm.to_dict(), "vocab_size": len(vocab),
                         "num_layers": num_layers})
    model = MiniLM(config)
    corpus = build_corpus(spec.corpus_sentences, seed=spec.corpus_seed)
    label_words = tuple(lexicon.POSITIVE_LABEL_WORDS + lexicon.NEGATIVE_LABEL_WORDS)

    for round_idx in range(rounds):
        t0 = time.time()
        result = pretrain(model, tok, corpus, PretrainConfig(
            epochs=2, batch_size=32, lr=1e-3, max_len=96,
            seed=round_idx, focus_tokens=label_words))
        easy = cloze_accuracy(model, tok, "phrase")
        hard = cloze_accuracy(model, tok, "record")
        auc = zero_shot_auc(model, tok)
        print(f"L={num_layers} epochs={2 * (round_idx + 1):3d} "
              f"loss={result.final_loss:.3f} phrase_acc={easy:.3f} "
              f"record_acc={hard:.3f} zshot_auc={auc:.3f} "
              f"({time.time() - t0:.0f}s)", flush=True)


if __name__ == "__main__":
    main()
