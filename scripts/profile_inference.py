"""Profile one self-training iteration and print the cProfile top-20.

Usage::

    PYTHONPATH=src python scripts/profile_inference.py [--no-engine]

Runs a single LST iteration (teacher -> pseudo-label selection -> student)
on a low-resource REL-HETER view with the tiny backbone, under cProfile,
and prints the 20 most expensive functions by cumulative time. Pass
``--no-engine`` to profile the legacy scoring pattern instead: sequential
MC-Dropout passes through per-call transient engines, with no shared
encoding cache. Diffing the two outputs shows exactly what the shared
engine removes (repeat tokenization, per-pass forwards).
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import PromptModel, Verbalizer, make_template
from repro.core.self_training import LightweightSelfTrainer, SelfTrainingConfig
from repro.data import load_dataset
from repro.lm import load_pretrained


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-engine", action="store_true",
                        help="profile the legacy pattern: sequential MC "
                             "passes, no shared encoding cache")
    parser.add_argument("--model", default="minilm-tiny",
                        help="zoo checkpoint to profile against")
    parser.add_argument("--dataset", default="REL-HETER")
    parser.add_argument("--passes", type=int, default=6)
    parser.add_argument("--top", type=int, default=20)
    args = parser.parse_args()

    lm, tok = load_pretrained(args.model)
    view = load_dataset(args.dataset).low_resource()

    def factory():
        template = make_template("t1", tok, max_len=96)
        return PromptModel(lm, tok, template, Verbalizer.designed(tok.vocab))

    config = SelfTrainingConfig(
        iterations=1, teacher_epochs=2, student_epochs=2,
        mc_passes=args.passes, use_engine=not args.no_engine)
    trainer = LightweightSelfTrainer(factory, config)

    profiler = cProfile.Profile()
    profiler.enable()
    _, report = trainer.run(list(view.labeled), list(view.unlabeled),
                            list(view.valid))
    profiler.disable()

    label = "legacy loop" if args.no_engine else "inference engine"
    print(f"\n=== one LST iteration ({label}), top {args.top} by cumtime ===")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)

    if not args.no_engine:
        print(f"engine throughput : {report.engine_pairs_per_sec:.1f} pairs/s")
        print(f"engine cache hits : {report.engine_cache_hit_rate:.1%}")
        print(f"engine batches    : {report.engine_batches}")
        print(f"padding fraction  : {report.engine_padding_fraction:.1%}")


if __name__ == "__main__":
    main()
