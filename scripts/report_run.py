#!/usr/bin/env python
"""Render a human-readable summary of a telemetry JSONL run log.

Usage::

    python -m repro.cli run --dataset REL-HETER --telemetry run.jsonl --trace
    python scripts/report_run.py run.jsonl

Thin wrapper around :mod:`repro.obs.report` (also reachable as
``repro obs-report``), which renders these sections, each only when the
run recorded the events that feed it:

* **run header**: method, dataset, final P/R/F1 and wall time;
* **loss curve**: per-epoch training loss and validation F1 from
  ``trainer.epoch`` events, one row per (fit, epoch);
* **throughput**: tokens/sec and examples/sec per epoch;
* **self-training rounds**: teacher/student F1, pseudo-labels,
  pruning from ``selftrain.round`` events;
* **inference engine**: pairs/sec, cache hit rate, padding from
  ``engine.stats`` events;
* **worker pool**: per-worker task counts and busy time merged from
  ``pool.map`` events;
* **request traces**: stage means and sample trace trees from
  ``serve.trace`` events;
* **per-tenant SLOs / drift events**: from ``serve.slo`` and
  ``serve.drift`` events;
* **per-phase time breakdown**: the span tree with *self* time (wall
  minus direct children); tolerates logs that interleave several span
  streams (e.g. serving and training events in one file).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import read_events  # noqa: E402
from repro.obs.report import (  # noqa: E402,F401  (re-exported)
    group_events, render_drift, render_engine, render_header,
    render_loss_curve, render_phases, render_pool, render_report,
    render_self_training, render_slo, render_throughput, render_traces,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="summarize a --telemetry JSONL run log")
    parser.add_argument("path", help="telemetry JSONL written by the CLI")
    parser.add_argument("--kind", default=None,
                        help="dump raw events of one kind instead")
    args = parser.parse_args(argv)

    events = read_events(args.path, validate=False)
    if not events:
        print(f"{args.path}: no events")
        return 1
    if args.kind:
        import json

        for event in events:
            if event["kind"] == args.kind:
                print(json.dumps(event, sort_keys=True))
        return 0
    print(render_report(events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
