#!/usr/bin/env python
"""Render a human-readable summary of a telemetry JSONL run log.

Usage::

    python -m repro.cli run --dataset REL-HETER --telemetry run.jsonl --trace
    python scripts/report_run.py run.jsonl

Sections (each only when the run recorded the events that feed it):

* **run header**: method, dataset, final P/R/F1 and wall time;
* **loss curve**: per-epoch training loss and validation F1 from
  ``trainer.epoch`` events, one row per (fit, epoch);
* **throughput**: tokens/sec and examples/sec per epoch;
* **self-training rounds**: teacher/student F1, pseudo-labels,
  pruning from ``selftrain.round`` events;
* **inference engine**: pairs/sec, cache hit rate, padding from
  ``engine.stats`` events;
* **worker pool**: per-worker task counts and busy time merged from
  ``pool.map`` events;
* **per-phase time breakdown**: the span tree with *self* time (wall
  minus direct children -- parents always include their children).
"""

import argparse
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.eval import render_series, render_table  # noqa: E402
from repro.obs import read_events  # noqa: E402


def _by_kind(events):
    grouped = defaultdict(list)
    for event in events:
        grouped[event["kind"]].append(event)
    return grouped


def render_header(grouped) -> str:
    lines = []
    for start in grouped.get("run.start", []):
        lines.append(f"run: {start.get('method', '?')} on "
                     f"{start.get('dataset', '?')} "
                     f"(seed {start.get('seed', '?')}, "
                     f"{start.get('labeled', '?')} labeled / "
                     f"{start.get('unlabeled', '?')} unlabeled / "
                     f"{start.get('test', '?')} test)")
    for summary in grouped.get("run.summary", []):
        parts = [f"F1={summary['f1']:.1f}"]
        if "precision" in summary:
            parts.insert(0, f"P={summary['precision']:.1f}")
        if "recall" in summary:
            parts.insert(1, f"R={summary['recall']:.1f}")
        if "elapsed_seconds" in summary:
            parts.append(f"in {summary['elapsed_seconds']:.1f}s")
        lines.append("result: " + " ".join(parts))
    return "\n".join(lines)


def render_loss_curve(grouped) -> str:
    epochs = grouped.get("trainer.epoch", [])
    if not epochs:
        return ""
    labels = [f"{i}:{e['epoch']}" for i, e in enumerate(epochs)] \
        if len({e["epoch"] for e in epochs}) != len(epochs) \
        else [e["epoch"] for e in epochs]
    series = {"loss": [e["loss"] for e in epochs]}
    if any(e.get("valid_f1") is not None for e in epochs):
        series["valid F1"] = [e.get("valid_f1") for e in epochs]
    return render_series("Loss curve (all fits, in order)", "epoch",
                         labels, series, decimals=4)


def render_throughput(grouped) -> str:
    epochs = [e for e in grouped.get("trainer.epoch", [])
              if e.get("tokens_per_sec")]
    if not epochs:
        return ""
    rows = [[i, e["epoch"], e.get("tokens", 0),
             f"{e['tokens_per_sec']:.0f}",
             f"{e.get('examples_per_sec', 0.0):.0f}"]
            for i, e in enumerate(epochs)]
    return render_table(["#", "epoch", "tokens", "tok/s", "ex/s"], rows,
                        title="Throughput")


def render_self_training(grouped) -> str:
    rounds = grouped.get("selftrain.round", [])
    if not rounds:
        return ""
    rows = [[r["iteration"], f"{r['teacher_f1']:.3f}",
             f"{r.get('student_f1', 0.0):.3f}", r["pseudo_added"],
             r.get("pseudo_positive", "?"), r.get("pruned", 0),
             r.get("train_size", "?")]
            for r in rounds]
    return render_table(
        ["iter", "teacher F1", "student F1", "pseudo", "+", "pruned",
         "train"], rows, title="Self-training rounds")


def render_engine(grouped) -> str:
    stats = grouped.get("engine.stats", [])
    if not stats:
        return ""
    rows = [[s.get("scope", "?"), s.get("pairs", 0), s.get("batches", 0),
             f"{s.get('pairs_per_sec', 0.0):.0f}",
             f"{s.get('cache_hit_rate', 0.0):.1%}",
             f"{s.get('padding_fraction', 0.0):.1%}"]
            for s in stats]
    return render_table(
        ["scope", "pairs", "batches", "pairs/s", "cache hit", "padding"],
        rows, title="Inference engine")


def render_pool(grouped) -> str:
    maps = grouped.get("pool.map", [])
    if not maps:
        return ""
    tasks = defaultdict(int)
    busy = defaultdict(float)
    for record in maps:
        for row in record.get("per_worker", []):
            tasks[row["worker"]] += row["tasks"]
            busy[row["worker"]] += row["seconds"]
    rows = [[w, tasks[w], f"{busy[w]:.2f}s"] for w in sorted(tasks)]
    rows.append(["total", sum(tasks.values()),
                 f"{sum(busy.values()):.2f}s"])
    return render_table(["worker", "tasks", "busy"], rows,
                        title=f"Worker pool ({len(maps)} map calls)")


def render_phases(grouped) -> str:
    spans = sorted(grouped.get("span", []), key=lambda s: s["index"])
    if not spans:
        return ""
    child_wall = defaultdict(float)
    for span in spans:
        if span.get("parent") is not None:
            child_wall[span["parent"]] += span["wall"]
    rows = [[("  " * s["depth"]) + s["name"], f"{s['wall']:.3f}s",
             f"{max(s['wall'] - child_wall[s['index']], 0.0):.3f}s",
             f"{s['cpu']:.3f}s"]
            for s in spans]
    return render_table(["Phase", "Wall", "Self", "CPU"], rows,
                        title="Per-phase time breakdown")


def render_report(events) -> str:
    grouped = _by_kind(events)
    sections = [render_header(grouped), render_loss_curve(grouped),
                render_throughput(grouped), render_self_training(grouped),
                render_engine(grouped), render_pool(grouped),
                render_phases(grouped)]
    return "\n\n".join(s for s in sections if s)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="summarize a --telemetry JSONL run log")
    parser.add_argument("path", help="telemetry JSONL written by the CLI")
    parser.add_argument("--kind", default=None,
                        help="dump raw events of one kind instead")
    args = parser.parse_args(argv)

    events = read_events(args.path, validate=False)
    if not events:
        print(f"{args.path}: no events")
        return 1
    if args.kind:
        import json

        for event in events:
            if event["kind"] == args.kind:
                print(json.dumps(event, sort_keys=True))
        return 0
    print(render_report(events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
