"""PromptEM reproduction: prompt-tuning for low-resource generalized
entity matching (Wang et al., VLDB 2022), rebuilt from scratch on a numpy
autodiff substrate.

Quickstart::

    from repro import PromptEM, load_dataset

    dataset = load_dataset("REL-HETER")
    matcher = PromptEM().fit(dataset.low_resource())
    print(matcher.evaluate(dataset.test))
"""

from .core import PromptEM, PromptEMConfig
from .data import (
    DATASET_NAMES, CandidatePair, EntityRecord, GEMDataset, Table,
    load_all, load_dataset, serialize,
)
from .eval import PRF, ConfusionMatrix
from .infer import EngineConfig, InferenceEngine
from .lm import load_pretrained

__version__ = "1.0.0"

__all__ = [
    "PromptEM", "PromptEMConfig",
    "load_dataset", "load_all", "DATASET_NAMES",
    "GEMDataset", "CandidatePair", "EntityRecord", "Table", "serialize",
    "PRF", "ConfusionMatrix",
    "InferenceEngine", "EngineConfig",
    "load_pretrained",
    "__version__",
]
