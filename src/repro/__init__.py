"""PromptEM reproduction: prompt-tuning for low-resource generalized
entity matching (Wang et al., VLDB 2022), rebuilt from scratch on a numpy
autodiff substrate.

Quickstart::

    from repro import PromptEM, load_dataset

    dataset = load_dataset("REL-HETER")
    matcher = PromptEM().fit(dataset.low_resource())
    print(matcher.evaluate(dataset.test))

Public names are resolved lazily (PEP 562): importing :mod:`repro` -- or a
leaf module such as :mod:`repro.serve.bundle` -- pulls in only the modules
that name actually needs. That is what lets a serving process load a
:class:`~repro.serve.ModelBundle` without ever importing the trainer,
self-training, or pre-training code paths.
"""

__version__ = "1.0.0"

#: public name -> defining submodule, resolved on first attribute access
_EXPORTS = {
    "PromptEM": "repro.core",
    "PromptEMConfig": "repro.core",
    "load_dataset": "repro.data",
    "load_all": "repro.data",
    "DATASET_NAMES": "repro.data",
    "GEMDataset": "repro.data",
    "CandidatePair": "repro.data",
    "EntityRecord": "repro.data",
    "Table": "repro.data",
    "serialize": "repro.data",
    "PRF": "repro.eval",
    "ConfusionMatrix": "repro.eval",
    "InferenceEngine": "repro.infer",
    "EngineConfig": "repro.infer",
    "load_pretrained": "repro.lm",
}

#: subpackages reachable as ``repro.<name>`` without an explicit import
_SUBMODULES = frozenset({
    "ann", "autograd", "baselines", "cli", "core", "data", "eval", "infer",
    "lm", "obs", "parallel", "serve", "text",
})

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    import importlib

    target = _EXPORTS.get(name)
    if target is not None:
        return getattr(importlib.import_module(target), name)
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
