"""Sub-linear dense candidate generation: embeddings + ANN indexes.

The token blockers (:class:`repro.data.OverlapBlocker`,
:class:`repro.serve.ServingIndex`) walk postings -- linear in catalog
size per query.  This package adds the dense path:

* :class:`RecordEncoder` -- frozen siamese bi-encoder (the SentenceBERT
  recipe off the pre-trained checkpoint, no fit) turning records into
  L2-normalized float32 vectors, batched and content-cached;
* :class:`LshIndex` / :class:`IvfIndex` behind one :class:`AnnIndex`
  interface -- incremental ``add``/``remove`` with replace-on-readd and
  deterministic ``(-score, record_id)`` ordering, stored as int8 codes
  and scored with the fused kernels in :mod:`repro.ann.kernels`;
* :class:`DenseBlocker` -- the offline blocking stage on top, emitting
  the same :class:`~repro.data.blocking.BlockingResult` contract as the
  sparse blocker, with built-in recall bookkeeping against exact top-k.

The online counterpart lives in :class:`repro.serve.DenseCandidateIndex`.
See ``docs/BLOCKING.md`` for the sparse-vs-dense trade-off, quantization
error bounds, and recall tuning.
"""

from .blocker import DenseBlocker, exact_dense_topk
from .encoder import RecordEncoder
from .index import AnnIndex, IvfIndex, LshIndex, kmeans, make_index
from .kernels import (
    blocked_topk_dot, dequantize_int8, exact_topk_dot, fused_scaled_dot,
    gather_scaled_dot, quantize_int8, topk_candidates,
)

__all__ = [
    "RecordEncoder",
    "AnnIndex", "LshIndex", "IvfIndex", "make_index", "kmeans",
    "DenseBlocker", "exact_dense_topk",
    "quantize_int8", "dequantize_int8", "fused_scaled_dot",
    "gather_scaled_dot", "blocked_topk_dot", "exact_topk_dot",
    "topk_candidates",
]
