"""DenseBlocker: sub-linear candidate generation via the ANN index.

Where :class:`~repro.data.blocking.OverlapBlocker` walks token postings
(linear in catalog size per query), the dense blocker embeds the right
table once with the frozen bi-encoder, indexes the vectors (LSH or IVF),
and answers each left record with a top-k probe.  The output obeys the
same :class:`~repro.data.blocking.BlockingResult` contract, so everything
downstream (recall bookkeeping, pair construction) is interchangeable.

Recall bookkeeping is built in: ``block(..., measure_recall=True)``
re-ranks every query against the *exact* float32 top-k over all right
vectors and reports the retained fraction in ``result.recall_at_k`` --
the number ``benchmarks/bench_ann_blocking.py`` tracks against its >= 0.95
bar.  Everything is seeded (hyperplanes, k-means, subsampling), so two
runs over the same tables produce identical candidate lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.blocking import BlockingResult
from ..data.records import EntityRecord, Table
from .encoder import RecordEncoder
from .index import AnnIndex, make_index
from .kernels import exact_topk_dot


def exact_dense_topk(query: np.ndarray, vectors: np.ndarray,
                     record_ids: List[str], k: int) -> List[str]:
    """Exact float32 top-k ids with the shared ``(-score, id)`` ordering."""
    rows, scores = exact_topk_dot(query, vectors, k)
    ranked = sorted(zip(scores.tolist(), (record_ids[r] for r in rows)),
                    key=lambda item: (-item[0], item[1]))
    return [record_id for _, record_id in ranked[:k]]


class DenseBlocker:
    """ANN blocker over frozen bi-encoder embeddings.

    ``kind`` selects the index ("ivf" for tunable recall, "lsh" for cheap
    builds); extra keyword arguments go to the index constructor
    (``nlist``/``nprobe`` for IVF, ``num_bands``/``band_bits``/``probes``
    for LSH).  ``min_score`` optionally drops candidates below a cosine
    floor, mirroring the sparse blocker's threshold knob.
    """

    def __init__(self, encoder: Optional[RecordEncoder] = None,
                 kind: str = "ivf", k: int = 10, seed: int = 0,
                 min_score: Optional[float] = None,
                 model_name: str = "minilm-base", **index_kwargs) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.encoder = encoder if encoder is not None \
            else RecordEncoder(model_name=model_name)
        self.kind = kind
        self.k = k
        self.seed = seed
        self.min_score = min_score
        self.index_kwargs = dict(index_kwargs)
        self.last_index: Optional[AnnIndex] = None

    # ------------------------------------------------------------------
    def build_index(self, right: Table,
                    vectors: Optional[np.ndarray] = None) -> AnnIndex:
        """Embed + index the right table (exposed for benchmarks)."""
        records = list(right)
        if vectors is None:
            vectors = self.encoder.encode_records(records)
        index = make_index(self.kind, self.encoder.dim, seed=self.seed,
                           **self.index_kwargs)
        if hasattr(index, "train") and len(records):
            # IVF trains its coarse quantizer on the catalog itself;
            # LSH has no train step (the hook simply doesn't exist)
            index.train(vectors)
        index.add_many(
            (record.record_id, vectors[i]) for i, record in enumerate(records))
        self.last_index = index
        return index

    def block(self, left: Table, right: Table,
              measure_recall: bool = False) -> BlockingResult:
        """Top-k dense candidates per left record as a BlockingResult."""
        left_records = list(left)
        right_records = list(right)
        total = len(left_records) * len(right_records)
        if not left_records or not right_records:
            return BlockingResult(candidates=[], total_pairs=total,
                                  recall_at_k=1.0 if measure_recall else None)
        right_vectors = self.encoder.encode_records(right_records)
        index = self.build_index(right, vectors=right_vectors)
        right_by_id: Dict[str, EntityRecord] = {
            r.record_id: r for r in right_records}
        right_ids = [r.record_id for r in right_records]
        queries = self.encoder.encode_records(left_records)

        candidates: List[Tuple[EntityRecord, EntityRecord]] = []
        hits = 0
        wanted = 0
        for i, left_record in enumerate(left_records):
            found = index.search(queries[i], self.k)
            if self.min_score is not None:
                found = [(rid, score) for rid, score in found
                         if score >= self.min_score]
            for rid, _score in found:
                candidates.append((left_record, right_by_id[rid]))
            if measure_recall:
                exact = exact_dense_topk(queries[i], right_vectors,
                                         right_ids, self.k)
                got = {rid for rid, _ in found}
                hits += sum(1 for rid in exact if rid in got)
                wanted += len(exact)
        recall = (hits / wanted) if measure_recall and wanted else \
            (1.0 if measure_recall else None)
        return BlockingResult(candidates=candidates, total_pairs=total,
                              recall_at_k=recall)
