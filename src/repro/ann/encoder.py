"""Frozen bi-encoder: records -> L2-normalized mean-pooled embeddings.

The siamese :class:`~repro.baselines.sentencebert.SentenceBert` baseline
already shows the encoding recipe (serialize -> tokenize -> MiniLM ->
mean-pool over non-pad tokens); this module runs the same recipe *frozen*
-- straight off the pre-trained checkpoint, no fit -- which is what dense
blocking needs: a fixed embedding space that never shifts under the index.

Throughput comes from the same machinery the inference engine uses:

* per-record embeddings are memoized in an
  :class:`~repro.infer.cache.EncodingCache` keyed on
  ``EntityRecord.content_key()`` (content-addressed, so replacing a
  catalog record under an old id can never serve a stale vector);
* uncached records are length-bucketed with
  :func:`~repro.infer.engine.pack_buckets` under a token budget, then
  forwarded through the raw-numpy :mod:`repro.infer.fastpath` encoder
  kernels (eval mode, so no dropout -- the output is deterministic).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..baselines.lm_common import BackboneMixin
from ..data.records import EntityRecord
from ..data.serialize import serialize
from ..infer.cache import EncodingCache
from ..infer.engine import pack_buckets
from ..infer.fastpath import _layer_norm, encoder_hidden
from ..lm.model import MiniLM, pad_batch
from ..text import Tokenizer


class RecordEncoder(BackboneMixin):
    """Fit-free record embedder over the shared pre-trained backbone.

    ``encode_records`` is the only entry point the index layer needs:
    ``(records) -> (N, D) float32`` unit vectors, batched and cached.
    """

    def __init__(self, model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 max_len: int = 48, token_budget: int = 4096,
                 max_batch: int = 128,
                 cache_capacity: int = 32768) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer, token_budget=token_budget)
        if max_len < 2:
            raise ValueError("max_len must be >= 2")
        self.max_len = max_len
        self.max_batch = max_batch
        self.cache = EncodingCache(cache_capacity)
        self._frozen_lm: Optional[MiniLM] = None

    # ------------------------------------------------------------------
    def _backbone(self):
        """One frozen copy of the checkpoint, loaded lazily and kept in
        eval mode (dropout off) for the encoder's lifetime."""
        if self._frozen_lm is None:
            lm, _ = self.backbone()
            lm.eval()
            self._frozen_lm = lm
        return self._frozen_lm, self._tokenizer

    @property
    def dim(self) -> int:
        """Embedding dimensionality (the backbone's ``d_model``)."""
        lm, _ = self._backbone()
        return lm.config.d_model

    def encoding_fingerprint(self) -> tuple:
        """Cache-key component pinning the embedding space: any change to
        the checkpoint name or pooling recipe must miss old entries."""
        return ("record-encoder", self.model_name, self.max_len, "mean-l2")

    # ------------------------------------------------------------------
    def _embed_batch(self, lm: MiniLM, id_lists: List[List[int]],
                     pad_id: int) -> np.ndarray:
        """(B, D) mean-pooled unit embeddings via the fastpath kernels."""
        ids, pad_mask = pad_batch(id_lists, pad_id=pad_id)
        token_vecs = lm.token_embedding.weight.data[ids]
        flags = lm.duplicate_flags(ids)
        x = token_vecs
        x += lm.position_embedding.weight.data[: ids.shape[1]]
        x += lm.duplicate_embedding.weight.data[flags]
        # eval mode: embedding_norm only (dropout is identity)
        x = _layer_norm(lm.embedding_norm, x)
        hidden = encoder_hidden(lm, x, pad_mask)
        keep = (~pad_mask).astype(hidden.dtype)[:, :, None]
        pooled = (hidden * keep).sum(axis=1)
        pooled /= np.maximum(keep.sum(axis=1), 1.0)
        pooled = pooled.astype(np.float32, copy=False)
        norms = np.linalg.norm(pooled, axis=1, keepdims=True)
        # an empty/degenerate record keeps its zero vector (scores 0.0
        # against everything) instead of dividing by zero
        np.divide(pooled, norms, out=pooled, where=norms > 0)
        return pooled

    def encode_records(self, records: Sequence[EntityRecord]) -> np.ndarray:
        """(N, D) float32 unit embeddings, cache-aware and order-stable."""
        lm, tokenizer = self._backbone()
        fingerprint = self.encoding_fingerprint()
        keys = [(fingerprint, record.content_key()) for record in records]
        out = np.zeros((len(records), lm.config.d_model), dtype=np.float32)
        missing: List[int] = []
        seen = {}
        firsts: List[int] = []
        for i, key in enumerate(keys):
            if key in self.cache:
                missing.append(i)  # resolved through the cache below
            elif key in seen:
                missing.append(i)  # duplicate of an uncached record
            else:
                seen[key] = i
                firsts.append(i)
                missing.append(i)
        if firsts:
            max_len = min(self.max_len, lm.config.max_len)
            id_lists = [
                list(tokenizer.encode(serialize(records[i]),
                                      max_len=max_len).ids)
                for i in firsts]
            buckets = pack_buckets([len(ids) for ids in id_lists],
                                   self.token_budget, self.max_batch)
            fresh = {}
            for idx in buckets:
                batch = self._embed_batch(
                    lm, [id_lists[j] for j in idx], tokenizer.vocab.pad_id)
                for row, j in enumerate(idx):
                    fresh[keys[firsts[int(j)]]] = batch[row]
            for key, vector in fresh.items():
                self.cache.get_or_encode(key, lambda v=vector: v)
        for i in missing:
            out[i] = self.cache.get_or_encode(
                keys[i], lambda: self._encode_one(records[i]))
        return out

    def _encode_one(self, record: EntityRecord) -> np.ndarray:
        lm, tokenizer = self._backbone()
        max_len = min(self.max_len, lm.config.max_len)
        ids = list(tokenizer.encode(serialize(record), max_len=max_len).ids)
        return self._embed_batch(lm, [ids], tokenizer.vocab.pad_id)[0]

    def encode_record(self, record: EntityRecord) -> np.ndarray:
        """(D,) float32 unit embedding of one record (cached)."""
        return self.encode_records([record])[0]
