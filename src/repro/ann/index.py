"""ANN indexes over int8-quantized record embeddings.

Two implementations behind one :class:`AnnIndex` interface:

* :class:`LshIndex` -- random-hyperplane band hashing.  O(1) build per
  vector, no training step; recall is tuned with ``num_bands`` /
  ``band_bits`` / ``probes`` (multi-probe bit flips);
* :class:`IvfIndex` -- inverted-file index with a k-means coarse
  quantizer.  Pays a one-time training cost, then probes only the
  ``nprobe`` nearest centroid lists per query; recall is tuned with
  ``nlist`` / ``nprobe``.

Both share the mutable-catalog semantics of
:class:`repro.serve.ServingIndex`: ``add`` of an existing id *replaces*
the old vector atomically (returns ``False``), ``remove`` unlinks, and
``search`` orders results by the same deterministic ``(-score,
record_id)`` rule so equal scores never reorder between calls or runs.
Hyperplanes and k-means are seeded, making a rebuilt index bit-identical.

Locking mirrors the serving index after its snapshot-outside-the-lock
rework: mutations hold the index lock; ``search`` holds it only long
enough to gather the probed rows' codes into private arrays, then scores
and sorts outside it, so a concurrent in-place replace can never produce
a torn read.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .kernels import fused_scaled_dot, quantize_int8, topk_candidates

#: initial row capacity of the code store (doubles on growth)
_MIN_CAPACITY = 256


def kmeans(vectors: np.ndarray, k: int, seed: int = 0,
           iters: int = 8) -> np.ndarray:
    """Seeded Lloyd's k-means on unit vectors; returns (k, D) centroids.

    Initialization samples ``k`` distinct rows with a seeded generator;
    assignment maximizes the dot product (equivalent to minimizing L2 on
    normalized inputs).  An emptied cluster is re-seeded deterministically
    to the point worst-served by its current centroid.  Same inputs + seed
    -> bit-identical centroids, which is what makes IVF probing
    reproducible run-to-run.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    n = vectors.shape[0]
    if n == 0 or k < 1:
        raise ValueError("kmeans needs k >= 1 and at least one vector")
    k = min(k, n)
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(iters):
        sims = vectors @ centroids.T                     # (n, k)
        assign = sims.argmax(axis=1)
        best = sims[np.arange(n), assign]
        for c in range(k):
            members = assign == c
            if members.any():
                centroid = vectors[members].mean(axis=0)
                norm = np.linalg.norm(centroid)
                centroids[c] = centroid / norm if norm > 0 else centroid
            else:
                # deterministically steal the point its centroid serves worst
                worst = int(best.argmin())
                centroids[c] = vectors[worst]
                best[worst] = np.inf
    return centroids


class AnnIndex:
    """Interface + shared int8 storage for approximate-nearest-neighbor
    indexes over a mutable catalog of ``record_id -> vector``.

    Subclasses implement ``_link(row, vector)`` / ``_unlink(row)`` to
    maintain their routing structure and ``_probe(query)`` to return the
    candidate storage rows for a query; ``search`` handles exact int8
    re-ranking and deterministic ordering.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self._lock = threading.RLock()
        self._codes = np.zeros((_MIN_CAPACITY, self.dim), dtype=np.int8)
        self._scales = np.ones(_MIN_CAPACITY, dtype=np.float32)
        self._ids: List[Optional[str]] = []      # row -> id (None = tombstone)
        self._rows: Dict[str, int] = {}          # id -> row
        self._free: List[int] = []               # reusable tombstone rows

    # -- catalog protocol ----------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._rows

    def add(self, record_id: str, vector: np.ndarray) -> bool:
        """Insert (or replace) one vector; ``False`` means replaced."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(
                f"vector has dim {vector.shape[0]}, index expects {self.dim}")
        codes, scales = quantize_int8(vector[None, :])
        with self._lock:
            fresh = record_id not in self._rows
            if not fresh:
                self._drop(record_id)
            row = self._take_row()
            self._codes[row] = codes[0]
            self._scales[row] = scales[0]
            self._ids[row] = record_id
            self._rows[record_id] = row
            self._link(row, vector)
        return fresh

    def add_many(self, items: Iterable[Tuple[str, np.ndarray]]) -> int:
        """Bulk insert; returns the number of *new* ids."""
        return sum(1 for record_id, vector in items
                   if self.add(record_id, vector))

    def remove(self, record_id: str) -> bool:
        """Drop a record by id; ``False`` when the id is unknown."""
        with self._lock:
            if record_id not in self._rows:
                return False
            self._drop(record_id)
        return True

    def _drop(self, record_id: str) -> None:
        # caller holds the lock
        row = self._rows.pop(record_id)
        self._unlink(row)
        self._ids[row] = None
        self._free.append(row)

    def _take_row(self) -> int:
        if self._free:
            return self._free.pop()
        row = len(self._ids)
        if row >= self._codes.shape[0]:
            capacity = max(_MIN_CAPACITY, 2 * self._codes.shape[0])
            codes = np.zeros((capacity, self.dim), dtype=np.int8)
            codes[:row] = self._codes[:row]
            scales = np.ones(capacity, dtype=np.float32)
            scales[:row] = self._scales[:row]
            self._codes, self._scales = codes, scales
        self._ids.append(None)
        return row

    def _active_rows(self) -> np.ndarray:
        # caller holds the lock
        return np.fromiter(self._rows.values(), dtype=np.int64,
                           count=len(self._rows))

    # -- routing hooks --------------------------------------------------
    def _link(self, row: int, vector: np.ndarray) -> None:
        raise NotImplementedError

    def _unlink(self, row: int) -> None:
        raise NotImplementedError

    def _probe(self, query: np.ndarray) -> np.ndarray:
        """Candidate storage rows for a query (caller holds the lock)."""
        raise NotImplementedError

    # -- search ---------------------------------------------------------
    def search(self, query: np.ndarray, k: int
               ) -> List[Tuple[str, float]]:
        """Top-k ``(record_id, score)`` by quantized inner product.

        Ordered by ``(-score, record_id)``; ties at the k-th score are
        resolved by id, never by storage order.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        query = np.ascontiguousarray(
            np.asarray(query, dtype=np.float32).reshape(-1))
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query has dim {query.shape[0]}, index expects {self.dim}")
        with self._lock:
            rows = self._probe(query)
            if len(rows) == 0:
                return []
            # snapshot the probed rows under the lock: a concurrent
            # replace writes codes in place, so scoring must not read them
            codes = self._codes[rows]
            scales = self._scales[rows]
            ids = [self._ids[row] for row in rows]
        scores = fused_scaled_dot(query, codes, scales)
        keep = topk_candidates(scores, k)
        ranked = sorted(((float(scores[i]), ids[i]) for i in keep),
                        key=lambda item: (-item[0], item[1]))
        return [(record_id, score) for score, record_id in ranked[:k]]

    def stats(self) -> dict:
        with self._lock:
            return {
                "records": len(self._rows),
                "capacity": int(self._codes.shape[0]),
                "tombstones": len(self._free),
                "dim": self.dim,
            }


class LshIndex(AnnIndex):
    """Random-hyperplane LSH with banded signatures.

    Each of ``num_bands`` bands hashes a vector to a ``band_bits``-bit key
    (sign pattern against seeded hyperplanes); a query probes the union of
    its bands' buckets, optionally widened by ``probes`` single-bit flips
    per band (flipping the planes with the smallest margin first -- the
    standard multi-probe order, deterministic given the query).
    """

    def __init__(self, dim: int, num_bands: int = 16, band_bits: int = 12,
                 probes: int = 0, seed: int = 0) -> None:
        super().__init__(dim)
        if num_bands < 1 or band_bits < 1:
            raise ValueError("num_bands and band_bits must be >= 1")
        if not 0 <= probes <= band_bits:
            raise ValueError("probes must be in [0, band_bits]")
        self.num_bands = num_bands
        self.band_bits = band_bits
        self.probes = probes
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal(
            (num_bands, band_bits, dim)).astype(np.float32)
        self._weights = (1 << np.arange(band_bits)).astype(np.int64)
        self._buckets: Dict[Tuple[int, int], set] = {}
        self._row_keys: Dict[int, List[Tuple[int, int]]] = {}

    def _signature(self, vector: np.ndarray) -> np.ndarray:
        """(num_bands,) integer band keys of a vector."""
        proj = self._planes @ vector                 # (bands, bits)
        return ((proj >= 0) @ self._weights).astype(np.int64)

    def _link(self, row: int, vector: np.ndarray) -> None:
        keys = [(band, int(key))
                for band, key in enumerate(self._signature(vector))]
        self._row_keys[row] = keys
        for key in keys:
            self._buckets.setdefault(key, set()).add(row)

    def _unlink(self, row: int) -> None:
        for key in self._row_keys.pop(row, ()):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._buckets[key]

    def _probe(self, query: np.ndarray) -> np.ndarray:
        proj = self._planes @ query                  # (bands, bits)
        bits = proj >= 0
        keys = (bits @ self._weights).astype(np.int64)
        rows: set = set()
        for band in range(self.num_bands):
            rows |= self._buckets.get((band, int(keys[band])), set())
            if self.probes:
                # flip the lowest-margin bits first: those are the planes
                # the query sits closest to, so their flips are the
                # likeliest buckets for true neighbors
                order = np.argsort(np.abs(proj[band]), kind="stable")
                for bit in order[: self.probes]:
                    flipped = int(keys[band]) ^ int(self._weights[bit])
                    rows |= self._buckets.get((band, flipped), set())
        return np.fromiter(rows, dtype=np.int64, count=len(rows))

    def stats(self) -> dict:
        base = super().stats()
        with self._lock:
            base.update({
                "kind": "lsh",
                "bands": self.num_bands,
                "band_bits": self.band_bits,
                "probes": self.probes,
                "buckets": len(self._buckets),
            })
        return base


class IvfIndex(AnnIndex):
    """Inverted-file index with a seeded k-means coarse quantizer.

    Untrained, it degrades to an exact flat scan (every row probed).
    :meth:`train` fits ``nlist`` centroids on a seeded subsample of the
    supplied vectors and re-assigns the whole catalog; subsequent ``add``
    routes each vector to its nearest centroid list.  A query scores the
    centroids, takes the ``nprobe`` best lists (ties broken by list id),
    and re-ranks their members with the fused int8 kernel.
    """

    def __init__(self, dim: int, nlist: int = 64, nprobe: int = 8,
                 seed: int = 0, train_cap: int = 20000,
                 kmeans_iters: int = 8) -> None:
        super().__init__(dim)
        if nlist < 1 or nprobe < 1:
            raise ValueError("nlist and nprobe must be >= 1")
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.seed = seed
        self.train_cap = train_cap
        self.kmeans_iters = kmeans_iters
        self._centroids: Optional[np.ndarray] = None   # (nlist, D) float32
        self._lists: List[set] = []
        self._row_list: Dict[int, int] = {}

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, vectors: np.ndarray) -> "IvfIndex":
        """Fit the coarse quantizer and re-route every stored row."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"expected (N, {self.dim}) training vectors")
        if vectors.shape[0] > self.train_cap:
            rng = np.random.default_rng(self.seed)
            pick = rng.choice(vectors.shape[0], size=self.train_cap,
                              replace=False)
            pick.sort()                       # deterministic row order
            vectors = vectors[pick]
        centroids = kmeans(vectors, self.nlist, seed=self.seed,
                           iters=self.kmeans_iters)
        with self._lock:
            self._centroids = centroids
            self._lists = [set() for _ in range(centroids.shape[0])]
            self._row_list = {}
            for record_id, row in self._rows.items():
                vector = (self._codes[row].astype(np.float32)
                          * self._scales[row])
                self._route(row, vector)
        return self

    def _nearest_list(self, vector: np.ndarray) -> int:
        sims = self._centroids @ vector
        # argmax is already lowest-index-first on ties
        return int(sims.argmax())

    def _route(self, row: int, vector: np.ndarray) -> None:
        lst = self._nearest_list(vector)
        self._lists[lst].add(row)
        self._row_list[row] = lst

    def _link(self, row: int, vector: np.ndarray) -> None:
        if self._centroids is not None:
            self._route(row, vector)

    def _unlink(self, row: int) -> None:
        lst = self._row_list.pop(row, None)
        if lst is not None:
            self._lists[lst].discard(row)

    def _probe(self, query: np.ndarray) -> np.ndarray:
        if self._centroids is None:
            return self._active_rows()
        sims = self._centroids @ query
        nprobe = min(self.nprobe, len(sims))
        # deterministic list order: (-similarity, list_id)
        order = np.lexsort((np.arange(len(sims)), -sims))[:nprobe]
        rows: List[int] = []
        for lst in order:
            rows.extend(self._lists[int(lst)])
        return np.asarray(rows, dtype=np.int64)

    def stats(self) -> dict:
        base = super().stats()
        with self._lock:
            sizes = [len(lst) for lst in self._lists]
            base.update({
                "kind": "ivf",
                "nlist": self.nlist,
                "nprobe": self.nprobe,
                "trained": self.is_trained,
                "max_list": max(sizes) if sizes else 0,
                "mean_list": (sum(sizes) / len(sizes)) if sizes else 0.0,
            })
        return base


def make_index(kind: str, dim: int, seed: int = 0, **kwargs) -> AnnIndex:
    """Factory used by the blocker, the serving layer and the CLI."""
    if kind == "lsh":
        return LshIndex(dim, seed=seed, **kwargs)
    if kind == "ivf":
        return IvfIndex(dim, seed=seed, **kwargs)
    raise ValueError(f"unknown ANN index kind {kind!r}; choose lsh or ivf")
