"""Numpy-native distance kernels for the ANN index, in the style of
:mod:`repro.infer.fastpath`.

The candidate-generation hot path is "score one float32 query against many
stored vectors, keep the top-k". Three things make it fast here:

* **int8 symmetric quantization** -- stored vectors are kept as int8 codes
  with one float32 scale per vector (``v ~ codes * scale``), a 4x memory
  cut that keeps 10^7-scale catalogs resident;
* **fused scale-and-dot** -- a query is scored against a *block* of codes
  by casting the block into a recycled per-thread float32 scratch buffer,
  running one GEMM, and folding the per-vector scales into the products in
  place.  The dequantized matrix is never materialized beyond one block;
* **blocked top-k merge** -- candidates stream through a small running
  pool (``top-k`` plus score ties), so the full score vector over the
  catalog never exists in memory.

Tie handling is deliberate: :func:`topk_candidates` returns *every* row
tied at the k-th score, and callers (the index layer) order them by
``(-score, record_id)`` before cutting to ``k`` -- the same deterministic
rule :class:`repro.serve.ServingIndex` uses, so equal scores never reorder
between runs.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

#: rows of int8 codes dequantized per GEMM call; sized so one block of
#: float32 scratch (BLOCK_ROWS x dim) stays comfortably inside L2/L3
BLOCK_ROWS = 8192

_scratch = threading.local()


def _scratch_buf(key: str, shape: Tuple[int, ...],
                 dtype=np.float32) -> np.ndarray:
    """Reusable per-thread buffer (same idiom as ``fastpath._scratch_buf``).

    The dequantized code block and the per-block score vector are the only
    large temporaries of a probe; recycling them removes the alloc + page
    fault cost from every query.
    """
    store = getattr(_scratch, "bufs", None)
    if store is None:
        store = _scratch.bufs = {}
    buf = store.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
        buf = store[key] = np.empty(shape, dtype)
    return buf


# ----------------------------------------------------------------------
# int8 symmetric quantization
# ----------------------------------------------------------------------
def quantize_int8(vectors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-vector symmetric quantization: ``(N, D) -> (codes, scales)``.

    ``codes`` is int8 in ``[-127, 127]`` and ``scales`` float32 with
    ``vectors ~ codes * scales[:, None]``.  The scale is ``max|v| / 127``
    per vector, so the worst-case per-element error is ``scale / 2`` and a
    dot product against a unit query errs by at most
    ``sqrt(D) * scale / 2`` (see ``docs/BLOCKING.md``).  An all-zero
    vector keeps scale 1.0 and all-zero codes.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError(f"expected (N, D) vectors, got shape {vectors.shape}")
    peak = np.abs(vectors).max(axis=1) if vectors.shape[0] else \
        np.zeros(0, dtype=np.float32)
    scales = np.where(peak > 0, peak / 127.0, 1.0).astype(np.float32)
    codes = np.rint(vectors / scales[:, None]).astype(np.int8)
    return codes, scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Float32 reconstruction ``codes * scales[:, None]`` (tests, k-means)."""
    return codes.astype(np.float32) * scales[:, None].astype(np.float32)


# ----------------------------------------------------------------------
# Fused scale-and-dot
# ----------------------------------------------------------------------
def fused_scaled_dot(query: np.ndarray, codes: np.ndarray,
                     scales: np.ndarray,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """``(codes * scales[:, None]) @ query`` without the dequantized matrix.

    ``query`` is float32 ``(D,)``; ``codes`` int8 ``(M, D)``; the result is
    float32 ``(M,)``.  Blocks of ``BLOCK_ROWS`` codes are cast into one
    recycled scratch buffer, multiplied by the query, and scaled in place
    -- the float32 copy of the full code matrix never exists.
    """
    query = np.ascontiguousarray(query, dtype=np.float32)
    rows = codes.shape[0]
    if out is None:
        out = np.empty(rows, dtype=np.float32)
    if rows == 0:
        return out
    block = min(rows, BLOCK_ROWS)
    deq = _scratch_buf("fused_deq", (block, codes.shape[1]))
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        chunk = deq[: stop - start]
        chunk[:] = codes[start:stop]          # int8 -> float32 cast, one pass
        np.matmul(chunk, query, out=out[start:stop])
        out[start:stop] *= scales[start:stop]  # fused per-vector rescale
    return out


def gather_scaled_dot(query: np.ndarray, codes: np.ndarray,
                      scales: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Fused scale-and-dot over a row subset (the IVF probe kernel).

    The gather and the cast happen in one pass: ``scratch[:m] = codes[rows]``
    both selects the probed rows and widens them to float32 without an
    intermediate int8 copy.
    """
    query = np.ascontiguousarray(query, dtype=np.float32)
    m = len(rows)
    out = np.empty(m, dtype=np.float32)
    if m == 0:
        return out
    block = min(m, BLOCK_ROWS)
    deq = _scratch_buf("gather_deq", (block, codes.shape[1]))
    for start in range(0, m, block):
        stop = min(start + block, m)
        chunk = deq[: stop - start]
        chunk[:] = codes[rows[start:stop]]    # gather + cast, one pass
        np.matmul(chunk, query, out=out[start:stop])
        out[start:stop] *= scales[rows[start:stop]]
    return out


# ----------------------------------------------------------------------
# Top-k selection and blocked merge
# ----------------------------------------------------------------------
def topk_candidates(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k scores *including every tie at the k-th value*.

    Returned unordered (``np.flatnonzero`` order); callers sort by
    ``(-score, record_id)`` and cut to ``k``, which is what makes the
    final ordering deterministic regardless of storage order.
    """
    n = len(scores)
    if n <= k:
        return np.arange(n)
    kth = np.partition(scores, n - k)[n - k]
    return np.flatnonzero(scores >= kth)


def blocked_topk_dot(query: np.ndarray, codes: np.ndarray,
                     scales: np.ndarray, k: int,
                     rows: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k fused int8 scoring that never holds the full score vector.

    Streams ``codes`` (optionally restricted to ``rows``) through
    block-sized fused dots, keeping a running candidate pool of at most
    ``k`` rows plus ties.  Returns ``(pool_rows, pool_scores)`` --
    unordered, possibly longer than ``k`` when the k-th score is tied.
    """
    if rows is None:
        rows = np.arange(codes.shape[0])
    rows = np.asarray(rows, dtype=np.int64)
    pool_rows = np.empty(0, dtype=np.int64)
    pool_scores = np.empty(0, dtype=np.float32)
    for start in range(0, len(rows), BLOCK_ROWS):
        chunk = rows[start:start + BLOCK_ROWS]
        scores = gather_scaled_dot(query, codes, scales, chunk)
        keep = topk_candidates(scores, k)
        pool_rows = np.concatenate([pool_rows, chunk[keep]])
        pool_scores = np.concatenate([pool_scores, scores[keep]])
        if len(pool_rows) > k:
            keep = topk_candidates(pool_scores, k)
            pool_rows, pool_scores = pool_rows[keep], pool_scores[keep]
    return pool_rows, pool_scores


def exact_topk_dot(query: np.ndarray, vectors: np.ndarray, k: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked float32 exact top-k (``rows, scores``; ties included).

    The reference the ANN recall bookkeeping compares against: same
    blocked streaming as the int8 path, full float32 precision.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.ascontiguousarray(query, dtype=np.float32)
    pool_rows = np.empty(0, dtype=np.int64)
    pool_scores = np.empty(0, dtype=np.float32)
    for start in range(0, vectors.shape[0], BLOCK_ROWS):
        stop = min(start + BLOCK_ROWS, vectors.shape[0])
        scores = vectors[start:stop] @ query
        keep = topk_candidates(scores, k)
        pool_rows = np.concatenate([pool_rows, keep + start])
        pool_scores = np.concatenate(
            [pool_scores, scores[keep].astype(np.float32, copy=False)])
        if len(pool_rows) > k:
            keep = topk_candidates(pool_scores, k)
            pool_rows, pool_scores = pool_rows[keep], pool_scores[keep]
    return pool_rows, pool_scores
