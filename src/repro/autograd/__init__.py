"""A numpy reverse-mode autodiff engine standing in for PyTorch.

Public surface::

    from repro.autograd import Tensor, Module, Parameter, Linear, AdamW, ...
"""

from . import functional, init
from .attention import MultiHeadAttention
from .layers import (
    MLP, Activation, Dropout, DropoutPlan, Embedding, LayerNorm, Linear,
    Sequential, active_dropout_plan, dropout_plan,
)
from .module import Module, Parameter
from .optim import SGD, Adam, AdamW, LinearWarmupSchedule, Optimizer, clip_grad_norm
from .recurrent import LSTM, BiLSTM, LSTMCell
from .serialization import load_checkpoint, save_checkpoint
from .tensor import (
    Tensor, concatenate, gather_rows, get_default_dtype, is_grad_enabled,
    no_grad, set_default_dtype, stack, where,
)
from .transformer import FeedForward, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Tensor", "concatenate", "gather_rows", "stack", "where", "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype",
    "Module", "Parameter",
    "Linear", "Embedding", "LayerNorm", "Dropout", "DropoutPlan",
    "dropout_plan", "active_dropout_plan", "Sequential", "Activation", "MLP",
    "MultiHeadAttention", "TransformerEncoder", "TransformerEncoderLayer", "FeedForward",
    "LSTM", "BiLSTM", "LSTMCell",
    "Optimizer", "SGD", "Adam", "AdamW", "LinearWarmupSchedule", "clip_grad_norm",
    "save_checkpoint", "load_checkpoint",
    "functional", "init",
]
