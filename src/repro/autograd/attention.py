"""Multi-head self-attention."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head self-attention with padding masking.

    Input and output shape: (batch, seq, d_model). A boolean ``pad_mask``
    of shape (batch, seq) marks padding tokens, which are excluded from the
    softmax over keys.
    """

    def __init__(self, d_model: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None,
                 dropout: float = 0.1,
                 matched_heads: int = 0) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        if not 0 <= matched_heads <= num_heads:
            raise ValueError("matched_heads must be in [0, num_heads]")
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.scale = 1.0 / np.sqrt(self.d_head)

        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
        # Content-matching initialization: the first `matched_heads` heads
        # start with identical Q and K projections, so q_i . k_j is maximal
        # when tokens i and j are the same word. This seeds the duplicate-
        # detection circuit that entity comparison relies on; training is
        # free to move away from it.
        for h in range(matched_heads):
            lo, hi = h * self.d_head, (h + 1) * self.d_head
            self.k_proj.weight.data[:, lo:hi] = self.q_proj.weight.data[:, lo:hi]

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale  # (B, H, T, T)
        if pad_mask is not None:
            mask = F.attention_scores_mask(pad_mask)  # (B, 1, 1, T)
            mask = np.broadcast_to(mask, scores.shape)
            scores = F.masked_fill(scores, mask, -1e9)
        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)

        context = weights @ v  # (B, H, T, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.out_proj(context)
