"""Neural-network functional operations built on :class:`~repro.autograd.tensor.Tensor`.

These are the activation, normalization and loss primitives that the MiniLM
encoder, the prompt verbalizer and every baseline matcher share.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, where

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))
_GELU_C = 0.044715


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT).

    A single fused graph node: the seed implementation composed seven
    elementwise Tensor ops (each allocating an intermediate array and a
    backward closure); this computes the same forward in raw numpy and
    backpropagates through the closed-form derivative in one pass.
    """
    data = x.data
    inner = (data + (data * data * data) * _GELU_C) * _SQRT_2_OVER_PI
    t = np.tanh(inner)

    def backward(out: Tensor) -> None:
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3.0 * _GELU_C * data * data)
        x._accumulate(out.grad * (0.5 * (1.0 + t)
                                  + 0.5 * data * (1.0 - t * t) * d_inner))

    return Tensor._make(data * (t + 1.0) * 0.5, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``value``."""
    return where(np.asarray(mask, dtype=bool), Tensor(np.full(x.shape, value)), x)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis as one fused graph node.

    Forward matches the composed ``(x - mu) / sqrt(var + eps) * gamma +
    beta`` chain bit-for-bit (means computed as ``sum * (1/n)``, like
    :meth:`Tensor.mean`); backward applies the closed-form LayerNorm
    gradient instead of unwinding ~10 recorded elementwise ops.
    """
    data = x.data
    n = data.shape[-1]
    inv_n = 1.0 / n
    mu = data.sum(axis=-1, keepdims=True) * inv_n
    centered = data - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv_n
    std = np.sqrt(var + eps)
    normed = centered / std
    out_data = normed * gamma.data + beta.data

    def backward(out: Tensor) -> None:
        grad = out.grad
        if beta.requires_grad:
            beta._accumulate(grad.reshape(-1, n).sum(axis=0))
        if gamma.requires_grad:
            gamma._accumulate((grad * normed).reshape(-1, n).sum(axis=0))
        if x.requires_grad:
            gx = grad * gamma.data
            mean_gx = gx.sum(axis=-1, keepdims=True) * inv_n
            mean_gx_normed = (gx * normed).sum(axis=-1, keepdims=True) * inv_n
            x._accumulate((gx - mean_gx - normed * mean_gx_normed) / std)

    return Tensor._make(out_data, (x, gamma, beta), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None,
                  sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    ``ignore_index`` positions contribute zero loss (used by MLM pre-training
    where unmasked positions carry a sentinel target). ``sample_weights``
    rescales per-sample losses (used by Rotom's meta-weighting).

    The op is a single fused graph node: softmax and the negative
    log-likelihood are computed together in raw numpy, and the backward
    applies the closed-form gradient (softmax minus one-hot, per-row
    weighted) in one pass instead of unwinding a ``log_softmax`` +
    gather + reduction chain.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-d logits, got shape {logits.shape}")
    n = logits.shape[0]
    x = logits.data

    if ignore_index is not None:
        keep = targets != ignore_index
    else:
        keep = np.ones(n, dtype=bool)
    if not keep.any():
        return Tensor(0.0, requires_grad=logits.requires_grad)

    rows = np.nonzero(keep)[0]
    full = len(rows) == n
    kept_x = x if full else x[rows]
    kept_targets = targets if full else targets[rows]
    shifted = kept_x - kept_x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    z = exps.sum(axis=-1, keepdims=True)
    picked = shifted[np.arange(len(rows)), kept_targets] - np.log(z[:, 0])

    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=np.float64)[rows]
        total = weights.sum()
        if total <= 0:
            return Tensor(0.0, requires_grad=logits.requires_grad)
        coeff = (weights / total).astype(x.dtype)
        value = -float(np.dot(picked.astype(np.float64), weights)) / total
    else:
        coeff = np.full(len(rows), 1.0 / len(rows), dtype=x.dtype)
        value = -picked.sum() / len(rows)

    def backward(out: Tensor) -> None:
        grad_rows = exps / z
        grad_rows[np.arange(len(rows)), kept_targets] -= 1.0
        grad_rows *= (out.grad * coeff)[:, None]
        if full:
            logits._accumulate(grad_rows)
        else:
            grad = np.zeros_like(x)
            grad[rows] = grad_rows
            logits._accumulate(grad)

    return Tensor._make(np.asarray(value, dtype=x.dtype), (logits,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer targets under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.arange(log_probs.shape[0])
    return -log_probs[rows, targets].mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between scalar logits (N,) and binary targets (N,)."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    # log(1 + exp(-|x|)) + max(x, 0) - x*y, the numerically stable form.
    abs_logits = logits.abs()
    loss = (1.0 + (-abs_logits).exp()).log() + logits.relu() - logits * targets_t
    return loss.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not ``training`` or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (V, D) according to integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def attention_scores_mask(pad_mask: np.ndarray) -> np.ndarray:
    """Expand a (B, T) padding mask to a (B, 1, 1, T) attention mask.

    True marks *padding* positions that must not be attended to.
    """
    pad_mask = np.asarray(pad_mask, dtype=bool)
    return pad_mask[:, None, None, :]
