"""Neural-network functional operations built on :class:`~repro.autograd.tensor.Tensor`.

These are the activation, normalization and loss primitives that the MiniLM
encoder, the prompt verbalizer and every baseline matcher share.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, where

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    inner = (x + (x ** 3) * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``value``."""
    return where(np.asarray(mask, dtype=bool), Tensor(np.full(x.shape, value)), x)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None,
                  sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    ``ignore_index`` positions contribute zero loss (used by MLM pre-training
    where unmasked positions carry a sentinel target). ``sample_weights``
    rescales per-sample losses (used by Rotom's meta-weighting).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-d logits, got shape {logits.shape}")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)

    if ignore_index is not None:
        keep = targets != ignore_index
    else:
        keep = np.ones(n, dtype=bool)
    if not keep.any():
        return Tensor(0.0, requires_grad=logits.requires_grad)

    rows = np.nonzero(keep)[0]
    picked = log_probs[rows, targets[rows]]
    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=np.float64)[rows]
        total = weights.sum()
        if total <= 0:
            return Tensor(0.0, requires_grad=logits.requires_grad)
        return -(picked * Tensor(weights)).sum() / total
    return -picked.sum() / len(rows)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer targets under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.arange(log_probs.shape[0])
    return -log_probs[rows, targets].mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between scalar logits (N,) and binary targets (N,)."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    # log(1 + exp(-|x|)) + max(x, 0) - x*y, the numerically stable form.
    abs_logits = logits.abs()
    loss = (1.0 + (-abs_logits).exp()).log() + logits.relu() - logits * targets_t
    return loss.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not ``training`` or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (V, D) according to integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def attention_scores_mask(pad_mask: np.ndarray) -> np.ndarray:
    """Expand a (B, T) padding mask to a (B, 1, 1, T) attention mask.

    True marks *padding* positions that must not be attended to.
    """
    pad_mask = np.asarray(pad_mask, dtype=bool)
    return pad_mask[:, None, None, :]
