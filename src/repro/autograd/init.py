"""Weight initialization schemes."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for (fan_in, fan_out) weights."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.standard_normal(shape) * std


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02) -> np.ndarray:
    """BERT-style truncated-ish normal initialization."""
    return np.clip(rng.standard_normal(shape) * std, -2 * std, 2 * std)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
