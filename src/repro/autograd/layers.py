"""Core layers: Linear, Embedding, LayerNorm, Dropout, Sequential, MLP."""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None,
                 padding_idx: Optional[int] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, embedding_dim), rng)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, self.eps)


@dataclass(frozen=True)
class DropoutPlan:
    """Deterministic per-pass dropout seeding for MC-Dropout.

    While a plan is active (see :func:`dropout_plan`), every Dropout module
    derives its mask from ``(base_seed, pass_seed, batch_index, seed_salt)``
    instead of its own stateful rng. ``pass_seeds`` with more than one entry
    declares the batch axis *tiled*: rows are split into ``len(pass_seeds)``
    equal tiles and tile ``k`` gets the mask seeded by ``pass_seeds[k]`` --
    exactly the mask a sequential pass with ``pass_seeds=(k,)`` would draw.
    This is what lets the vectorized MC-Dropout path reproduce the
    sequential one bit-for-bit (paper Section 4.2 uncertainty estimates).
    """

    base_seed: int
    pass_seeds: Tuple[int, ...] = (0,)
    batch_index: int = 0


_ACTIVE_DROPOUT_PLAN: Optional[DropoutPlan] = None

#: monotone per-instance salt so sibling Dropouts decorrelate under a plan
_DROPOUT_SALTS = itertools.count()


def active_dropout_plan() -> Optional[DropoutPlan]:
    """The plan installed by the innermost :func:`dropout_plan`, if any."""
    return _ACTIVE_DROPOUT_PLAN


@contextmanager
def dropout_plan(plan: Optional[DropoutPlan]):
    """Install a :class:`DropoutPlan` for the duration of the block."""
    global _ACTIVE_DROPOUT_PLAN
    previous = _ACTIVE_DROPOUT_PLAN
    _ACTIVE_DROPOUT_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_DROPOUT_PLAN = previous


class Dropout(Module):
    """Inverted dropout driven by the module's training flag.

    The per-module ``rng`` makes stochastic forward passes reproducible,
    which matters for MC-Dropout uncertainty estimates (paper Section 4.2).
    A per-call ``seed`` (or an active :class:`DropoutPlan`) switches to
    counter-based masks derived from the seed and this module's
    ``seed_salt``, making individual passes replayable and allowing the
    vectorized MC-Dropout path to match the sequential one exactly.
    """

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self.seed_salt = next(_DROPOUT_SALTS)

    def _seeded_mask(self, shape, seeds: Sequence[int],
                     batch_index: int, base_seed: int) -> Optional[np.ndarray]:
        """Tile-wise mask: rows split across ``seeds``; None if not tileable."""
        tiles = len(seeds)
        if not shape or shape[0] % tiles != 0:
            return None
        per_tile = (shape[0] // tiles,) + tuple(shape[1:])
        parts = []
        for seed in seeds:
            rng = np.random.default_rng(
                [int(base_seed), int(seed), int(batch_index), self.seed_salt])
            parts.append((rng.random(per_tile) >= self.p) / (1.0 - self.p))
        return parts[0] if tiles == 1 else np.concatenate(parts, axis=0)

    def forward(self, x: Tensor, seed: Optional[int] = None) -> Tensor:
        if not self.training or self.p <= 0.0:
            return x
        if seed is not None:
            mask = self._seeded_mask(x.shape, (int(seed),), 0, 0)
            if mask is not None:
                return x * Tensor(mask)
        plan = active_dropout_plan()
        if plan is not None:
            mask = self._seeded_mask(x.shape, plan.pass_seeds,
                                     plan.batch_index, plan.base_seed)
            if mask is not None:
                return x * Tensor(mask)
        return F.dropout(x, self.p, self.training, rng=self.rng)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self.register_module(f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class Activation(Module):
    """Wrap a functional activation as a module (for Sequential)."""

    def __init__(self, fn: Callable[[Tensor], Tensor]) -> None:
        super().__init__()
        self.fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and dropout.

    Used by the TDmatch* supervised head (paper Appendix D) and DADER's
    domain discriminator.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 activation: Callable[[Tensor], Tensor] = F.relu,
                 dropout: float = 0.0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        dims = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            if i < len(dims) - 2:
                layers.append(Activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
