"""Core layers: Linear, Embedding, LayerNorm, Dropout, Sequential, MLP."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None,
                 padding_idx: Optional[int] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, embedding_dim), rng)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout driven by the module's training flag.

    The per-module ``rng`` makes stochastic forward passes reproducible,
    which matters for MC-Dropout uncertainty estimates (paper Section 4.2).
    """

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self.rng)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self.register_module(f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class Activation(Module):
    """Wrap a functional activation as a module (for Sequential)."""

    def __init__(self, fn: Callable[[Tensor], Tensor]) -> None:
        super().__init__()
        self.fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and dropout.

    Used by the TDmatch* supervised head (paper Appendix D) and DADER's
    domain discriminator.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 activation: Callable[[Tensor], Tensor] = F.relu,
                 dropout: float = 0.0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        dims = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            if i < len(dims) - 2:
                layers.append(Activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
