"""Module / Parameter abstractions mirroring the torch.nn.Module contract.

Modules own named :class:`Parameter` leaves and child modules; they provide
recursive parameter iteration, train/eval mode switching (which drives
dropout, and therefore MC-Dropout), and state-dict (de)serialization.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always a leaf requiring gradients.

    ``trainable`` is the parameter-efficient-tuning switch: a frozen
    parameter (``trainable=False``) still participates in the forward and
    backward passes (upstream gradients must flow *through* a frozen
    backbone to reach soft prompts / adapters), but optimizers exclude it
    from their flat buffer entirely -- no optimizer state, no fused
    update, its data never moves.
    """

    def __init__(self, data, name: str = "", trainable: bool = True) -> None:
        super().__init__(data, requires_grad=trainable, name=name)
        self.trainable = trainable

    def freeze_(self) -> "Parameter":
        """Freeze in place: no optimizer state, no gradient accumulation.

        Gradients still flow *through* ops that consume this parameter
        whenever another input is trainable (graph recording keys off any
        grad-requiring input), so prompts/adapters downstream of a frozen
        backbone train normally -- only the dead-end accumulation into
        this leaf is skipped.
        """
        self.trainable = False
        self.requires_grad = False
        self.grad = None
        return self

    def unfreeze_(self) -> "Parameter":
        self.trainable = True
        self.requires_grad = True
        return self


class Module:
    """Base class for neural-network building blocks."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute plumbing: assigning a Parameter or Module registers it.
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def named_trainable_parameters(self, prefix: str = ""
                                   ) -> Iterator[Tuple[str, Parameter]]:
        for name, param in self.named_parameters(prefix=prefix):
            if getattr(param, "trainable", True):
                yield (name, param)

    def trainable_parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_trainable_parameters():
            yield param

    def num_trainable_parameters(self) -> int:
        return sum(p.size for p in self.trainable_parameters())

    def freeze(self) -> "Module":
        """Freeze every parameter (recursively); see :meth:`Parameter.freeze_`."""
        for param in self.parameters():
            param.freeze_()
        return self

    def unfreeze(self) -> "Module":
        """Mark every parameter (recursively) trainable again."""
        for param in self.parameters():
            param.unfreeze_()
        return self

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            if name not in own:
                continue
            param = own[name]
            if param.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: have {param.data.shape}, got {values.shape}"
                )
            from .tensor import get_default_dtype

            param.data = np.asarray(values, dtype=get_default_dtype()).copy()

    def clone(self) -> "Module":
        """Deep-copy this module's parameters into a fresh instance graph."""
        import copy

        twin = copy.deepcopy(self)
        for param in twin.parameters():
            param.grad = None
        return twin

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
