"""Optimizers: SGD, Adam, AdamW (the paper's optimizer), plus grad clipping."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with optional L2 regularization folded into the gradient."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimizer the paper uses for all LM tuning (Section 5.1).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 2e-5,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.decoupled_weight_decay * p.data
        super().step()


class LinearWarmupSchedule:
    """Linear warmup then linear decay of the learning rate."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            factor = self._step / self.warmup_steps
        else:
            remaining = max(self.total_steps - self._step, 0)
            denom = max(self.total_steps - self.warmup_steps, 1)
            factor = remaining / denom
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
