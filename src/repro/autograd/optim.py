"""Optimizers: SGD, Adam, AdamW (the paper's optimizer), plus grad clipping.

Flat-buffer design (the training fastpath's first pillar): every optimizer
copies its parameters into **one contiguous numpy buffer** at construction
and re-points each ``Parameter.data`` at a view of it. A step is then a
handful of fused elementwise operations over a single large array instead of
a Python loop over dozens of small ones -- the per-parameter interpreter
overhead that dominated the seed implementation on models with many small
tensors disappears, while the update math stays elementwise-identical.

Semantics preserved from the looped seed implementation:

* parameters whose ``grad`` is ``None`` at step time are skipped -- their
  data *and* their optimizer state (momentum / moments) stay untouched
  (a cached boolean element mask confines the fused update);
* ``Adam._step`` (and the bias correction built on it) advances once per
  ``step()`` call regardless of which parameters received gradients;
* code that assigns a fresh array to ``param.data`` (``load_state_dict``,
  a second optimizer adopting the same parameters) is detected on the next
  ``step`` and the views are re-adopted, so the buffer never goes stale;
* parameters frozen with ``Parameter.trainable = False`` are filtered out
  at construction: the flat buffer, optimizer state, and every fused
  update cover trainable slots only (the parameter-efficient-tuning
  fastpath -- tuning a KB-scale delta allocates KB-scale moments).

The flat layout also makes optimizer state trivially serializable:
``state_dict`` / ``load_state_dict`` round-trip the moment buffers as plain
arrays (see :func:`repro.autograd.serialization.save_checkpoint`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm.

    Vectorized: the norm is one dot product over the concatenated gradient
    vector (accumulated in float64) instead of a Python ``sum`` of
    per-parameter scalars. Parameters whose ``grad`` is ``None`` are
    skipped, exactly as the looped implementation skipped them.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    if len(grads) == 1:
        flat = grads[0].reshape(-1)
    else:
        flat = np.concatenate([g.reshape(-1) for g in grads])
    flat64 = flat.astype(np.float64, copy=False)
    total = float(np.sqrt(np.dot(flat64, flat64)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list, viewed as one flat buffer."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        supplied = list(parameters)
        if not supplied:
            raise ValueError("optimizer received no parameters")
        # PEFT contract: frozen parameters never enter the flat buffer --
        # no optimizer state is allocated for them and the fused update
        # cannot touch them.  With everything trainable (the default) the
        # filtered list is the supplied list and behavior is bit-identical
        # to the pre-flag optimizer.
        self.parameters: List[Parameter] = [
            p for p in supplied if getattr(p, "trainable", True)]
        if not self.parameters:
            raise ValueError(
                "optimizer received no trainable parameters "
                f"({len(supplied)} supplied, all frozen)")
        self._shapes = [p.data.shape for p in self.parameters]
        sizes = [int(p.data.size) for p in self.parameters]
        self._offsets = [0]
        for size in sizes:
            self._offsets.append(self._offsets[-1] + size)
        self._dtype = np.result_type(*(p.data.dtype for p in self.parameters))
        self._flat = np.empty(self._offsets[-1], dtype=self._dtype)
        self._grad = np.zeros(self._offsets[-1], dtype=self._dtype)
        self._views: List[np.ndarray] = [None] * len(self.parameters)
        self._mask_cache: Dict[Tuple[bool, ...], np.ndarray] = {}
        for i, p in enumerate(self.parameters):
            self._adopt(i, p)

    # ------------------------------------------------------------------
    # Flat-buffer bookkeeping
    # ------------------------------------------------------------------
    def _segment(self, i: int) -> slice:
        return slice(self._offsets[i], self._offsets[i + 1])

    def _adopt(self, i: int, param: Parameter) -> None:
        """Copy ``param.data`` into its flat segment and view it from there."""
        seg = self._flat[self._segment(i)]
        np.copyto(seg, param.data.reshape(-1), casting="same_kind")
        view = seg.reshape(self._shapes[i])
        self._views[i] = view
        param.data = view

    def _sync_views(self) -> None:
        """Re-adopt any parameter whose ``data`` was reassigned since the
        last step (e.g. by ``Module.load_state_dict``)."""
        for i, p in enumerate(self.parameters):
            if p.data is not self._views[i]:
                self._adopt(i, p)

    def flatten_grads(self, out: Optional[np.ndarray] = None
                      ) -> Tuple[bool, ...]:
        """Gather per-parameter gradients into one flat vector.

        Writes into ``out`` when given (e.g. a shared-memory gradient slot;
        must match ``flat_size``), else into the internal grad buffer.
        Absent gradients leave zeroed segments. Returns the per-parameter
        presence tuple, which :meth:`step_flat` accepts to reproduce the
        skip-missing-parameters semantics after an external reduction.
        """
        target = self._grad if out is None else out
        if target.shape != self._grad.shape:
            raise ValueError(f"flat gradient output has shape {target.shape},"
                             f" expected {self._grad.shape}")
        present = tuple(p.grad is not None for p in self.parameters)
        for i, p in enumerate(self.parameters):
            seg = target[self._segment(i)]
            if p.grad is None:
                seg[:] = 0.0
            else:
                np.copyto(seg, p.grad.reshape(-1), casting="same_kind")
        return present

    def _present_mask(self, present: Tuple[bool, ...]
                      ) -> Optional[np.ndarray]:
        """Element mask for a presence tuple (``None`` = all present)."""
        if all(present):
            return None
        mask = self._mask_cache.get(present)
        if mask is None:
            mask = np.zeros(len(self._grad), dtype=bool)
            for i, has_grad in enumerate(present):
                if has_grad:
                    mask[self._segment(i)] = True
            self._mask_cache[present] = mask
        return mask

    def _gather(self) -> Optional[np.ndarray]:
        """Fill the flat grad buffer; returns the element mask of parameters
        that have a gradient, or ``None`` when every parameter does."""
        return self._present_mask(self.flatten_grads())

    def _clip_flat(self, max_norm: float) -> float:
        """Global-norm clip over the gathered flat gradient buffer.

        Absent gradients occupy zeroed segments, so they contribute nothing
        to the norm -- the same total the standalone :func:`clip_grad_norm`
        computes by skipping them.
        """
        grad64 = self._grad.astype(np.float64, copy=False)
        total = float(np.sqrt(np.dot(grad64, grad64)))
        if total > max_norm and total > 0:
            self._grad *= max_norm / total
        return total

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self, grad_clip: Optional[float] = None) -> Optional[float]:
        """Apply one fused update over the flat buffer.

        ``grad_clip`` folds global-norm gradient clipping into the step
        (one norm over the already-gathered flat gradient instead of a
        separate pass over the parameter list); the pre-clip norm is
        returned when clipping was requested. Note the per-parameter
        ``grad`` arrays are consumed as-is and left unscaled -- the clip
        applies to the flat copy the update actually reads.
        """
        self._sync_views()
        mask = self._gather()
        norm = None
        if grad_clip is not None:
            norm = self._clip_flat(grad_clip)
        self._update(mask)
        return norm

    def _update(self, mask: Optional[np.ndarray]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Flat-buffer parallel API (see repro.parallel)
    # ------------------------------------------------------------------
    @property
    def flat_size(self) -> int:
        """Total element count of the flat parameter buffer."""
        return len(self._flat)

    @property
    def flat_dtype(self) -> np.dtype:
        """dtype of the flat parameter buffer."""
        return self._dtype

    @property
    def flat_data(self) -> np.ndarray:
        """The live flat parameter vector (views re-synced first).

        This is the buffer itself, not a copy: read it to publish a
        snapshot, never mutate it directly.
        """
        self._sync_views()
        return self._flat

    def load_flat(self, values: np.ndarray) -> None:
        """Overwrite every parameter from a flat vector.

        Workers use this to adopt a published parameter snapshot without
        touching per-parameter arrays; all module views update for free
        since they alias the flat buffer.
        """
        values = np.asarray(values)
        if values.shape != self._flat.shape:
            raise ValueError(f"flat parameter vector has shape "
                             f"{values.shape}, expected {self._flat.shape}")
        self._sync_views()
        np.copyto(self._flat, values, casting="same_kind")

    def step_flat(self, flat_grad: np.ndarray,
                  grad_clip: Optional[float] = None,
                  present: Optional[Tuple[bool, ...]] = None
                  ) -> Optional[float]:
        """Apply one update from an externally reduced flat gradient.

        The data-parallel trainer sums per-shard gradients (gathered with
        :meth:`flatten_grads`) into one vector and hands it here; the math
        from this point on is exactly :meth:`step`'s -- same clip, same
        fused update, same skip-missing semantics via ``present`` (the
        element-wise OR of the shards' presence tuples).
        """
        self._sync_views()
        if flat_grad is not self._grad:
            if flat_grad.shape != self._grad.shape:
                raise ValueError(f"flat gradient has shape {flat_grad.shape},"
                                 f" expected {self._grad.shape}")
            np.copyto(self._grad, flat_grad, casting="same_kind")
        mask = None if present is None else self._present_mask(tuple(present))
        norm = None
        if grad_clip is not None:
            norm = self._clip_flat(grad_clip)
        self._update(mask)
        return norm

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat optimizer state as plain arrays/scalars (npz-serializable)."""
        self._sync_views()
        state: Dict[str, np.ndarray] = {"flat_size": np.int64(len(self._flat)),
                                        "lr": np.float64(self.lr)}
        state.update(self._state())
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` into this optimizer."""
        if int(state["flat_size"]) != len(self._flat):
            raise ValueError(
                f"optimizer state holds {int(state['flat_size'])} elements, "
                f"this optimizer has {len(self._flat)}")
        self.lr = float(state["lr"])
        self._load_state(state)

    def _state(self) -> Dict[str, np.ndarray]:
        return {}

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        pass

    @staticmethod
    def _restore(buffer: np.ndarray, value: np.ndarray, name: str) -> None:
        value = np.asarray(value)
        if value.shape != buffer.shape:
            raise ValueError(f"optimizer state {name!r} has shape "
                             f"{value.shape}, expected {buffer.shape}")
        np.copyto(buffer, value, casting="same_kind")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = np.zeros_like(self._flat)

    def _update(self, mask: Optional[np.ndarray]) -> None:
        grad, flat, velocity = self._grad, self._flat, self._velocity
        if self.weight_decay:
            grad += self.weight_decay * flat
        if self.momentum:
            if mask is None:
                velocity *= self.momentum
                velocity += grad
                flat -= self.lr * velocity
            else:
                np.copyto(velocity, self.momentum * velocity + grad, where=mask)
                np.subtract(flat, self.lr * velocity, out=flat, where=mask)
        else:
            if mask is None:
                flat -= self.lr * grad
            else:
                np.subtract(flat, self.lr * grad, out=flat, where=mask)

    def _state(self) -> Dict[str, np.ndarray]:
        return {"velocity": self._velocity.copy()}

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        self._restore(self._velocity, state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam with optional L2 regularization folded into the gradient."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = np.zeros_like(self._flat)
        self._v = np.zeros_like(self._flat)

    def _update(self, mask: Optional[np.ndarray]) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        grad, flat, m, v = self._grad, self._flat, self._m, self._v
        if self.weight_decay:
            grad += self.weight_decay * flat
        if mask is None:
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            flat -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
        else:
            np.copyto(m, self.beta1 * m + (1 - self.beta1) * grad, where=mask)
            np.copyto(v, self.beta2 * v + (1 - self.beta2) * grad ** 2,
                      where=mask)
            update = self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            np.subtract(flat, update, out=flat, where=mask)

    def _state(self) -> Dict[str, np.ndarray]:
        return {"step": np.int64(self._step),
                "m": self._m.copy(), "v": self._v.copy()}

    def _load_state(self, state: Dict[str, np.ndarray]) -> None:
        self._step = int(state["step"])
        self._restore(self._m, state["m"], "m")
        self._restore(self._v, state["v"], "v")


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimizer the paper uses for all LM tuning (Section 5.1).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 2e-5,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def _update(self, mask: Optional[np.ndarray]) -> None:
        if self.decoupled_weight_decay:
            flat = self._flat
            decay = self.lr * self.decoupled_weight_decay * flat
            if mask is None:
                flat -= decay
            else:
                np.subtract(flat, decay, out=flat, where=mask)
        super()._update(mask)


class LinearWarmupSchedule:
    """Linear warmup then linear decay of the learning rate."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            factor = self._step / self.warmup_steps
        else:
            remaining = max(self.total_steps - self._step, 0)
            denom = max(self.total_steps - self.warmup_steps, 1)
            factor = remaining / denom
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
