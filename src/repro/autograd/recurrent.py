"""Recurrent layers: LSTM and BiLSTM.

The paper uses a BiLSTM in two places: P-tuning's continuous prompt encoder
(Section 3.1) and the DeepMatcher baseline's attribute aggregator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate, stack


class LSTMCell(Module):
    """A single LSTM step: gates computed from [x_t, h_{t-1}]."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs:1 * hs].sigmoid()
        f = gates[:, 1 * hs:2 * hs].sigmoid()
        g = gates[:, 2 * hs:3 * hs].tanh()
        o = gates[:, 3 * hs:4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class LSTM(Module):
    """Unidirectional single-layer LSTM over (batch, seq, input) tensors."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None,
                 reverse: bool = False) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.reverse = reverse

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        steps = range(seq - 1, -1, -1) if self.reverse else range(seq)
        outputs: list[Tensor] = [None] * seq  # type: ignore[list-item]
        for t in steps:
            h, c = self.cell(x[:, t, :], (h, c))
            outputs[t] = h
        return stack(outputs, axis=1)  # (batch, seq, hidden)


class BiLSTM(Module):
    """Bidirectional LSTM; concatenates forward and backward hidden states."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.forward_lstm = LSTM(input_size, hidden_size, rng=rng, reverse=False)
        self.backward_lstm = LSTM(input_size, hidden_size, rng=rng, reverse=True)
        self.output_size = 2 * hidden_size

    def forward(self, x: Tensor) -> Tensor:
        fwd = self.forward_lstm(x)
        bwd = self.backward_lstm(x)
        return concatenate([fwd, bwd], axis=-1)  # (batch, seq, 2*hidden)
