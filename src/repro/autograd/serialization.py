"""Checkpoint save/load for modules and optimizer state (npz-based)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]

#: npz key namespace for flat optimizer state (see ``Optimizer.state_dict``)
_OPTIM_PREFIX = "__optim__."


def save_checkpoint(module: Module, path: PathLike,
                    metadata: Optional[Dict[str, Any]] = None,
                    optimizer: Optional[Any] = None) -> None:
    """Persist a module's state dict (and optional JSON metadata) to ``path``.

    Passing ``optimizer`` also stores its flat state (moment buffers, step
    counter, learning rate) under a reserved key prefix, so an interrupted
    training run can resume with bit-identical dynamics.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = dict(state)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    if optimizer is not None:
        for key, value in optimizer.state_dict().items():
            payload[_OPTIM_PREFIX + key] = np.asarray(value)
    np.savez_compressed(path, **payload)


def load_checkpoint(module: Module, path: PathLike, strict: bool = True,
                    optimizer: Optional[Any] = None) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    Passing ``optimizer`` restores its flat state too (the checkpoint must
    have been written with one). The module's parameters are loaded first,
    so the optimizer re-adopts the fresh arrays on its next step.
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata: Dict[str, Any] = {}
        state: Dict[str, np.ndarray] = {}
        optim_state: Dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            elif key.startswith(_OPTIM_PREFIX):
                optim_state[key[len(_OPTIM_PREFIX):]] = archive[key]
            else:
                state[key] = archive[key]
    module.load_state_dict(state, strict=strict)
    if optimizer is not None:
        if not optim_state:
            raise ValueError(f"checkpoint {path} holds no optimizer state")
        optimizer.load_state_dict(optim_state)
    return metadata
