"""Checkpoint save/load for modules (npz-based)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_checkpoint(module: Module, path: PathLike,
                    metadata: Optional[Dict[str, Any]] = None) -> None:
    """Persist a module's state dict (and optional JSON metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = dict(state)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    np.savez_compressed(path, **payload)


def load_checkpoint(module: Module, path: PathLike, strict: bool = True) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    with np.load(path) as archive:
        metadata: Dict[str, Any] = {}
        state: Dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    module.load_state_dict(state, strict=strict)
    return metadata
