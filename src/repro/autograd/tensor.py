"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the reproduction: the paper's stack is
PyTorch, which is unavailable offline, so we implement the subset of a
tensor library that the PromptEM pipeline needs -- broadcasting arithmetic,
matrix multiplication, reductions, indexing, and the graph bookkeeping
required to backpropagate through all of them.

The design follows the classic tape-free approach: every ``Tensor`` produced
by an operation stores its parent tensors and a closure that accumulates
gradients into those parents. ``Tensor.backward`` topologically sorts the
graph and runs the closures in reverse order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_grad_enabled = True

#: Global float dtype for tensors created from Python / integer data.
#: float32 is the production default (about 2x faster on BLAS-bound work);
#: gradient-checking tests switch to float64 for numeric stability.
_default_dtype = np.float32


def set_default_dtype(dtype) -> None:
    """Set the dtype used when constructing new tensors (float32/float64)."""
    global _default_dtype
    if dtype not in (np.float32, np.float64):
        raise ValueError("default dtype must be np.float32 or np.float64")
    _default_dtype = dtype


def get_default_dtype():
    return _default_dtype


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd graph."""
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    dtype = dtype if dtype is not None else _default_dtype
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size one.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev if self.requires_grad else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[["Tensor"], None],
    ) -> "Tensor":
        """Build a result tensor; ``backward`` receives the result tensor."""
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad).reshape(self.data.shape)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(-out.grad)

        return self._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = grad.reshape(*grad.shape[:-1], 1, grad.shape[-1]) if grad.ndim else grad
                self._accumulate(np.squeeze(grad2 @ np.swapaxes(b, -1, -2), axis=-2))
                other._accumulate(_unbroadcast(np.swapaxes(a2, -1, -2) @ grad2, b.shape))
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = grad[..., None]
                self._accumulate(grad2 @ b2.T)
                other._accumulate(
                    _unbroadcast(np.swapaxes(a, -1, -2) @ grad2, b2.shape).reshape(b.shape)
                )
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value)

        return self._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / value)

        return self._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - value ** 2))

        return self._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = list(out.grad.shape)
                for a in sorted(axes):
                    shape.insert(a, 1)
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make(value, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is None:
                mask = self.data == value
                self._accumulate(grad * mask / mask.sum())
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g / counts)

        return self._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        return self._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(out: Tensor) -> None:
        for i, tensor in enumerate(tensors):
            index = [slice(None)] * out.grad.ndim
            index[axis] = i
            tensor._accumulate(out.grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def gather_rows(x: Tensor, rows: np.ndarray, cols: np.ndarray) -> Tensor:
    """Gather ``x[rows[k], cols[k]]`` for distinct (row, col) pairs.

    Equivalent to ``x[(rows, cols)]`` but with a direct-assignment backward
    instead of ``np.add.at`` scatter-add, which is an order of magnitude
    slower. Only valid when every (row, col) pair is selected at most once —
    true for masked-position gathers, where each sequence position is
    either masked or not.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)

    def backward(out: Tensor) -> None:
        grad = np.zeros_like(x.data)
        grad[rows, cols] = out.grad
        x._accumulate(grad)

    return Tensor._make(x.data[rows, cols], (x,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select from ``a`` where condition else ``b``."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    condition = np.asarray(condition, dtype=bool)

    def backward(out: Tensor) -> None:
        a._accumulate(out.grad * condition)
        b._accumulate(out.grad * (~condition))

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)
