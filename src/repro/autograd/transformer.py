"""Transformer encoder stack (post-norm, BERT-style)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .attention import MultiHeadAttention
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor


class FeedForward(Module):
    """Position-wise feed-forward block with GELU."""

    def __init__(self, d_model: int, d_ff: int,
                 rng: Optional[np.random.Generator] = None,
                 dropout: float = 0.1) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(F.gelu(self.fc1(x))))


class TransformerEncoderLayer(Module):
    """Self-attention + FFN with residual connections and post-layer-norm."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 rng: Optional[np.random.Generator] = None,
                 dropout: float = 0.1, matched_heads: int = 0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attention = MultiHeadAttention(d_model, num_heads, rng=rng, dropout=dropout,
                                            matched_heads=matched_heads)
        self.ffn = FeedForward(d_model, d_ff, rng=rng, dropout=dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        # Optional PEFT bottleneck adapters (repro.core.peft) hang off the
        # layer as ``adapter_attn``/``adapter_ffn``; absent attributes keep
        # this the exact pre-PEFT graph.
        attn_out = self.dropout(self.attention(x, pad_mask=pad_mask))
        adapter = getattr(self, "adapter_attn", None)
        if adapter is not None:
            attn_out = adapter(attn_out)
        x = self.norm1(x + attn_out)
        ffn_out = self.ffn(x)
        adapter = getattr(self, "adapter_ffn", None)
        if adapter is not None:
            ffn_out = adapter(ffn_out)
        x = self.norm2(x + ffn_out)
        return x


class TransformerEncoder(Module):
    """A stack of encoder layers."""

    def __init__(self, num_layers: int, d_model: int, num_heads: int, d_ff: int,
                 rng: Optional[np.random.Generator] = None,
                 dropout: float = 0.1, matched_heads: int = 0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_layers = num_layers
        self.layers = []
        for i in range(num_layers):
            layer = TransformerEncoderLayer(d_model, num_heads, d_ff, rng=rng, dropout=dropout,
                                            matched_heads=matched_heads)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, pad_mask=pad_mask)
        return x
