"""The eight baseline matchers evaluated against PromptEM."""

from .augment import ALL_OPERATORS, Augmenter
from .base import Matcher
from .bert_ft import BertMatcher
from .dader import SOURCE_FOR, Dader
from .deepmatcher import DeepMatcher
from .ditto import Ditto, inject_domain_knowledge
from .registry import BASELINE_NAMES, make_baseline
from .rotom import Rotom
from .sentencebert import SentenceBert
from .tdmatch import TDmatch, TDmatchConfig, TDmatchEmbedder, TDmatchStar

__all__ = [
    "Matcher",
    "DeepMatcher", "BertMatcher", "SentenceBert", "Ditto", "Rotom", "Dader",
    "TDmatch", "TDmatchStar", "TDmatchConfig", "TDmatchEmbedder",
    "Augmenter", "ALL_OPERATORS", "inject_domain_knowledge", "SOURCE_FOR",
    "BASELINE_NAMES", "make_baseline",
]
