"""Data-augmentation operators for serialized entity pairs (Ditto / Rotom).

Ditto's DA suite operates on the serialized sequence: span deletion, span
shuffling, attribute deletion, attribute shuffling, and whole-entry swap.
Rotom composes the same operator pool and learns which augmented examples
to trust.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

_ATTR_RE = re.compile(r"\[COL\] .*?(?=\[COL\]|$)")

PairAug = Callable[[np.random.Generator, str, str], Tuple[str, str]]


def _split_attrs(text: str) -> List[str]:
    """Split a serialized entity into its [COL]-delimited attribute chunks."""
    chunks = [m.group(0).strip() for m in _ATTR_RE.finditer(text)]
    return chunks if chunks else [text]


def del_span(rng: np.random.Generator, left: str, right: str,
             max_span: int = 4) -> Tuple[str, str]:
    """Delete a short random token span from one side."""
    side = int(rng.integers(2))
    texts = [left, right]
    words = texts[side].split()
    if len(words) > max_span + 1:
        start = int(rng.integers(len(words) - max_span))
        length = int(rng.integers(1, max_span + 1))
        del words[start:start + length]
        texts[side] = " ".join(words)
    return texts[0], texts[1]


def shuffle_span(rng: np.random.Generator, left: str, right: str,
                 span: int = 4) -> Tuple[str, str]:
    """Shuffle the tokens inside a short random span of one side."""
    side = int(rng.integers(2))
    texts = [left, right]
    words = texts[side].split()
    if len(words) > span:
        start = int(rng.integers(len(words) - span))
        segment = words[start:start + span]
        rng.shuffle(segment)
        words[start:start + span] = segment
        texts[side] = " ".join(words)
    return texts[0], texts[1]


def del_attr(rng: np.random.Generator, left: str, right: str) -> Tuple[str, str]:
    """Drop one whole attribute ([COL]...[VAL]... chunk) from one side."""
    side = int(rng.integers(2))
    texts = [left, right]
    attrs = _split_attrs(texts[side])
    if len(attrs) > 1:
        del attrs[int(rng.integers(len(attrs)))]
        texts[side] = " ".join(attrs)
    return texts[0], texts[1]


def shuffle_attrs(rng: np.random.Generator, left: str, right: str) -> Tuple[str, str]:
    """Permute attribute order of one side (order should not matter)."""
    side = int(rng.integers(2))
    texts = [left, right]
    attrs = _split_attrs(texts[side])
    rng.shuffle(attrs)
    texts[side] = " ".join(attrs)
    return texts[0], texts[1]


def swap_entities(rng: np.random.Generator, left: str, right: str) -> Tuple[str, str]:
    """Swap the two entries (matching is symmetric)."""
    return right, left


ALL_OPERATORS: Tuple[PairAug, ...] = (
    del_span, shuffle_span, del_attr, shuffle_attrs, swap_entities,
)


class Augmenter:
    """Applies a random operator from a pool, with probability ``p``."""

    def __init__(self, operators: Sequence[PairAug] = ALL_OPERATORS,
                 p: float = 0.5, seed: int = 0) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.operators = list(operators)
        self.p = p
        self.rng = np.random.default_rng(seed)

    def __call__(self, left: str, right: str) -> Tuple[str, str]:
        if self.rng.random() >= self.p:
            return left, right
        op = self.operators[int(self.rng.integers(len(self.operators)))]
        return op(self.rng, left, right)
