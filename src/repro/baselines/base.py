"""Common matcher interface implemented by every baseline and by PromptEM."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..data.dataset import CandidatePair, LowResourceView
from ..eval.metrics import PRF


class Matcher(ABC):
    """fit / predict / evaluate over candidate pairs."""

    #: human-readable method name used in benchmark tables
    name: str = "matcher"

    @abstractmethod
    def fit(self, view: LowResourceView) -> "Matcher":
        """Train on a low-resource view."""

    @abstractmethod
    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        """Hard 0/1 match decisions."""

    def evaluate(self, pairs: Sequence[CandidatePair]) -> PRF:
        truth = np.array([p.label for p in pairs], dtype=np.int64)
        return PRF.from_labels(truth, self.predict(pairs))

    def memory_bytes(self) -> int:
        """Deterministic training-memory estimate (Table 4's memory column).

        Default: every Module attribute's parameters, times four (weights +
        gradients + two AdamW moments), in float32. Matchers with other
        dominant structures (TDmatch's dense co-occurrence matrix) override.
        """
        from ..autograd import Module

        total_params = 0
        for value in vars(self).values():
            if isinstance(value, Module):
                total_params += value.num_parameters()
        return total_params * 4 * 4
