"""BERT baseline: vanilla fine-tuning for sequence-pair classification.

Exactly paper Section 2.3: serialize, [CLS]-pool, train a fresh softmax
head. The contrast with PromptEM isolates the objective-form gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.finetune import SequenceClassifier
from ..core.trainer import Trainer, TrainerConfig, predict as predict_fn
from ..data.dataset import CandidatePair, LowResourceView
from ..lm.model import MiniLM
from ..text import Tokenizer
from .base import Matcher
from .lm_common import BackboneMixin


class BertMatcher(BackboneMixin, Matcher):
    """Fine-tuned LM classifier."""

    name = "BERT"

    def __init__(self, epochs: int = 20, lr: float = 1e-3,
                 batch_size: int = 16, max_len: int = 96,
                 model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 seed: int = 0) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.seed = seed
        self.model: Optional[SequenceClassifier] = None

    def _make_model(self) -> SequenceClassifier:
        lm, tokenizer = self.backbone()
        return SequenceClassifier(lm, tokenizer, max_len=self.max_len,
                                  seed=self.seed)

    def fit(self, view: LowResourceView) -> "BertMatcher":
        self.model = self._make_model()
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size,
                          engine=self.engine())
