"""DADER [Tu et al., SIGMOD 2022]: domain adaptation for entity resolution.

DADER trains on a labeled *source* dataset and adapts the feature space to
the target. We reproduce the feature-alignment family (the paper uses
InvGAN+KD): a shared encoder is trained on source labels plus the target's
few labels, with an MMD feature-alignment penalty pulling source and target
pooled representations together. Source datasets are picked from a similar
domain, exactly as the paper's Appendix D prescribes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import AdamW, Tensor, clip_grad_norm, functional as F
from ..core.finetune import SequenceClassifier
from ..core.trainer import TrainerConfig, evaluate_f1, predict as predict_fn
from ..data.dataset import CandidatePair, LowResourceView
from ..data.generators.registry import load_dataset
from ..lm.model import MiniLM
from ..text import Tokenizer
from .base import Matcher
from .lm_common import BackboneMixin

#: Source dataset per target (similar domains, per paper Appendix D).
SOURCE_FOR = {
    "REL-HETER": "GEO-HETER",       # both venue/POI-like relational data
    "SEMI-HOMO": "REL-TEXT",        # both citation domain
    "SEMI-HETER": "SEMI-REL",       # book vs movie metadata
    "SEMI-REL": "SEMI-HETER",
    "SEMI-TEXT-w": "SEMI-TEXT-c",   # both product domain
    "SEMI-TEXT-c": "SEMI-TEXT-w",
    "REL-TEXT": "SEMI-HOMO",
    "GEO-HETER": "REL-HETER",
}


def mmd_penalty(source_feats: Tensor, target_feats: Tensor) -> Tensor:
    """Linear-kernel maximum mean discrepancy between feature batches."""
    diff = source_feats.mean(axis=0) - target_feats.mean(axis=0)
    return (diff * diff).sum()


class Dader(BackboneMixin, Matcher):
    """Domain-adaptation baseline with MMD feature alignment."""

    name = "DADER"

    def __init__(self, epochs: int = 12, lr: float = 1e-3,
                 batch_size: int = 16, max_len: int = 96,
                 mmd_weight: float = 0.5, source_cap: int = 96,
                 source_name: Optional[str] = None,
                 model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 seed: int = 0) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.mmd_weight = mmd_weight
        self.source_cap = source_cap
        self.source_name = source_name
        self.seed = seed
        self.model: Optional[SequenceClassifier] = None

    def _source_pairs(self, target_name: str) -> List[CandidatePair]:
        name = self.source_name or SOURCE_FOR.get(target_name)
        if name is None:
            raise KeyError(f"no source dataset configured for {target_name!r}")
        source = load_dataset(name)
        pairs = list(source.train)
        if len(pairs) > self.source_cap:
            rng = np.random.default_rng(self.seed)
            keep = rng.choice(len(pairs), size=self.source_cap, replace=False)
            pairs = [pairs[i] for i in sorted(keep)]
        return pairs

    def _pooled(self, model: SequenceClassifier,
                pairs: Sequence[CandidatePair]) -> Tensor:
        ids, pad_mask = model._encode_batch(pairs)
        return model.lm.pooled(model.lm.encode(ids, pad_mask=pad_mask))

    def fit(self, view: LowResourceView) -> "Dader":
        lm, tokenizer = self.backbone()
        self.model = SequenceClassifier(lm, tokenizer, max_len=self.max_len,
                                        seed=self.seed)
        source = self._source_pairs(view.name)
        target_labeled = list(view.labeled)
        # Unlabeled target pairs drive alignment without their labels.
        target_pool = target_labeled + list(view.unlabeled)

        rng = np.random.default_rng(self.seed)
        optimizer = AdamW(self.model.parameters(), lr=self.lr,
                          weight_decay=0.01)
        best_f1, best_state = -1.0, None

        for epoch in range(self.epochs):
            order = rng.permutation(len(source))
            self.model.train()
            for start in range(0, len(order), self.batch_size):
                batch = [source[i] for i in order[start:start + self.batch_size]]
                labels = np.array([p.label for p in batch])
                loss = self.model.loss(batch, labels)

                # A matching batch of target labels joins the objective.
                t_idx = rng.choice(len(target_labeled),
                                   size=min(len(batch), len(target_labeled)),
                                   replace=False)
                t_batch = [target_labeled[i] for i in t_idx]
                t_labels = np.array([p.label for p in t_batch])
                loss = loss + self.model.loss(t_batch, t_labels)

                # Feature alignment between the domains.
                a_idx = rng.choice(len(target_pool),
                                   size=min(len(batch), len(target_pool)),
                                   replace=False)
                align_batch = [target_pool[i] for i in a_idx]
                penalty = mmd_penalty(self._pooled(self.model, batch),
                                      self._pooled(self.model, align_batch))
                loss = loss + penalty * self.mmd_weight

                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), 1.0)
                optimizer.step()

            f1 = evaluate_f1(self.model, view.valid,
                             batch_size=self.batch_size)
            if f1 > best_f1:
                best_f1, best_state = f1, self.model.state_dict()

        if best_state is not None:
            self.model.load_state_dict(best_state)
        # Same validation-calibrated decision threshold the Trainer-based
        # methods get (honoured by predict()).
        from ..core.trainer import predict_proba, tune_threshold

        probs = predict_proba(self.model, view.valid,
                              batch_size=self.batch_size)
        truth = np.array([p.label for p in view.valid], dtype=np.int64)
        self.model.decision_threshold = tune_threshold(probs, truth)
        self.model.eval()
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size)
