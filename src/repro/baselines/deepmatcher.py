"""DeepMatcher [Mudgal et al., SIGMOD 2018], hybrid-model style.

Per paper Appendix D, GEM inputs are flattened to a single attribute whose
value is the concatenation of all attribute values; an RNN aggregates each
side, and an MLP classifies the comparison vector ``(u, v, |u-v|, u*v)``.
No pre-training is involved -- embeddings are learned from scratch on the
labeled pairs alone, which is why DeepMatcher collapses under low-resource
settings (Table 2's worst row).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autograd import (
    MLP, BiLSTM, Embedding, Module, Tensor, concatenate, functional as F,
)
from ..data.dataset import CandidatePair, LowResourceView
from ..data.records import EntityRecord
from ..data.serialize import serialize
from ..text.tokenizer import basic_tokenize
from ..text.vocab import Vocabulary
from .base import Matcher


def flatten_record(record: EntityRecord) -> str:
    """One-attribute flattening: all values, no [COL]/[VAL] structure."""
    tokens = [t for t in basic_tokenize(serialize(record))
              if t not in ("[COL]", "[VAL]")]
    return " ".join(tokens)


class _DeepMatcherNet(Module):
    """Embedding + BiLSTM aggregation + comparison MLP."""

    def __init__(self, vocab: Vocabulary, dim: int = 32, hidden: int = 32,
                 max_len: int = 48, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab = vocab
        self.max_len = max_len
        self.embedding = Embedding(len(vocab), dim, rng=rng, padding_idx=0)
        self.rnn = BiLSTM(dim, hidden, rng=rng)
        self.classifier = MLP(4 * self.rnn.output_size, [64], 2,
                              rng=rng, dropout=0.1)

    def _encode_side(self, texts: Sequence[str]) -> Tensor:
        ids = np.zeros((len(texts), self.max_len), dtype=np.int64)
        for i, text in enumerate(texts):
            seq = self.vocab.encode(basic_tokenize(text))[: self.max_len]
            ids[i, : len(seq)] = seq
        states = self.rnn(self.embedding(ids))       # (B, T, H)
        return states.mean(axis=1)                   # mean-pool aggregation

    def _compare(self, pairs: Sequence[CandidatePair]) -> Tensor:
        u = self._encode_side([flatten_record(p.left) for p in pairs])
        v = self._encode_side([flatten_record(p.right) for p in pairs])
        feats = concatenate([u, v, (u - v).abs(), u * v], axis=1)
        return self.classifier(feats)

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        return F.softmax(self._compare(pairs), axis=-1)

    def loss(self, pairs, labels, sample_weights=None) -> Tensor:
        return F.cross_entropy(self._compare(pairs),
                               np.asarray(labels, dtype=np.int64),
                               sample_weights=sample_weights)


class DeepMatcher(Matcher):
    """The from-scratch RNN baseline."""

    name = "DeepMatcher"

    def __init__(self, dim: int = 32, hidden: int = 32, epochs: int = 30,
                 lr: float = 2e-3, batch_size: int = 16, max_len: int = 48,
                 seed: int = 0) -> None:
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.seed = seed
        self.model: Optional[_DeepMatcherNet] = None

    def _build_vocab(self, pairs: Sequence[CandidatePair]) -> Vocabulary:
        vocab = Vocabulary()
        for pair in pairs:
            for record in (pair.left, pair.right):
                for token in basic_tokenize(flatten_record(record)):
                    vocab.add(token)
        return vocab

    def fit(self, view: LowResourceView) -> "DeepMatcher":
        from ..core.trainer import Trainer, TrainerConfig

        vocab = self._build_vocab(list(view.labeled) + list(view.valid))
        self.model = _DeepMatcherNet(vocab, dim=self.dim, hidden=self.hidden,
                                     max_len=self.max_len, seed=self.seed)
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        from ..core.trainer import predict as predict_fn

        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size)
