"""Ditto [Li et al., VLDB 2020]: fine-tuning + its three optimizations.

1. **Domain knowledge** -- value normalization and type tagging: numbers
   get a ``num`` type marker so the LM can at least see "this is a number
   of the same length" even when digit semantics elude it;
2. **TF-IDF summarization** -- long entries keep only high-TF-IDF tokens
   (shared with PromptEM via Appendix F);
3. **Data augmentation** -- the operator suite in :mod:`.augment` applied
   on-the-fly during training (MixDA's "apply one random op" scheme).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

import numpy as np

from ..core.finetune import SequenceClassifier
from ..core.trainer import Trainer, TrainerConfig, predict as predict_fn
from ..data.dataset import CandidatePair, LowResourceView
from ..data.serialize import serialize
from ..lm.model import MiniLM
from ..text import Tokenizer
from ..text.tfidf import TfIdfSummarizer
from .augment import Augmenter
from .base import Matcher
from .lm_common import BackboneMixin

_NUMBER_RE = re.compile(r"\b\d+\b")


def inject_domain_knowledge(text: str) -> str:
    """Tag standalone numbers with a ``num`` marker (Ditto's DK module)."""
    return _NUMBER_RE.sub(lambda m: f"num {m.group(0)}", text)


class _DittoClassifier(SequenceClassifier):
    """SequenceClassifier whose serialization adds DK tags."""

    def _texts(self, pair: CandidatePair) -> tuple:
        left = inject_domain_knowledge(
            serialize(pair.left, summarizer=self.summarizer))
        right = inject_domain_knowledge(
            serialize(pair.right, summarizer=self.summarizer))
        return left, right


class Ditto(BackboneMixin, Matcher):
    """The SOTA fine-tuning EM system."""

    name = "Ditto"

    def __init__(self, epochs: int = 20, lr: float = 1e-3,
                 batch_size: int = 16, max_len: int = 96,
                 summary_tokens: int = 48, augment_p: float = 0.5,
                 model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 seed: int = 0) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.summary_tokens = summary_tokens
        self.augment_p = augment_p
        self.seed = seed
        self.model: Optional[_DittoClassifier] = None

    def fit(self, view: LowResourceView) -> "Ditto":
        lm, tokenizer = self.backbone()
        texts: List[str] = []
        for pair in list(view.labeled) + list(view.valid):
            texts.append(serialize(pair.left))
            texts.append(serialize(pair.right))
        summarizer = TfIdfSummarizer(max_tokens=self.summary_tokens).fit(texts)
        self.model = _DittoClassifier(
            lm, tokenizer, max_len=self.max_len, summarizer=summarizer,
            seed=self.seed,
            augmenter=Augmenter(p=self.augment_p, seed=self.seed))
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size,
                          engine=self.engine())
