"""Shared plumbing for LM-backed baselines: pristine backbone copies and a
per-matcher batched inference engine."""

from __future__ import annotations

from typing import Optional, Tuple

from ..infer import EngineConfig, InferenceEngine
from ..lm import load_pretrained
from ..lm.model import MiniLM
from ..text import Tokenizer


class BackboneMixin:
    """Lazily loads the pre-trained LM and hands out fresh copies.

    Every baseline fine-tunes its *own* copy of the checkpoint, exactly as
    each paper baseline starts from the same pre-trained weights. The mixin
    also owns one :class:`InferenceEngine` per matcher so repeated
    ``predict`` calls share an encoding cache.
    """

    def __init__(self, model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 token_budget: int = 2048) -> None:
        if (lm is None) != (tokenizer is None):
            raise ValueError("provide both lm and tokenizer, or neither")
        self.model_name = model_name
        self.token_budget = token_budget
        self._lm = lm
        self._tokenizer = tokenizer
        self._pristine_state = None
        self._engine: Optional[InferenceEngine] = None

    def backbone(self) -> Tuple[MiniLM, Tokenizer]:
        """A fresh MiniLM initialized from the pre-trained checkpoint."""
        if self._lm is None:
            self._lm, self._tokenizer = load_pretrained(self.model_name)
        if self._pristine_state is None:
            self._pristine_state = self._lm.state_dict()
        fresh = MiniLM(self._lm.config)
        fresh.load_state_dict(self._pristine_state)
        return fresh, self._tokenizer

    def engine(self) -> InferenceEngine:
        """The matcher's shared batched inference engine (lazy)."""
        if self._engine is None:
            self._engine = InferenceEngine(
                EngineConfig(token_budget=self.token_budget))
        return self._engine
