"""Baseline registry: name -> factory, used by the benchmark harness."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Matcher
from .bert_ft import BertMatcher
from .dader import Dader
from .deepmatcher import DeepMatcher
from .ditto import Ditto
from .rotom import Rotom
from .sentencebert import SentenceBert
from .tdmatch import TDmatch, TDmatchStar

_FACTORIES: Dict[str, Callable[..., Matcher]] = {
    "DeepMatcher": DeepMatcher,
    "BERT": BertMatcher,
    "SentenceBERT": SentenceBert,
    "Ditto": Ditto,
    "DADER": Dader,
    "Rotom": Rotom,
    "TDmatch": TDmatch,
    "TDmatch*": TDmatchStar,
}

#: Row order used by the paper's tables.
BASELINE_NAMES: List[str] = list(_FACTORIES)


def make_baseline(name: str, **kwargs) -> Matcher:
    if name not in _FACTORIES:
        raise KeyError(f"unknown baseline {name!r}; available: {BASELINE_NAMES}")
    return _FACTORIES[name](**kwargs)
