"""Rotom [Miao et al., SIGMOD 2021]: meta-learned augmentation selection.

Rotom generates augmented examples with multiple operators and learns to
*select and weight* them so that only helpful augmentations influence
fine-tuning. We reproduce the selection mechanism with its practical core
(two-stage training, Table 4's "Rotom requires two-stage training" cost):

* stage 1 trains a seed model on the original labeled data;
* stage 2 generates K augmentations per example, weights each by the seed
  model's agreement with the original label (disagreeing augmentations get
  down-weighted toward zero -- the filter-and-weight role of Rotom's
  meta-learner), and trains the final model on the weighted union.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.finetune import SequenceClassifier
from ..core.trainer import (
    Trainer, TrainerConfig, predict as predict_fn, predict_proba,
)
from ..data.dataset import CandidatePair, LowResourceView
from ..data.records import EntityRecord
from ..data.serialize import serialize
from ..lm.model import MiniLM
from ..text import Tokenizer
from .augment import ALL_OPERATORS
from .base import Matcher
from .lm_common import BackboneMixin


def _as_text_pair(pair: CandidatePair) -> CandidatePair:
    """Freeze a pair's serialization into text records so augmented string
    variants can flow through the same classifier."""
    return CandidatePair(
        EntityRecord.text_record(pair.left.record_id, serialize(pair.left)),
        EntityRecord.text_record(pair.right.record_id, serialize(pair.right)),
        pair.label)


class Rotom(BackboneMixin, Matcher):
    """Meta-weighted augmentation baseline."""

    name = "Rotom"

    def __init__(self, epochs: int = 14, lr: float = 1e-3,
                 batch_size: int = 16, max_len: int = 96,
                 augmentations_per_example: int = 2,
                 agreement_floor: float = 0.1,
                 model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 seed: int = 0) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.augmentations_per_example = augmentations_per_example
        self.agreement_floor = agreement_floor
        self.seed = seed
        self.model: Optional[SequenceClassifier] = None

    def _make_model(self) -> SequenceClassifier:
        lm, tokenizer = self.backbone()
        return SequenceClassifier(lm, tokenizer, max_len=self.max_len,
                                  seed=self.seed)

    def _augment(self, pairs: Sequence[CandidatePair],
                 rng: np.random.Generator) -> List[CandidatePair]:
        out: List[CandidatePair] = []
        for pair in pairs:
            left, right = serialize(pair.left), serialize(pair.right)
            for k in range(self.augmentations_per_example):
                op = ALL_OPERATORS[int(rng.integers(len(ALL_OPERATORS)))]
                new_left, new_right = op(rng, left, right)
                out.append(CandidatePair(
                    EntityRecord.text_record(f"{pair.left.record_id}-aug{k}",
                                             new_left),
                    EntityRecord.text_record(f"{pair.right.record_id}-aug{k}",
                                             new_right),
                    pair.label))
        return out

    def fit(self, view: LowResourceView) -> "Rotom":
        rng = np.random.default_rng(self.seed)

        # Stage 1: seed model on the original data.
        seed_model = self._make_model()
        Trainer(seed_model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)

        # Stage 2: weight augmentations by seed-model agreement.
        originals = [_as_text_pair(p) for p in view.labeled]
        augmented = self._augment(view.labeled, rng)
        probs = predict_proba(seed_model, augmented,
                              batch_size=self.batch_size)
        labels = np.array([p.label for p in augmented])
        agreement = probs[np.arange(len(labels)), labels]
        weights = np.concatenate([
            np.ones(len(originals)),
            np.maximum(agreement, self.agreement_floor),
        ])

        self.model = self._make_model()
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed + 1)).fit(
            originals + augmented, valid=view.valid, sample_weights=weights)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, [_as_text_pair(p) for p in pairs],
                          batch_size=self.batch_size)
