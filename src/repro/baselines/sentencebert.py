"""SentenceBERT [Reimers & Gurevych 2019]: siamese bi-encoder baseline.

Each entity is encoded *independently* by the shared LM; the classifier
sees ``(u, v, |u - v|)``. Cheaper than a cross-encoder (Table 4's fastest
LM row) but blind to token-level interactions between the two entities.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Dropout, Linear, Module, Tensor, concatenate, functional as F
from ..core.trainer import Trainer, TrainerConfig, predict as predict_fn
from ..data.dataset import CandidatePair, LowResourceView
from ..data.serialize import serialize
from ..lm.model import MiniLM, pad_batch
from ..text import Tokenizer
from .base import Matcher
from .lm_common import BackboneMixin


class _SiameseNet(Module):
    def __init__(self, lm: MiniLM, tokenizer: Tokenizer, max_len: int,
                 seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.lm = lm
        self.tokenizer = tokenizer
        self.max_len = min(max_len, lm.config.max_len)
        self.head = Linear(3 * lm.config.d_model, 2, rng=rng)
        self.head_dropout = Dropout(0.1, rng=np.random.default_rng(seed + 1))

    def _embed(self, texts: Sequence[str]) -> Tensor:
        encodings = [self.tokenizer.encode(t, max_len=self.max_len).ids
                     for t in texts]
        ids, pad_mask = pad_batch(encodings, pad_id=self.tokenizer.vocab.pad_id)
        hidden = self.lm.encode(ids, pad_mask=pad_mask)
        # Mean pooling over non-pad tokens (the SBERT default).
        keep = (~pad_mask).astype(np.float64)[:, :, None]
        summed = (hidden * Tensor(keep)).sum(axis=1)
        counts = Tensor(np.maximum(keep.sum(axis=1), 1.0))
        return summed / counts

    def _logits(self, pairs: Sequence[CandidatePair]) -> Tensor:
        u = self._embed([serialize(p.left) for p in pairs])
        v = self._embed([serialize(p.right) for p in pairs])
        feats = concatenate([u, v, (u - v).abs()], axis=1)
        return self.head(self.head_dropout(feats))

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        return F.softmax(self._logits(pairs), axis=-1)

    def loss(self, pairs, labels, sample_weights=None) -> Tensor:
        return F.cross_entropy(self._logits(pairs),
                               np.asarray(labels, dtype=np.int64),
                               sample_weights=sample_weights)


class SentenceBert(BackboneMixin, Matcher):
    """Siamese bi-encoder matcher."""

    name = "SentenceBERT"

    def __init__(self, epochs: int = 20, lr: float = 1e-3,
                 batch_size: int = 16, max_len: int = 64,
                 model_name: str = "minilm-base",
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 seed: int = 0) -> None:
        BackboneMixin.__init__(self, model_name=model_name, lm=lm,
                               tokenizer=tokenizer)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_len = max_len
        self.seed = seed
        self.model: Optional[_SiameseNet] = None

    def fit(self, view: LowResourceView) -> "SentenceBert":
        lm, tokenizer = self.backbone()
        self.model = _SiameseNet(lm, tokenizer, max_len=self.max_len,
                                 seed=self.seed)
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size)
