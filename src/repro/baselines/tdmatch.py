"""TDmatch [Ahmadi et al., ICDE 2022]: unsupervised matching of data & text.

Pipeline (faithful to the original's structure):

1. **Graph creation** -- a bipartite graph between record nodes (both
   tables) and token nodes from their serialized content;
2. **Random walks** -- many fixed-length walks from every node produce
   co-occurrence statistics (this is the step whose cost explodes with
   table size: walks x length x nodes, plus a dense |V| x |V| co-occurrence
   matrix -- reproducing the paper's scalability complaint in Section 5.4);
3. **Embeddings** -- PPMI of the walk co-occurrences factorized with
   truncated SVD (the classic equivalence of skip-gram-style walk
   embeddings);
4. **Matching** -- unsupervised mutual-top-1 with a similarity margin.

``TDmatchStar`` adds the supervised MLP head of paper Appendix D, fed with
``(u, v, |u - v|, u * v)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.cluster.vq import kmeans2
from scipy.sparse.linalg import svds

from ..autograd import MLP, Module, Tensor, functional as F
from ..data.dataset import CandidatePair, LowResourceView
from ..data.records import EntityRecord
from ..data.serialize import serialize
from ..eval.metrics import PRF
from ..text.tokenizer import basic_tokenize
from .base import Matcher


@dataclass
class TDmatchConfig:
    """Walk / embedding hyperparameters (generous, like the original)."""

    num_walks: int = 20
    walk_length: int = 20
    window: int = 3
    dimensions: int = 48
    seed: int = 0
    #: mutual-top-1 similarity margin for the unsupervised decision
    margin: float = 0.05


def record_key(record: EntityRecord, side: str) -> str:
    return f"{side}::{record.record_id}"


class TDmatchEmbedder:
    """Graph construction + random walks + PPMI/SVD embeddings."""

    def __init__(self, config: Optional[TDmatchConfig] = None) -> None:
        self.config = config if config is not None else TDmatchConfig()
        self.embeddings: Dict[str, np.ndarray] = {}
        self.walk_steps = 0

    @staticmethod
    def _tokens(record: EntityRecord) -> List[str]:
        """Word tokens plus whole-cell value tokens.

        The original TDmatch graph links records to their attribute *values*
        as well as to words; whole-value nodes let exact identifiers (ISBNs,
        phone numbers, ids) connect matching records directly -- the source
        of TDmatch's advantage on digit-heavy data (paper Section 5.2).
        """
        tokens = [t for t in basic_tokenize(serialize(record))
                  if t not in ("[COL]", "[VAL]")]
        for value in record.flat_values():
            text = str(value).strip().lower()
            if text and len(text) > 2:
                tokens.append(f"val::{text}")
        return tokens

    #: extra edge weight for whole-value nodes: exact identifier matches
    #: (ISBN, phone) should pull matched records together much harder than
    #: a shared common word.
    VALUE_EDGE_WEIGHT = 4.0

    def build_graph(self, records: Sequence[Tuple[str, EntityRecord]]) -> nx.Graph:
        graph = nx.Graph()
        for key, record in records:
            graph.add_node(key, kind="record")
            for token in self._tokens(record):
                token_key = f"tok::{token}"
                weight = (self.VALUE_EDGE_WEIGHT if token.startswith("val::")
                          else 1.0)
                if not graph.has_node(token_key):
                    graph.add_node(token_key, kind="token")
                if graph.has_edge(key, token_key):
                    graph[key][token_key]["weight"] += weight
                else:
                    graph.add_edge(key, token_key, weight=weight)
        return graph

    def _walks(self, graph: nx.Graph, rng: np.random.Generator):
        nodes = list(graph.nodes)
        index = {n: i for i, n in enumerate(nodes)}
        # Edge-weighted transition distributions per node.
        neighbors = {}
        for node in nodes:
            nbrs = list(graph.neighbors(node))
            if nbrs:
                weights = np.array([graph[node][n]["weight"] for n in nbrs])
                neighbors[node] = (nbrs, np.cumsum(weights / weights.sum()))
            else:
                neighbors[node] = ([], None)
        walks = []
        for _ in range(self.config.num_walks):
            for start in nodes:
                walk = [start]
                current = start
                for _ in range(self.config.walk_length - 1):
                    nbrs, cumulative = neighbors[current]
                    if not nbrs:
                        break
                    current = nbrs[int(np.searchsorted(cumulative, rng.random()))]
                    walk.append(current)
                self.walk_steps += len(walk)
                walks.append([index[n] for n in walk])
        return nodes, walks

    def fit(self, records: Sequence[Tuple[str, EntityRecord]]) -> "TDmatchEmbedder":
        rng = np.random.default_rng(self.config.seed)
        graph = self.build_graph(records)
        nodes, walks = self._walks(graph, rng)
        n = len(nodes)

        # Dense co-occurrence within the walk window -- deliberately the
        # memory hog the original suffers from on large inputs.
        cooc = np.zeros((n, n), dtype=np.float64)
        w = self.config.window
        for walk in walks:
            for i, a in enumerate(walk):
                for j in range(max(0, i - w), min(len(walk), i + w + 1)):
                    if i != j:
                        cooc[a, walk[j]] += 1.0
        self.matrix_bytes = cooc.nbytes

        total = cooc.sum()
        if total == 0:
            raise ValueError("empty co-occurrence matrix; graph had no edges")
        row = cooc.sum(axis=1, keepdims=True)
        col = cooc.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log((cooc * total) / (row @ col))
        ppmi = np.where(np.isfinite(pmi) & (pmi > 0), pmi, 0.0)

        k = min(self.config.dimensions, n - 2)
        u, s, _ = svds(ppmi, k=k)
        vectors = u * np.sqrt(np.maximum(s, 0.0))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        vectors = vectors / np.maximum(norms, 1e-12)
        self.embeddings = {node: vectors[i] for i, node in enumerate(nodes)}
        return self

    def vector(self, record: EntityRecord, side: str) -> np.ndarray:
        return self.embeddings[record_key(record, side)]


def _collect_records(pairs: Sequence[CandidatePair]):
    """Unique (key, record) list over both sides of all pairs."""
    seen: Dict[str, EntityRecord] = {}
    for pair in pairs:
        seen.setdefault(record_key(pair.left, "L"), pair.left)
        seen.setdefault(record_key(pair.right, "R"), pair.right)
    return list(seen.items())


class TDmatch(Matcher):
    """Fully unsupervised matcher (ignores labels entirely)."""

    name = "TDmatch"

    def __init__(self, config: Optional[TDmatchConfig] = None) -> None:
        self.config = config if config is not None else TDmatchConfig()
        self.embedder: Optional[TDmatchEmbedder] = None
        self._pool: List[CandidatePair] = []

    def fit(self, view: LowResourceView) -> "TDmatch":
        # Unsupervised: embed every record reachable from any split. Labels
        # are never read.
        self._pool = (list(view.labeled) + list(view.unlabeled)
                      + list(view.valid) + list(view.test))
        self.embedder = TDmatchEmbedder(self.config).fit(
            _collect_records(self._pool))
        return self

    def _similarity(self, pair: CandidatePair) -> float:
        u = self.embedder.vector(pair.left, "L")
        v = self.embedder.vector(pair.right, "R")
        return float(u @ v)

    @staticmethod
    def _bimodal_threshold(sims: np.ndarray) -> float:
        """Unsupervised cutoff: midpoint of a 2-means split of the scores."""
        if len(sims) < 4 or np.allclose(sims, sims[0]):
            return float(np.median(sims))
        centroids, _ = kmeans2(sims.reshape(-1, 1).astype(np.float64), 2,
                               minit="points", seed=0)
        return float(centroids.mean())

    def memory_bytes(self) -> int:
        """Dominated by the dense co-occurrence matrix plus embeddings."""
        if self.embedder is None:
            return 0
        embed_bytes = sum(v.nbytes for v in self.embedder.embeddings.values())
        return int(getattr(self.embedder, "matrix_bytes", 0)) + embed_bytes

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        if self.embedder is None:
            raise RuntimeError("fit() first")
        # Mutual-top-1 within the candidate set plus a bimodal similarity
        # cutoff: a pair matches when each side is the other's best-scoring
        # partner (by a margin) and the similarity is in the high mode.
        sims = np.array([self._similarity(p) for p in pairs])
        cutoff = self._bimodal_threshold(sims)
        best_left: Dict[str, float] = {}
        best_right: Dict[str, float] = {}
        for sim, pair in zip(sims, pairs):
            lid, rid = pair.left.record_id, pair.right.record_id
            best_left[lid] = max(best_left.get(lid, -np.inf), sim)
            best_right[rid] = max(best_right.get(rid, -np.inf), sim)
        margin = self.config.margin
        preds = np.zeros(len(pairs), dtype=np.int64)
        for i, (sim, pair) in enumerate(zip(sims, pairs)):
            lid, rid = pair.left.record_id, pair.right.record_id
            mutual = (sim >= best_left[lid] - margin
                      and sim >= best_right[rid] - margin)
            if mutual and sim >= cutoff:
                preds[i] = 1
        return preds


class _PairMLP(Module):
    """MLP over (u, v, |u-v|, u*v) feature vectors."""

    def __init__(self, dim: int, seed: int = 0) -> None:
        super().__init__()
        self.mlp = MLP(4 * dim, [64], 2,
                       rng=np.random.default_rng(seed), dropout=0.1)
        self._features = None  # bound by TDmatchStar

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        feats = np.stack([self._features(p) for p in pairs])
        return F.softmax(self.mlp(Tensor(feats)), axis=-1)

    def loss(self, pairs, labels, sample_weights=None) -> Tensor:
        feats = np.stack([self._features(p) for p in pairs])
        logits = self.mlp(Tensor(feats))
        return F.cross_entropy(logits, np.asarray(labels, dtype=np.int64),
                               sample_weights=sample_weights)


class TDmatchStar(Matcher):
    """TDmatch* -- a supervised MLP over TDmatch embeddings (Appendix D)."""

    name = "TDmatch*"

    def __init__(self, config: Optional[TDmatchConfig] = None,
                 epochs: int = 60, lr: float = 5e-3, batch_size: int = 64,
                 seed: int = 0) -> None:
        self.config = config if config is not None else TDmatchConfig()
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.embedder: Optional[TDmatchEmbedder] = None
        self.model: Optional[_PairMLP] = None

    def _pair_features(self, pair: CandidatePair) -> np.ndarray:
        u = self.embedder.vector(pair.left, "L")
        v = self.embedder.vector(pair.right, "R")
        return np.concatenate([u, v, np.abs(u - v), u * v])

    def fit(self, view: LowResourceView) -> "TDmatchStar":
        from ..core.trainer import Trainer, TrainerConfig

        pool = (list(view.labeled) + list(view.unlabeled)
                + list(view.valid) + list(view.test))
        self.embedder = TDmatchEmbedder(self.config).fit(_collect_records(pool))
        self.model = _PairMLP(self.config.dimensions, seed=self.seed)
        self.model._features = self._pair_features
        Trainer(self.model, TrainerConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            seed=self.seed)).fit(view.labeled, valid=view.valid)
        return self

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        from ..core.trainer import predict as predict_fn

        if self.model is None:
            raise RuntimeError("fit() first")
        return predict_fn(self.model, pairs, batch_size=self.batch_size)

    def memory_bytes(self) -> int:
        """Co-occurrence matrix + embeddings + the MLP head."""
        total = 0
        if self.embedder is not None:
            total += int(getattr(self.embedder, "matrix_bytes", 0))
            total += sum(v.nbytes for v in self.embedder.embeddings.values())
        if self.model is not None:
            total += self.model.num_parameters() * 4 * 4
        return total
