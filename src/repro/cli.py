"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli datasets                   # list benchmarks + stats
    python -m repro.cli export REL-HETER out.json  # export a benchmark
    python -m repro.cli pretrain --model minilm-base
    python -m repro.cli run --dataset REL-HETER --method PromptEM
    python -m repro.cli run --dataset SEMI-HETER --method TDmatch --rate 0.1
    python -m repro.cli run --dataset REL-HETER --save-bundle bundle_dir
    python -m repro.cli serve --bundle bundle_dir --port 8080
    python -m repro.cli serve --bundle bundle_dir --requests req.jsonl
    python -m repro.cli tune --bundle bundle_dir --peft soft_prompt \
        --dataset REL-HETER --out tenants/rel-heter
    python -m repro.cli serve --bundle bundle_dir --tenants tenants
    python -m repro.cli bundle-info tenants/rel-heter
    python -m repro.cli serve --bundle bundle_dir --telemetry s.jsonl --trace
    python -m repro.cli obs-report s.jsonl
    python -m repro.cli clk-encode --catalog REL-HETER --salt-file key \
        --out clk_dir
    python -m repro.cli serve --bundle bundle_dir --blocker clk \
        --clk-catalog clk_dir

The ``repro`` console script (``[project.scripts]`` in pyproject.toml)
maps to :func:`main`, so ``repro serve ...`` works after installation.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import List, Optional


def _telemetry(args: argparse.Namespace):
    """A telemetry session for ``--telemetry``/``--trace``, else a no-op.

    ``--trace`` without ``--telemetry`` still collects spans in memory so
    the per-phase breakdown can be printed at the end.
    """
    from .obs import DISABLED, telemetry_session

    path = getattr(args, "telemetry", None)
    trace = bool(getattr(args, "trace", False))
    if path is None and not trace:
        return contextlib.nullcontext(DISABLED)
    return telemetry_session(path=path, trace=trace)


def _add_telemetry_flags(parser: argparse.ArgumentParser,
                         serving: bool = False) -> None:
    if serving:
        # same flags, same session semantics as run/pretrain -- only the
        # help text says what they mean for a serving process
        parser.add_argument(
            "--telemetry", metavar="PATH", default=None,
            help="write structured JSONL serving telemetry here (request "
                 "traces, drift events, metrics snapshots; render with "
                 "'repro obs-report PATH')")
        parser.add_argument(
            "--trace", action="store_true",
            help="trace requests end to end: admission -> queue -> batch "
                 "-> forward -> respond spans per request, stitched "
                 "across pool replicas")
        return
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="write structured JSONL run telemetry here")
    parser.add_argument("--trace", action="store_true",
                        help="record hierarchical spans and print a "
                             "per-phase time breakdown")


def _emit_serve_slo(tel, server) -> None:
    """Write the final per-tenant SLO snapshot as one ``serve.slo`` event
    so ``repro obs-report`` can render the SLO table from the log alone."""
    snapshot_fn = getattr(server, "slo_snapshot", None)
    if not getattr(tel, "enabled", False) or not callable(snapshot_fn):
        return
    slo = snapshot_fn().get("slo") or {}
    if slo.get("tenants"):
        tel.event("serve.slo", **slo)


def _print_trace_summary(tel) -> None:
    """Per-phase wall-time breakdown from the collected spans."""
    tracer = getattr(tel, "tracer", None)
    if tracer is None or not tracer.spans:
        return
    from .eval import render_table

    rows = [[("  " * rec["depth"]) + rec["name"],
             f"{rec['wall']:.3f}s", f"{rec['cpu']:.3f}s"]
            for rec in sorted(tracer.spans, key=lambda r: r["index"])]
    print(render_table(["Phase", "Wall", "CPU"], rows,
                       title="Per-phase time breakdown"))


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .data import DATASET_NAMES, load_dataset
    from .eval import render_table

    rows = []
    for name in DATASET_NAMES:
        s = load_dataset(name).statistics()
        rows.append([s.name, s.domain, s.left_rows, s.right_rows,
                     s.labeled, f"{s.rate:.0%}", s.train_low_resource])
    print(render_table(
        ["Dataset", "Domain", "L rows", "R rows", "Labeled", "rate", "Train"],
        rows, title="Available benchmarks"))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .data import load_dataset, save_dataset, save_machamp_dir

    dataset = load_dataset(args.dataset)
    if args.machamp:
        save_machamp_dir(dataset, args.output)
    else:
        save_dataset(dataset, args.output)
    print(f"wrote {args.dataset} to {args.output}")
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    from .lm import load_pretrained

    start = time.time()
    with _telemetry(args) as tel:
        model, tokenizer = load_pretrained(args.model,
                                           force_retrain=args.force,
                                           verbose=True)
        _print_trace_summary(tel)
    print(f"{args.model}: {model.num_parameters()} parameters, "
          f"vocab {len(tokenizer.vocab)}, ready in {time.time() - start:.1f}s")
    return 0


def _make_matcher(method: str, model_name: str,
                  workers: Optional[int] = None):
    from .baselines import BASELINE_NAMES, make_baseline
    from .core import PromptEM, PromptEMConfig

    if method == "PromptEM":
        return PromptEM(PromptEMConfig(model_name=model_name,
                                       workers=workers))
    if method in BASELINE_NAMES:
        kwargs = {}
        if method not in ("DeepMatcher", "TDmatch", "TDmatch*"):
            kwargs["model_name"] = model_name
        return make_baseline(method, **kwargs)
    raise SystemExit(
        f"unknown method {method!r}; choose PromptEM or one of {BASELINE_NAMES}")


def _cmd_run(args: argparse.Namespace) -> int:
    from .data import load_dataset, load_dataset_file, load_machamp_dir

    if args.from_file:
        dataset = load_dataset_file(args.from_file)
    elif args.from_dir:
        dataset = load_machamp_dir(args.from_dir)
    else:
        dataset = load_dataset(args.dataset)

    if args.count:
        view = dataset.low_resource_count(args.count, seed=args.seed)
    else:
        view = dataset.low_resource(rate=args.rate, seed=args.seed)
    print(f"{dataset.name}: {len(view.labeled)} labeled / "
          f"{len(view.unlabeled)} unlabeled / {len(view.test)} test")

    matcher = _make_matcher(args.method, args.model, workers=args.workers)
    with _telemetry(args) as tel:
        tel.event("run.start", method=args.method, dataset=dataset.name,
                  model=args.model, seed=args.seed,
                  workers=args.workers,
                  labeled=len(view.labeled), unlabeled=len(view.unlabeled),
                  test=len(view.test))
        start = time.time()
        with tel.span("run.fit", method=args.method):
            matcher.fit(view)
        elapsed = time.time() - start
        with tel.span("run.evaluate"):
            prf = matcher.evaluate(view.test)
        if tel.enabled:
            engine_fn = getattr(matcher, "engine", None)
            engine = engine_fn() if callable(engine_fn) else None
            if engine is not None and engine.stats.pairs:
                tel.event("engine.stats", scope="prediction",
                          **engine.stats_dict())
            tel.event("run.summary", f1=float(prf.f1),
                      precision=float(prf.precision),
                      recall=float(prf.recall),
                      elapsed_seconds=elapsed)
        _print_trace_summary(tel)
    print(f"{args.method} on {dataset.name}: "
          f"P={prf.precision:.1f} R={prf.recall:.1f} F1={prf.f1:.1f} "
          f"(trained in {elapsed:.1f}s)")
    if args.verbose:
        _print_engine_stats(matcher)
    if args.save and hasattr(matcher, "save"):
        matcher.save(args.save)
        print(f"saved matcher to {args.save}")
    if args.save_bundle:
        from .serve import ModelBundle

        model = getattr(matcher, "model", None)
        if model is None:
            raise SystemExit(
                f"--save-bundle needs a prompt model; {args.method} has none")
        bundle = ModelBundle.from_model(model, name=dataset.name)
        bundle.save(args.save_bundle)
        print(f"saved serving bundle to {args.save_bundle} "
              f"(threshold {bundle.threshold})")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Parameter-efficient tenant tuning: freeze a bundle's backbone,
    train only a soft prompt (optionally adapters), write a DeltaBundle."""
    from .core import (
        Trainer, TrainerConfig, apply_peft, evaluate_f1, trainable_fraction,
    )
    from .data import load_dataset, load_dataset_file
    from .serve import DeltaBundle, ModelBundle

    bundle = ModelBundle.load(args.bundle)
    model = bundle.model
    dataset = (load_dataset_file(args.from_file) if args.from_file
               else load_dataset(args.dataset))
    if args.count:
        view = dataset.low_resource_count(args.count, seed=args.seed)
    else:
        view = dataset.low_resource(rate=args.rate, seed=args.seed)
    apply_peft(model, args.peft, bottleneck=args.bottleneck, seed=args.seed)
    fraction = trainable_fraction(model)
    print(f"{args.peft} tuning on {dataset.name}: "
          f"{model.num_trainable_parameters()} trainable / "
          f"{model.num_parameters()} total parameters ({fraction:.2%})")

    with _telemetry(args) as tel:
        start = time.time()
        trainer = Trainer(model, TrainerConfig(
            epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
            seed=args.seed))
        with tel.span("tune.fit", peft=args.peft):
            trainer.fit(view.labeled, view.valid)
        elapsed = time.time() - start
        f1 = evaluate_f1(model, view.test) if view.test else float("nan")
        _print_trace_summary(tel)

    name = args.name or dataset.name
    delta = DeltaBundle.from_model(model, name=name)
    delta.save(args.out)
    print(f"test F1={f1:.1f} (tuned in {elapsed:.1f}s)")
    print(f"saved delta bundle {name!r} to {args.out}: "
          f"{delta.param_count} parameters, {delta.nbytes()} bytes, "
          f"threshold {delta.threshold}, pin {delta.fingerprint[:12]}")
    return 0


def _cmd_bundle_info(args: argparse.Namespace) -> int:
    """Inspect a bundle directory: schema, kind, parameter counts."""
    import json
    import os

    manifest_path = os.path.join(args.bundle, "bundle.json")
    if not os.path.exists(manifest_path):
        raise SystemExit(f"{args.bundle} is not a bundle (no bundle.json)")
    with open(manifest_path) as f:
        manifest = json.load(f)
    kind = manifest.get("kind", "full")
    print(f"path:           {args.bundle}")
    print(f"schema version: {manifest.get('schema_version')}")
    print(f"kind:           {kind}")
    if kind == "delta":
        from .serve import DeltaBundle

        delta = DeltaBundle.load(args.bundle)
        print(f"name:           {delta.name}")
        print(f"peft:           {delta.peft}")
        if delta.bottleneck is not None:
            print(f"bottleneck:     {delta.bottleneck}")
        print(f"parameters:     {delta.param_count} (all trainable; "
              f"{delta.nbytes()} bytes)")
        print(f"threshold:      {delta.threshold}")
        print(f"backbone pin:   {delta.fingerprint}")
    else:
        from .serve import ModelBundle, backbone_fingerprint

        bundle = ModelBundle.load(args.bundle)
        total = bundle.model.num_parameters()
        trainable = bundle.model.num_trainable_parameters()
        print(f"name:           {bundle.name}")
        print(f"parameters:     {total} total, {trainable} trainable")
        print(f"threshold:      {bundle.threshold}")
        print(f"fingerprint:    {backbone_fingerprint(bundle.model.lm)}")
    return 0


def _load_catalog(spec: str) -> List:
    """Records to index: a ``.jsonl`` of record dicts, a dataset-bundle
    JSON, or a benchmark name (indexes both tables)."""
    import os

    from .data import load_dataset
    from .data.io import _record_from_dict, load_dataset_file

    if spec.endswith(".jsonl"):
        import json

        with open(spec) as f:
            return [_record_from_dict(json.loads(line))
                    for line in f if line.strip()]
    dataset = (load_dataset_file(spec) if os.path.exists(spec)
               else load_dataset(spec))
    return list(dataset.left_table) + list(dataset.right_table)


def _read_salt(literal: Optional[str], path: Optional[str]):
    """Resolve the CLK secret salt from a literal flag or a key file."""
    if literal and path:
        raise SystemExit("pass either a literal salt or a salt file, not both")
    if path:
        with open(path, "rb") as f:
            data = f.read().strip()
        if not data:
            raise SystemExit(f"salt file {path!r} is empty")
        return data
    return literal.encode("utf-8") if literal else None


def _cmd_clk_encode(args: argparse.Namespace) -> int:
    """Encode a plaintext catalog into a CLK catalog directory: the
    artifact one party ships for privacy-preserving matching (ids +
    packed Bloom filters, never raw values, never the salt)."""
    from .privacy import ClkCatalog, ClkConfig, ClkEncoder

    salt = _read_salt(args.salt, args.salt_file)
    if salt is None:
        raise SystemExit("clk-encode needs --salt or --salt-file "
                         "(both parties must share it out of band)")
    config = ClkConfig(nbits=args.nbits, num_hashes=args.hashes,
                       qgram=args.qgram, hardening=args.harden)
    records = _load_catalog(args.catalog)
    if not records:
        raise SystemExit(f"catalog {args.catalog!r} holds no records")
    encoder = ClkEncoder(salt, config)
    with _telemetry(args):
        started = time.perf_counter()
        catalog = ClkCatalog.from_records(encoder, records)
        elapsed = time.perf_counter() - started
    catalog.save(args.out)
    stats = catalog.stats()
    print(f"encoded {stats['count']} records from {args.catalog} "
          f"in {elapsed:.2f}s -> {args.out}")
    print(f"filter: {stats['encoded_nbits']} bits on the wire "
          f"({config.num_hashes} hashes per {config.qgram}-gram, "
          f"hardening {config.hardening}), "
          f"mean fill {stats['mean_fill']:.3f}")
    print(f"salt fingerprint: {stats['salt_digest']} (the catalog never "
          "contains the salt; keep it offline)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading

    from .serve import (
        DenseCandidateIndex, MatchHTTPServer, MatchServer, ModelBundle,
        ServerConfig, ServingIndex, read_jsonl, serve_requests,
    )

    bundle = ModelBundle.load(args.bundle)
    config = ServerConfig(
        max_queue=args.max_queue,
        max_batch_pairs=args.max_batch_pairs,
        token_budget=args.token_budget,
        max_wait_s=args.max_wait_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        default_top_k=args.top_k,
        fuse_tenants=not args.no_fuse_tenants,
    )
    tenants = None
    if args.tenants:
        from .serve import TenantRegistry

        tenants = TenantRegistry(capacity=args.tenant_capacity,
                                 tenants_dir=args.tenants)
        print(f"tenant registry: {len(tenants.tenants())} delta bundles "
              f"from {args.tenants} (capacity {args.tenant_capacity})",
              file=sys.stderr)
    encoder = None
    if args.blocker == "dense" or args.ann:
        from .ann import RecordEncoder

        encoder = RecordEncoder(model_name=args.encoder_model)

    # CLK (privacy-preserving) candidate layer: a pre-encoded catalog, a
    # salt (single-party mode: the server may encode plaintext itself),
    # or both -- either fixes the filter shape
    clk_encoder = None
    clk_catalog = None
    clk_words = None
    clk_salt = _read_salt(args.clk_salt, args.clk_salt_file)
    if clk_salt is not None or args.clk_catalog or args.blocker == "clk":
        from .privacy import ClkCatalog, ClkConfig, ClkEncoder

        if clk_salt is not None:
            clk_encoder = ClkEncoder(clk_salt, ClkConfig(
                nbits=args.clk_nbits, num_hashes=args.clk_hashes,
                qgram=args.clk_qgram, hardening=args.clk_harden))
            clk_words = clk_encoder.config.words
        if args.clk_catalog:
            clk_catalog = ClkCatalog.load(args.clk_catalog)
            if clk_encoder is not None:
                clk_catalog.compatible_with(clk_encoder.params())
            clk_words = int(clk_catalog.params.get(
                "words", clk_catalog.filters.shape[1]))
        if not clk_words:
            raise SystemExit("--blocker clk needs --clk-catalog and/or "
                             "--clk-salt to fix the filter shape")

    from .obs.serving import (
        DriftConfig, DriftMonitor, SloObjectives, SloTracker,
    )

    slo = SloTracker(SloObjectives(latency_s=args.slo_latency_ms / 1000.0,
                                   latency_quantile=args.slo_quantile))
    drift = DriftMonitor(DriftConfig(psi_threshold=args.drift_psi,
                                     reference_size=args.drift_window,
                                     window=args.drift_window))

    if args.replicas > 0:
        # replicated pool: shared-memory weights, sharded catalog; the
        # catalog is journaled before start so every replica forks with it
        from .serve.pool import PoolConfig, ServingPool

        server = ServingPool(
            bundle,
            PoolConfig(replicas=args.replicas, shards=args.shards,
                       server=config, tenants_dir=args.tenants,
                       tenant_capacity=args.tenant_capacity),
            encoder=encoder, dense_kind=args.ann or "ivf",
            dense_seed=args.seed, candidate_mode=args.blocker,
            clk_words=clk_words, clk_encoder=clk_encoder,
            clk_threshold=args.clk_threshold,
            slo=slo, drift=drift)
        if args.catalog:
            added = server.catalog_add(_load_catalog(args.catalog))
            print(f"indexed {added} catalog records from {args.catalog} "
                  f"across {server.config.shards} shards", file=sys.stderr)
        if clk_catalog is not None:
            added = server.catalog_add_clk(clk_catalog.entries())
            print(f"seeded {added} clk filters from {args.clk_catalog} "
                  f"across {server.config.shards} shards", file=sys.stderr)
    else:
        index = ServingIndex(default_k=args.top_k)
        dense_index = None
        if encoder is not None:
            dense_index = DenseCandidateIndex(
                encoder, kind=args.ann or "ivf", default_k=args.top_k,
                seed=args.seed)
        clk_index = None
        if clk_words:
            from .privacy import ClkCandidateIndex

            clk_index = ClkCandidateIndex(words=clk_words,
                                          encoder=clk_encoder,
                                          default_k=args.top_k)
            if clk_catalog is not None:
                seeded = clk_index.add_clk_many(clk_catalog.entries())
                print(f"seeded {seeded} clk filters from "
                      f"{args.clk_catalog}", file=sys.stderr)
        if args.catalog:
            records = _load_catalog(args.catalog)
            added = index.add_many(records)
            if dense_index is not None:
                dense_index.add_many(records)
                dense_index.train()
            if clk_index is not None and clk_index.encoder is not None:
                clk_index.add_many(records)
            print(f"indexed {added} catalog records from {args.catalog}",
                  file=sys.stderr)
        server = MatchServer(bundle, config, index=index,
                             dense_index=dense_index,
                             clk_index=clk_index,
                             clk_threshold=args.clk_threshold,
                             candidate_mode=args.blocker,
                             tenants=tenants, slo=slo, drift=drift)

    stop_event = threading.Event()

    # install graceful-stop handlers for the serving loop, but put the
    # previous dispositions back on the way out: this function may run
    # inside a larger process (tests, notebooks), and a leftover handler
    # would silently swallow SIGTERM/SIGINT there -- including in any
    # process forked later (e.g. pool replicas), making them unkillable
    previous_handlers = (signal.getsignal(signal.SIGTERM),
                         signal.getsignal(signal.SIGINT))
    try:
        with _telemetry(args) as tel:
            if args.requests:
                # graceful stop: the signal closes intake; serve_requests
                # then drains its pending window, so every accepted
                # request is still answered before the process exits 0
                signal.signal(signal.SIGTERM, lambda *_: stop_event.set())
                signal.signal(signal.SIGINT, lambda *_: stop_event.set())

                def intake(requests):
                    for request in requests:
                        if stop_event.is_set():
                            return
                        yield request

                out = (open(args.output, "w") if args.output else sys.stdout)
                try:
                    with server:
                        for response in serve_requests(
                                server, intake(read_jsonl(args.requests))):
                            out.write(json.dumps(response) + "\n")
                finally:
                    if out is not sys.stdout:
                        out.close()
                stats = server.stats()
                print(f"served {stats['responses']} responses "
                      f"(shed {stats['shed']})", file=sys.stderr)
                if stop_event.is_set():
                    print("stopped on signal after draining",
                          file=sys.stderr)
                _emit_serve_slo(tel, server)
                _print_trace_summary(tel)
                return 0
            http = MatchHTTPServer(server, host=args.host, port=args.port,
                                   admin_token=args.admin_token)

            def _graceful(signum, frame):
                # serve_forever blocks the main thread; httpd.shutdown()
                # must run elsewhere or it deadlocks waiting on the serve
                # loop it interrupted.  Unblocking it triggers
                # MatchHTTPServer's shutdown path, which stops the
                # server/pool with drain=True.
                stop_event.set()
                threading.Thread(target=http.httpd.shutdown,
                                 daemon=True).start()

            signal.signal(signal.SIGTERM, _graceful)
            signal.signal(signal.SIGINT, _graceful)
            topology = (f"{args.replicas} replicas / "
                        f"{server.config.shards} shards"
                        if args.replicas > 0 else "single process")
            print(f"serving {bundle.name} (model version {server.version}, "
                  f"{topology}) on {http.address}", file=sys.stderr)
            try:
                http.serve_forever()
            except KeyboardInterrupt:
                http.shutdown()
            if stop_event.is_set():
                print("shut down gracefully on signal", file=sys.stderr)
            _emit_serve_slo(tel, server)
            _print_trace_summary(tel)
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous_handlers[0])
        signal.signal(signal.SIGINT, previous_handlers[1])


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Render a telemetry JSONL into the sectioned observability report
    (training and serving events alike; see repro.obs.report)."""
    import json

    from .obs import read_events
    from .obs.report import render_report

    events = read_events(args.path, validate=False)
    if not events:
        print(f"{args.path}: no events", file=sys.stderr)
        return 1
    if args.kind:
        for event in events:
            if event["kind"] == args.kind:
                print(json.dumps(event, sort_keys=True))
        return 0
    print(render_report(events, trace_samples=args.traces))
    return 0


def _cmd_ann_index(args: argparse.Namespace) -> int:
    """Build a dense index over a catalog and report the numbers that
    matter for tuning: build/embed time, recall vs exact top-k, latency."""
    import time

    import numpy as np

    from .ann import RecordEncoder, exact_dense_topk, make_index

    records = _load_catalog(args.catalog)
    if not records:
        raise SystemExit(f"catalog {args.catalog!r} holds no records")
    encoder = RecordEncoder(model_name=args.model, max_len=args.max_len)

    started = time.perf_counter()
    vectors = encoder.encode_records(records)
    embedded = time.perf_counter()

    kwargs = ({"nlist": args.nlist, "nprobe": args.nprobe}
              if args.kind == "ivf" else
              {"num_bands": args.num_bands, "band_bits": args.band_bits,
               "probes": args.probes})
    index = make_index(args.kind, encoder.dim, seed=args.seed, **kwargs)
    if hasattr(index, "train"):
        index.train(vectors)
    ids = [record.record_id for record in records]
    index.add_many(zip(ids, vectors))
    built = time.perf_counter()

    rng = np.random.default_rng(args.seed)
    n_queries = min(args.queries, len(records))
    picks = sorted(rng.choice(len(records), size=n_queries, replace=False)
                   .tolist())
    hits = wanted = 0
    latencies = []
    for row in picks:
        t0 = time.perf_counter()
        found = index.search(vectors[row], args.k)
        latencies.append(time.perf_counter() - t0)
        exact = exact_dense_topk(vectors[row], vectors, ids, args.k)
        got = {record_id for record_id, _ in found}
        hits += sum(1 for record_id in exact if record_id in got)
        wanted += len(exact)
    latencies.sort()
    p50 = latencies[len(latencies) // 2] * 1e3
    p95 = latencies[min(len(latencies) - 1,
                        int(len(latencies) * 0.95))] * 1e3

    print(f"indexed {len(records)} records from {args.catalog} "
          f"({args.kind}, dim {encoder.dim})")
    print(f"embed: {embedded - started:.2f}s  "
          f"index build: {built - embedded:.2f}s")
    print(f"recall@{args.k} vs exact dense top-k: "
          f"{hits / wanted:.4f} over {n_queries} queries")
    print(f"query latency: p50 {p50:.3f}ms  p95 {p95:.3f}ms")
    print(f"stats: {index.stats()}")
    return 0


def _print_engine_stats(matcher) -> None:
    """Inference-engine throughput counters (PromptEM's --verbose path)."""
    report = getattr(matcher, "report", None)
    if report is not None and getattr(report, "engine_batches", 0):
        print("self-training inference engine: "
              f"{report.engine_pairs_per_sec:.0f} pairs/s, "
              f"cache hit rate {report.engine_cache_hit_rate:.1%}, "
              f"{report.engine_batches} batches, "
              f"padding {report.engine_padding_fraction:.1%}")
    engine = None
    engine_fn = getattr(matcher, "engine", None)
    if callable(engine_fn):
        engine = engine_fn()
    if engine is not None and engine.stats.pairs:
        stats = engine.stats_dict()
        print("prediction inference engine: "
              f"{stats['pairs_per_sec']:.0f} pairs/s, "
              f"cache hit rate {stats['cache_hit_rate']:.1%}, "
              f"{stats['batches']} batches, "
              f"padding {stats['padding_fraction']:.1%}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PromptEM reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets")

    export = sub.add_parser("export", help="export a benchmark to disk")
    export.add_argument("dataset")
    export.add_argument("output")
    export.add_argument("--machamp", action="store_true",
                        help="write a Machamp-style directory instead of JSON")

    pretrain = sub.add_parser("pretrain", help="build/refresh an LM checkpoint")
    pretrain.add_argument("--model", default="minilm-base")
    pretrain.add_argument("--force", action="store_true",
                          help="retrain even if cached")
    _add_telemetry_flags(pretrain)

    run = sub.add_parser("run", help="train + evaluate a matcher")
    run.add_argument("--dataset", default="REL-HETER")
    run.add_argument("--from-file", help="load a dataset bundle JSON instead")
    run.add_argument("--from-dir", help="load a Machamp-style directory instead")
    run.add_argument("--method", default="PromptEM")
    run.add_argument("--model", default="minilm-base")
    run.add_argument("--rate", type=float, default=None,
                     help="labeled fraction (default: dataset's rate)")
    run.add_argument("--count", type=int, default=None,
                     help="exact number of labels (overrides --rate)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for training/inference "
                          "(PromptEM only; results identical at any count)")
    run.add_argument("--save", help="save the fitted matcher to this path")
    run.add_argument("--save-bundle", metavar="DIR",
                     help="export the trained model as a serving bundle "
                          "(weights + vocab + template + threshold)")
    run.add_argument("--verbose", action="store_true",
                     help="print inference-engine throughput statistics")
    _add_telemetry_flags(run)

    serve = sub.add_parser(
        "serve", help="serve a trained bundle (HTTP or JSONL batch mode)")
    serve.add_argument("--bundle", required=True,
                       help="bundle directory written by run --save-bundle")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--admin-token", default=None,
                       help="require this X-Admin-Token header on /admin/* "
                            "routes; without it admin calls are loopback-only")
    serve.add_argument("--requests", metavar="JSONL",
                       help="answer requests from this JSONL file instead of "
                            "binding a socket")
    serve.add_argument("--output", metavar="JSONL",
                       help="write JSONL responses here (default stdout)")
    serve.add_argument("--catalog", metavar="PATH_OR_NAME",
                       help="records to index for /match: a record JSONL, a "
                            "dataset bundle JSON, or a benchmark name")
    serve.add_argument("--replicas", type=int, default=0,
                       help="serve through a replicated pool of N forked "
                            "workers over shared-memory weights (0 = "
                            "classic single-process server)")
    serve.add_argument("--shards", type=int, default=None,
                       help="candidate-catalog hash shards (default: one "
                            "per replica); shard s lives in replica "
                            "s %% N")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission-control queue bound (shed above this)")
    serve.add_argument("--max-batch-pairs", type=int, default=32)
    serve.add_argument("--token-budget", type=int, default=2048,
                       help="max (rows+1)*max_len tokens per micro-batch")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch formation deadline")
    serve.add_argument("--cache-capacity", type=int, default=8192)
    serve.add_argument("--top-k", type=int, default=5,
                       help="candidates returned by /match")
    serve.add_argument("--blocker", choices=["sparse", "dense", "clk"],
                       default="sparse",
                       help="candidate generator for /match: token overlap "
                            "(sparse), ANN over embeddings (dense), or "
                            "privacy-preserving Bloom-filter Dice (clk, "
                            "served via /clk/match); flippable at runtime "
                            "via POST /admin/candidates")
    serve.add_argument("--ann", choices=["ivf", "lsh"], default=None,
                       help="also build a dense ANN index of this kind even "
                            "when starting in sparse mode (default ivf when "
                            "--blocker dense)")
    serve.add_argument("--clk-catalog", metavar="DIR", default=None,
                       help="pre-encoded CLK catalog directory (written by "
                            "repro clk-encode) to seed the privacy-"
                            "preserving candidate index; the server only "
                            "ever sees filter bytes + ids")
    serve.add_argument("--clk-salt", default=None,
                       help="CLK secret salt (single-party mode: lets the "
                            "server encode plaintext catalog adds itself; "
                            "omit for cross-party filters-only serving)")
    serve.add_argument("--clk-salt-file", metavar="PATH", default=None,
                       help="read the CLK salt from this file instead of "
                            "the command line")
    serve.add_argument("--clk-threshold", type=float, default=0.8,
                       help="Dice score at or above which a /clk/match "
                            "candidate is flagged as a match")
    serve.add_argument("--clk-nbits", type=int, default=1024,
                       help="CLK filter bits before hardening (with "
                            "--clk-salt; must match the peer's encoding)")
    serve.add_argument("--clk-hashes", type=int, default=30,
                       help="bits set per q-gram (with --clk-salt)")
    serve.add_argument("--clk-qgram", type=int, default=2,
                       help="q-gram length (with --clk-salt)")
    serve.add_argument("--clk-harden", choices=["none", "balance", "fold"],
                       default="none",
                       help="CLK hardening mode (with --clk-salt); see "
                            "docs/PRIVACY.md for the trade-offs")
    serve.add_argument("--encoder-model", default="minilm-base",
                       help="checkpoint for the frozen bi-encoder behind the "
                            "dense index")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for ANN index construction")
    serve.add_argument("--tenants", metavar="DIR", default=None,
                       help="directory of per-tenant delta bundles (one "
                            "subdirectory each, written by repro tune); "
                            "requests may then carry a 'tenant' id")
    serve.add_argument("--tenant-capacity", type=int, default=64,
                       help="LRU bound on resident (materialized) tenant "
                            "deltas; evicted tenants reload from disk on "
                            "next use")
    serve.add_argument("--no-fuse-tenants", action="store_true",
                       help="disable mixed-tenant micro-batch fusion "
                            "(fall back to same-tenant-only batches)")
    serve.add_argument("--slo-latency-ms", type=float, default=250.0,
                       help="per-tenant latency objective: the SLO "
                            "quantile of end-to-end request latency must "
                            "stay under this (reported by GET /slo)")
    serve.add_argument("--slo-quantile", type=float, default=0.95,
                       help="which latency quantile the objective bounds")
    serve.add_argument("--drift-psi", type=float, default=0.2,
                       help="PSI threshold for the served score-"
                            "distribution drift monitor (raises a "
                            "serve.drift event and flips the "
                            "serve.drift.active gauge)")
    serve.add_argument("--drift-window", type=int, default=256,
                       help="rolling window (and reference size) of the "
                            "drift monitor, in served scores per tenant")
    _add_telemetry_flags(serve, serving=True)

    tune = sub.add_parser(
        "tune", help="parameter-efficient tenant tuning: train a soft "
                     "prompt (or adapters) over a frozen bundle backbone "
                     "and save a KB-scale delta bundle")
    tune.add_argument("--bundle", required=True,
                      help="base full bundle (the shared backbone)")
    tune.add_argument("--out", required=True,
                      help="directory to write the tenant delta bundle")
    tune.add_argument("--peft", choices=["soft_prompt", "adapter"],
                      default="soft_prompt",
                      help="what to train: prompt embeddings only, or "
                           "prompt embeddings + bottleneck adapters")
    tune.add_argument("--dataset", default="REL-HETER",
                      help="the tenant's labeled data (benchmark name)")
    tune.add_argument("--from-file", help="load a dataset bundle JSON instead")
    tune.add_argument("--name", default=None,
                      help="tenant name recorded in the delta manifest "
                           "(default: dataset name)")
    tune.add_argument("--rate", type=float, default=None,
                      help="labeled fraction (default: dataset's rate)")
    tune.add_argument("--count", type=int, default=None,
                      help="exact number of labels (overrides --rate)")
    tune.add_argument("--bottleneck", type=int, default=8,
                      help="adapter bottleneck width (--peft adapter)")
    tune.add_argument("--epochs", type=int, default=10)
    tune.add_argument("--batch-size", type=int, default=16)
    tune.add_argument("--lr", type=float, default=1e-2,
                      help="PEFT wants a larger step than full fine-tuning")
    tune.add_argument("--seed", type=int, default=0)
    _add_telemetry_flags(tune)

    info = sub.add_parser(
        "bundle-info",
        help="inspect a bundle directory: schema version, kind "
             "(full/delta), parameter counts, backbone fingerprint")
    info.add_argument("bundle", help="bundle directory to inspect")

    ann = sub.add_parser(
        "ann-index",
        help="build a dense ANN index over a catalog and report "
             "build time, recall vs exact top-k, and query latency")
    ann.add_argument("--catalog", required=True, metavar="PATH_OR_NAME",
                     help="records to index: a record JSONL, a dataset "
                          "bundle JSON, or a benchmark name")
    ann.add_argument("--model", default="minilm-base",
                     help="checkpoint for the frozen bi-encoder")
    ann.add_argument("--kind", choices=["ivf", "lsh"], default="ivf")
    ann.add_argument("--k", type=int, default=10,
                     help="neighbours per query")
    ann.add_argument("--queries", type=int, default=100,
                     help="number of indexed records replayed as queries")
    ann.add_argument("--seed", type=int, default=0)
    ann.add_argument("--nlist", type=int, default=64,
                     help="IVF coarse clusters")
    ann.add_argument("--nprobe", type=int, default=8,
                     help="IVF lists probed per query")
    ann.add_argument("--num-bands", type=int, default=16,
                     help="LSH signature bands")
    ann.add_argument("--band-bits", type=int, default=12,
                     help="LSH bits per band")
    ann.add_argument("--probes", type=int, default=0,
                     help="LSH multi-probe bit flips per band")
    ann.add_argument("--max-len", type=int, default=48,
                     help="encoder truncation length")
    _add_telemetry_flags(ann)

    clk = sub.add_parser(
        "clk-encode",
        help="encode a catalog as salted Bloom-filter CLKs for privacy-"
             "preserving matching: ship the output directory, keep the "
             "salt secret")
    clk.add_argument("--catalog", required=True, metavar="PATH_OR_NAME",
                     help="records to encode: a record JSONL, a dataset "
                          "bundle JSON, or a benchmark name")
    clk.add_argument("--out", required=True, metavar="DIR",
                     help="directory to write the CLK catalog "
                          "(clk.json + clks.npy + ids.json)")
    clk.add_argument("--salt", default=None,
                     help="shared secret salt as a literal string")
    clk.add_argument("--salt-file", metavar="PATH", default=None,
                     help="read the salt from this file (recommended: "
                          "keeps the key out of shell history)")
    clk.add_argument("--nbits", type=int, default=1024,
                     help="filter bits before hardening (multiple of 64)")
    clk.add_argument("--hashes", type=int, default=30,
                     help="bits set per q-gram (double hashing)")
    clk.add_argument("--qgram", type=int, default=2,
                     help="q-gram length over normalized tokens")
    clk.add_argument("--harden", choices=["none", "balance", "fold"],
                     default="none",
                     help="hardening: balance (constant Hamming weight, "
                          "2x length) or fold (XOR halves, half length)")
    _add_telemetry_flags(clk)

    report = sub.add_parser(
        "obs-report",
        help="summarize a --telemetry JSONL: loss curves and span trees "
             "for training runs, request traces / SLO table / drift "
             "events for serving sessions")
    report.add_argument("path", help="telemetry JSONL written by "
                                     "--telemetry on any command")
    report.add_argument("--kind", default=None,
                        help="dump raw events of one kind instead of "
                             "rendering the report")
    report.add_argument("--traces", type=int, default=3,
                        help="sample request-trace trees to print in the "
                             "traces section")
    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "export": _cmd_export,
    "pretrain": _cmd_pretrain,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "ann-index": _cmd_ann_index,
    "clk-encode": _cmd_clk_encode,
    "tune": _cmd_tune,
    "bundle-info": _cmd_bundle_info,
    "obs-report": _cmd_obs_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
