"""PromptEM core: prompt-tuning, uncertainty-aware LST, dynamic pruning."""

from .active import (
    ActiveLearner, ActiveLearningConfig, ActiveLearningReport, oracle_from_view,
)
from .config import PromptEMConfig
from .el2n import el2n_scores, mc_el2n_scores, prune_dataset, select_prunable
from .finetune import SequenceClassifier
from .matcher import PromptEM
from .prompt_model import PromptModel
from .self_training import (
    LightweightSelfTrainer, SelfTrainingConfig, SelfTrainingReport,
)
from .templates import (
    PROMPT_PLACEHOLDER, ContinuousTemplate, HardTemplateT1, HardTemplateT2,
    PromptEncoder, Template, TemplateInstance, make_template,
)
from .trainer import (
    Trainer, TrainerConfig, TrainHistory, evaluate_f1, predict, predict_proba,
    stochastic_proba,
)
from .uncertainty import (
    McDropoutResult, PseudoLabelSelection, mc_dropout, select_by_clustering,
    select_by_confidence, select_by_uncertainty, select_pseudo_labels,
    top_n_count,
)
from .verbalizer import Verbalizer

__all__ = [
    "PromptEM", "PromptEMConfig",
    "ActiveLearner", "ActiveLearningConfig", "ActiveLearningReport",
    "oracle_from_view",
    "PromptModel", "SequenceClassifier",
    "Template", "TemplateInstance", "HardTemplateT1", "HardTemplateT2",
    "ContinuousTemplate", "PromptEncoder", "make_template", "PROMPT_PLACEHOLDER",
    "Verbalizer",
    "Trainer", "TrainerConfig", "TrainHistory",
    "predict", "predict_proba", "stochastic_proba", "evaluate_f1",
    "mc_dropout", "McDropoutResult", "select_pseudo_labels",
    "PseudoLabelSelection", "select_by_uncertainty", "select_by_confidence",
    "select_by_clustering", "top_n_count",
    "el2n_scores", "mc_el2n_scores", "select_prunable", "prune_dataset",
    "LightweightSelfTrainer", "SelfTrainingConfig", "SelfTrainingReport",
]
