"""PromptEM core: prompt-tuning, uncertainty-aware LST, dynamic pruning.

Names are resolved lazily (PEP 562) so that inference-only consumers --
most importantly :mod:`repro.serve`, which rebuilds a
:class:`~repro.core.prompt_model.PromptModel` from a saved bundle -- can
import the model/template/verbalizer modules without dragging in the
trainer, self-training, pruning, or active-learning code.
"""

#: public name -> defining submodule, resolved on first attribute access
_EXPORTS = {
    "ActiveLearner": "repro.core.active",
    "ActiveLearningConfig": "repro.core.active",
    "ActiveLearningReport": "repro.core.active",
    "oracle_from_view": "repro.core.active",
    "PromptEMConfig": "repro.core.config",
    "el2n_scores": "repro.core.el2n",
    "mc_el2n_scores": "repro.core.el2n",
    "prune_dataset": "repro.core.el2n",
    "select_prunable": "repro.core.el2n",
    "SequenceClassifier": "repro.core.finetune",
    "PromptEM": "repro.core.matcher",
    "Adapter": "repro.core.peft",
    "PEFT_KINDS": "repro.core.peft",
    "SoftPrompt": "repro.core.peft",
    "SoftPromptModel": "repro.core.peft",
    "apply_peft": "repro.core.peft",
    "has_adapters": "repro.core.peft",
    "install_adapters": "repro.core.peft",
    "load_peft_state": "repro.core.peft",
    "peft_kind": "repro.core.peft",
    "peft_state": "repro.core.peft",
    "remove_adapters": "repro.core.peft",
    "trainable_fraction": "repro.core.peft",
    "PromptModel": "repro.core.prompt_model",
    "LightweightSelfTrainer": "repro.core.self_training",
    "SelfTrainingConfig": "repro.core.self_training",
    "SelfTrainingReport": "repro.core.self_training",
    "PROMPT_PLACEHOLDER": "repro.core.templates",
    "ContinuousTemplate": "repro.core.templates",
    "HardTemplateT1": "repro.core.templates",
    "HardTemplateT2": "repro.core.templates",
    "PromptEncoder": "repro.core.templates",
    "Template": "repro.core.templates",
    "TemplateInstance": "repro.core.templates",
    "make_template": "repro.core.templates",
    "Trainer": "repro.core.trainer",
    "TrainerConfig": "repro.core.trainer",
    "TrainHistory": "repro.core.trainer",
    "evaluate_f1": "repro.core.trainer",
    "predict": "repro.core.trainer",
    "predict_proba": "repro.core.trainer",
    "stochastic_proba": "repro.core.trainer",
    "tune_threshold": "repro.core.trainer",
    "McDropoutResult": "repro.core.uncertainty",
    "PseudoLabelSelection": "repro.core.uncertainty",
    "mc_dropout": "repro.core.uncertainty",
    "select_by_clustering": "repro.core.uncertainty",
    "select_by_confidence": "repro.core.uncertainty",
    "select_by_uncertainty": "repro.core.uncertainty",
    "select_pseudo_labels": "repro.core.uncertainty",
    "top_n_count": "repro.core.uncertainty",
    "Verbalizer": "repro.core.verbalizer",
}

_SUBMODULES = frozenset({
    "active", "config", "el2n", "finetune", "matcher", "peft",
    "prompt_model", "self_training", "templates", "trainer", "uncertainty",
    "verbalizer",
})

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    import importlib

    target = _EXPORTS.get(name)
    if target is not None:
        return getattr(importlib.import_module(target), name)
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
