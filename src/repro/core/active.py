"""Active learning for low-resource GEM (the related-work alternative).

The paper's related work cites active learning [Kasai et al. 2019; Nafa et
al. 2022] as the other family of low-resource EM methods: instead of
pseudo-labeling unlabeled data (self-training), AL *spends a labeling
budget* on the most informative unlabeled pairs. Implementing it lets the
benchmarks compare label-efficiency of the two paradigms on equal footing.

Strategies:

* ``uncertainty`` -- MC-Dropout epistemic uncertainty, *highest first*
  (note the duality: self-training consumes the LEAST uncertain samples as
  pseudo-labels, AL queries the MOST uncertain ones for human labels);
* ``margin`` -- smallest gap between the two class probabilities;
* ``random`` -- the standard AL control arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..autograd import Module
from ..data.dataset import CandidatePair
from .trainer import Trainer, TrainerConfig, evaluate_f1, predict_proba
from .uncertainty import mc_dropout

QUERY_STRATEGIES = ("uncertainty", "margin", "random")


@dataclass
class ActiveLearningConfig:
    """Budget and loop hyperparameters."""

    rounds: int = 4
    queries_per_round: int = 8
    strategy: str = "uncertainty"
    mc_passes: int = 6
    epochs_per_round: int = 8
    batch_size: int = 8
    lr: float = 5e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in QUERY_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {QUERY_STRATEGIES}, got {self.strategy!r}")
        if self.rounds <= 0 or self.queries_per_round <= 0:
            raise ValueError("rounds and queries_per_round must be positive")


@dataclass
class ActiveLearningReport:
    """Label spend and validation quality per round."""

    labels_used: List[int] = field(default_factory=list)
    valid_f1: List[float] = field(default_factory=list)
    queried_indices: List[List[int]] = field(default_factory=list)


class ActiveLearner:
    """Pool-based active learning over a model factory.

    The ``oracle`` answers label queries; benchmarks use the held-back true
    labels of the unlabeled pool (simulating the human annotator the AL
    papers assume).
    """

    def __init__(self, model_factory: Callable[[], Module],
                 config: Optional[ActiveLearningConfig] = None) -> None:
        self.model_factory = model_factory
        self.config = config if config is not None else ActiveLearningConfig()

    def _rank(self, model: Module, pool: Sequence[CandidatePair],
              rng: np.random.Generator) -> np.ndarray:
        """Pool indices, most query-worthy first."""
        cfg = self.config
        if cfg.strategy == "random":
            return rng.permutation(len(pool))
        if cfg.strategy == "uncertainty":
            result = mc_dropout(model, pool, passes=cfg.mc_passes,
                                batch_size=cfg.batch_size)
            return np.argsort(-result.uncertainty, kind="stable")
        probs = predict_proba(model, pool, batch_size=cfg.batch_size)
        margin = np.abs(probs[:, 1] - probs[:, 0])
        return np.argsort(margin, kind="stable")

    def run(self, labeled: Sequence[CandidatePair],
            pool: Sequence[CandidatePair],
            oracle: Callable[[CandidatePair], int],
            valid: Sequence[CandidatePair]) -> tuple:
        """Run the AL loop; returns (final_model, report)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        labeled = list(labeled)
        pool = list(pool)
        report = ActiveLearningReport()

        model = self.model_factory()
        Trainer(model, TrainerConfig(
            epochs=cfg.epochs_per_round, batch_size=cfg.batch_size,
            lr=cfg.lr, seed=cfg.seed)).fit(labeled, valid=valid)
        report.labels_used.append(len(labeled))
        report.valid_f1.append(evaluate_f1(model, valid,
                                           batch_size=cfg.batch_size))

        for round_index in range(cfg.rounds):
            if not pool:
                break
            ranked = self._rank(model, pool, rng)
            chosen = ranked[: min(cfg.queries_per_round, len(pool))]
            chosen_set = set(chosen.tolist())
            report.queried_indices.append(sorted(chosen_set))
            for i in chosen:
                labeled.append(pool[i].with_label(oracle(pool[i])))
            pool = [p for i, p in enumerate(pool) if i not in chosen_set]

            model = self.model_factory()
            Trainer(model, TrainerConfig(
                epochs=cfg.epochs_per_round, batch_size=cfg.batch_size,
                lr=cfg.lr, seed=cfg.seed + round_index + 1)).fit(
                labeled, valid=valid)
            report.labels_used.append(len(labeled))
            report.valid_f1.append(evaluate_f1(model, valid,
                                               batch_size=cfg.batch_size))
        return model, report


def oracle_from_view(view) -> Callable[[CandidatePair], int]:
    """An oracle answering from a LowResourceView's held-back true labels."""
    truth = {}
    for pair, label in zip(view.unlabeled, view.unlabeled_true_labels):
        truth[(pair.left.record_id, pair.right.record_id)] = label

    def oracle(pair: CandidatePair) -> int:
        key = (pair.left.record_id, pair.right.record_id)
        if key not in truth:
            raise KeyError(f"oracle has no label for pair {key}")
        return truth[key]

    return oracle
