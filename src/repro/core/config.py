"""PromptEM configuration with the paper's Section 5.1 defaults.

The learning rate and epoch counts are rescaled to MiniLM's size (the paper
tunes RoBERTa-base with lr=2e-5 for 20/30 epochs; a 100k-parameter model
wants a larger step and converges in fewer epochs), but every *structural*
default matches: 1 self-training iteration, 10 MC-Dropout passes, pruning
every ``prune_frequency`` epochs, u_r and e_r grid values, template and
label-word choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class PromptEMConfig:
    """All knobs of the PromptEM matcher."""

    # Prompt design (Section 3)
    template: str = "t2"
    continuous: bool = True
    tokens_per_slot: int = 2
    label_words: str = "designed"       # "designed" | "simple"
    #: input budget; keep within the backbone's *pre-trained* position range
    #: (minilm-base pre-trains positions 0..95) -- longer inputs would read
    #: untrained position embeddings and destroy accuracy
    max_len: int = 96

    # Optimization (Section 5.1)
    lr: float = 5e-4
    weight_decay: float = 0.01
    batch_size: int = 8
    teacher_epochs: int = 12
    student_epochs: int = 16
    grad_clip: float = 1.0

    # Lightweight self-training (Section 4)
    use_self_training: bool = True
    self_training_iterations: int = 1
    pseudo_label_ratio: float = 0.10     # u_r
    selection_strategy: str = "uncertainty"
    mc_passes: int = 10

    # Dynamic data pruning (Section 4.3)
    use_dynamic_pruning: bool = True
    prune_ratio: float = 0.2             # e_r
    prune_frequency: int = 8             # epochs between prunes

    # Ablation: prompt-tuning off -> vanilla fine-tuning (w/o PT)
    use_prompt_tuning: bool = True

    # Long-text handling (Appendix F)
    summarize_long_text: bool = True
    summary_tokens: int = 48

    # Infrastructure
    model_name: str = "minilm-base"
    seed: int = 0
    unlabeled_cap: Optional[int] = None  # subsample the pool for speed
    #: inference engine: batched-token budget (rows x longest per batch) and
    #: encoding-cache size; engine off -> seed-style fixed-count batches
    use_engine: bool = True
    token_budget: int = 2048
    engine_cache: int = 8192
    #: worker processes for training, inference and MC-Dropout sweeps
    #: (see ``repro.parallel``). ``None`` keeps the legacy in-process
    #: paths; any int >= 1 switches to the data-parallel paths, whose
    #: results are identical at every worker count.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None or >= 1")
        if self.template not in ("t1", "t2"):
            raise ValueError("template must be 't1' or 't2'")
        if self.label_words not in ("designed", "simple"):
            raise ValueError("label_words must be 'designed' or 'simple'")
        if not 0.0 < self.pseudo_label_ratio <= 1.0:
            raise ValueError("pseudo_label_ratio (u_r) must be in (0, 1]")
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ValueError("prune_ratio (e_r) must be in [0, 1)")
        if self.self_training_iterations < 0:
            raise ValueError("self_training_iterations must be >= 0")
        if self.mc_passes < 2:
            raise ValueError("mc_passes must be >= 2")
        if self.token_budget < 1:
            raise ValueError("token_budget must be >= 1")

    def variant(self, **changes) -> "PromptEMConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    def without_prompt_tuning(self) -> "PromptEMConfig":
        """PromptEM w/o PT (Table 2 ablation)."""
        return self.variant(use_prompt_tuning=False)

    def without_self_training(self) -> "PromptEMConfig":
        """PromptEM w/o LST (Table 2 ablation)."""
        return self.variant(use_self_training=False)

    def without_pruning(self) -> "PromptEMConfig":
        """PromptEM w/o DDP, aka PromptEM- (Tables 2 and 4)."""
        return self.variant(use_dynamic_pruning=False)
