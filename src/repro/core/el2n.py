"""MC-EL2N importance scores and dynamic data pruning (paper Section 4.3).

EL2N [Paul et al. 2021] scores a training sample by the L2 norm of the error
vector ``||p(x) - onehot(y)||_2``: samples the model already fits well early
in training contribute little. The paper stabilizes the score by averaging
it over ``n`` MC-Dropout stochastic passes (MC-EL2N), then prunes the
Top-N_D *lowest-scoring* samples every ``frequency`` epochs (Eq. 3),
shrinking the student's training set without hurting accuracy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Module
from ..data.dataset import CandidatePair
from ..infer import InferenceEngine
from ..obs import get_telemetry
from .trainer import stochastic_proba
from .uncertainty import _worker_engine


def el2n_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Plain EL2N: ``||p - onehot(y)||_2`` per sample, from (N, C) probs."""
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2 or len(probs) != len(labels):
        raise ValueError("probs must be (N, C) aligned with labels")
    onehot = np.zeros_like(probs)
    onehot[np.arange(len(labels)), labels] = 1.0
    return np.linalg.norm(probs - onehot, axis=1)


def mc_el2n_scores(model: Module, pairs: Sequence[CandidatePair],
                   labels: np.ndarray, passes: int = 10,
                   batch_size: int = 32,
                   engine: Optional[InferenceEngine] = None,
                   seed: int = 0, workers: Optional[int] = None) -> np.ndarray:
    """MC-EL2N: mean EL2N over ``passes`` stochastic forward passes.

    With an ``engine``, all passes run in one vectorized MC-Dropout sweep;
    ``workers`` (without an ``engine``) builds a transient engine sharding
    its buckets over forked processes -- identical scores either way.
    """
    if passes < 1:
        raise ValueError("need at least one stochastic pass")
    if not len(pairs):
        return np.zeros(0)
    if engine is None:
        engine = _worker_engine(workers, batch_size)
    labels = np.asarray(labels, dtype=np.int64)
    if engine is not None:
        stacked = engine.mc_dropout_proba(model, pairs, passes=passes,
                                          seed=seed)
        totals = sum(el2n_scores(stacked[k], labels) for k in range(passes))
        return totals / passes
    totals = np.zeros(len(pairs))
    for _ in range(passes):
        probs = stochastic_proba(model, pairs, batch_size=batch_size)
        totals += el2n_scores(probs, labels)
    return totals / passes


def select_prunable(scores: np.ndarray, ratio: float) -> np.ndarray:
    """Eq. 3: indices of the N_D = N_L * e_r lowest-scoring samples."""
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"prune ratio must be in [0, 1), got {ratio}")
    count = int(round(len(scores) * ratio))
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    return np.argsort(scores, kind="stable")[:count]


def prune_dataset(model: Module, pairs: List[CandidatePair],
                  ratio: float, passes: int = 10,
                  batch_size: int = 32,
                  min_remaining: int = 4,
                  engine: Optional[InferenceEngine] = None,
                  seed: int = 0,
                  workers: Optional[int] = None) -> List[CandidatePair]:
    """Drop the least-important samples; never shrink below ``min_remaining``.

    Also refuses to prune away the last examples of either class -- a
    training set that loses one class entirely would collapse the student.
    """
    if len(pairs) <= min_remaining:
        return pairs
    labels = np.array([p.label for p in pairs], dtype=np.int64)
    scores = mc_el2n_scores(model, pairs, labels, passes=passes,
                            batch_size=batch_size, engine=engine, seed=seed,
                            workers=workers)
    drop = set(select_prunable(scores, ratio).tolist())
    if len(pairs) - len(drop) < min_remaining:
        ordered = sorted(drop, key=lambda i: scores[i])
        drop = set(ordered[: len(pairs) - min_remaining])
    kept = [p for i, p in enumerate(pairs) if i not in drop]
    for cls in (0, 1):
        if any(p.label == cls for p in pairs) and not any(p.label == cls for p in kept):
            # Restore the highest-scoring dropped sample of the lost class.
            candidates = [i for i in drop if pairs[i].label == cls]
            best = max(candidates, key=lambda i: scores[i])
            kept.append(pairs[best])
    tel = get_telemetry()
    if tel.enabled:
        tel.metrics.counter("el2n.pruned").inc(len(pairs) - len(kept))
        tel.metrics.quantiles("el2n.scores").observe_many(scores.tolist())
        tel.event("el2n.prune", before=len(pairs), after=len(kept),
                  dropped=len(pairs) - len(kept), ratio=float(ratio),
                  passes=passes,
                  score_mean=float(scores.mean()),
                  score_min=float(scores.min()),
                  score_max=float(scores.max()))
    return kept
