"""Vanilla fine-tuning classifier (paper Section 2.3).

Serializes the pair as ``[CLS] e [SEP] e' [SEP]``, pools [CLS], and trains a
randomly initialized softmax head. This is both the "PromptEM w/o PT"
ablation and the backbone of the BERT / Ditto / Rotom baselines -- the
contrast against :class:`~repro.core.prompt_model.PromptModel` is exactly
the fine-tuning-vs-prompt-tuning gap the paper studies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Dropout, Linear, Module, Tensor, functional as F, \
    is_grad_enabled
from ..data.dataset import CandidatePair
from ..data.serialize import serialize
from ..infer import PairEncoding
from ..infer.fastpath import cls_forward_encoded
from ..lm.model import MiniLM, pad_batch
from ..text import Tokenizer
from ..text.tfidf import TfIdfSummarizer

_EPS = 1e-12


class SequenceClassifier(Module):
    """LM + pooled [CLS] + linear head over two classes."""

    def __init__(self, lm: MiniLM, tokenizer: Tokenizer,
                 max_len: int = 128,
                 summarizer: Optional[TfIdfSummarizer] = None,
                 dropout: float = 0.1,
                 seed: int = 0,
                 augmenter=None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.lm = lm
        self.tokenizer = tokenizer
        self.max_len = min(max_len, lm.config.max_len)
        self.summarizer = summarizer
        self.head = Linear(lm.config.d_model, 2, rng=rng)
        self.head_dropout = Dropout(dropout, rng=np.random.default_rng(seed + 1))
        #: optional text-pair augmenter applied during training (Ditto/Rotom)
        self.augmenter = augmenter

    def _texts(self, pair: CandidatePair) -> tuple:
        return (serialize(pair.left, summarizer=self.summarizer),
                serialize(pair.right, summarizer=self.summarizer))

    def _encode_batch(self, pairs: Sequence[CandidatePair]):
        sequences = []
        for pair in pairs:
            left, right = self._texts(pair)
            if self.augmenter is not None and self.training:
                left, right = self.augmenter(left, right)
            enc = self.tokenizer.encode_pair(left, right, max_len=self.max_len)
            sequences.append(enc.ids)
        return pad_batch(sequences, pad_id=self.tokenizer.vocab.pad_id)

    def encode_pair(self, pair: CandidatePair) -> PairEncoding:
        """Tokenize one pair for the inference engine.

        Inference semantics: the training-time augmenter is *not* applied,
        matching what ``predict_proba`` (eval mode) would feed the model.
        """
        left, right = self._texts(pair)
        enc = self.tokenizer.encode_pair(left, right, max_len=self.max_len)
        return PairEncoding(ids=enc.ids)

    def encoding_fingerprint(self) -> tuple:
        return ("cls", self.max_len, id(self.tokenizer), id(self.summarizer))

    def logits(self, pairs: Sequence[CandidatePair]) -> Tensor:
        ids, pad_mask = self._encode_batch(pairs)
        return self._logits_from_ids(ids, pad_mask)

    def _logits_from_ids(self, ids, pad_mask) -> Tensor:
        hidden = self.lm.encode(ids, pad_mask=pad_mask)
        pooled = self.head_dropout(self.lm.pooled(hidden))
        return self.head(pooled)

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        """(B, 2) class probabilities."""
        return F.softmax(self.logits(pairs), axis=-1)

    def forward_encoded(self, encodings: Sequence[PairEncoding],
                        tile: int = 1) -> Tensor:
        """(tile * B, 2) probabilities from cached encodings (engine path).

        Under ``no_grad`` this runs the raw-numpy kernels in
        :mod:`repro.infer.fastpath`; see ``PromptModel.forward_encoded``.
        """
        ids, pad_mask = pad_batch([enc.ids for enc in encodings],
                                  pad_id=self.tokenizer.vocab.pad_id)
        if not is_grad_enabled():
            return Tensor(cls_forward_encoded(self, ids, pad_mask,
                                              encodings, tile=tile))
        if tile > 1:
            ids = np.tile(ids, (tile, 1))
            pad_mask = np.tile(pad_mask, (tile, 1))
        return F.softmax(self._logits_from_ids(ids, pad_mask), axis=-1)

    def loss(self, pairs: Sequence[CandidatePair], labels: np.ndarray,
             sample_weights: Optional[np.ndarray] = None) -> Tensor:
        return F.cross_entropy(self.logits(pairs),
                               np.asarray(labels, dtype=np.int64),
                               sample_weights=sample_weights)

    def supports_encoded_training(self) -> bool:
        """Cached encodings are augmentation-free, so a model training with
        an augmenter (Ditto/Rotom) must keep re-encoding every batch."""
        return self.augmenter is None

    def loss_encoded(self, encodings: Sequence[PairEncoding],
                     labels: np.ndarray,
                     sample_weights: Optional[np.ndarray] = None,
                     reduction: str = "mean") -> Tensor:
        """Same loss from pre-rendered encodings (trainer fastpath).

        ``reduction="sum"`` scales the fused weighted-mean cross-entropy
        back up by the batch's weight total, giving the unnormalized sum
        the data-parallel trainer reduces across micro-shards.
        """
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        ids, pad_mask = pad_batch([enc.ids for enc in encodings],
                                  pad_id=self.tokenizer.vocab.pad_id)
        labels = np.asarray(labels, dtype=np.int64)
        loss = F.cross_entropy(self._logits_from_ids(ids, pad_mask), labels,
                               sample_weights=sample_weights)
        if reduction == "sum":
            total = (float(np.asarray(sample_weights, np.float64).sum())
                     if sample_weights is not None else float(len(labels)))
            loss = loss * total
        return loss
