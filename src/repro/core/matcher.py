"""PromptEM: the public facade tying prompts, verbalizer and LST together.

Typical use::

    from repro import PromptEM, load_dataset

    dataset = load_dataset("REL-HETER")
    view = dataset.low_resource()            # 10% labels + unlabeled pool
    matcher = PromptEM()
    matcher.fit(view)
    prf = matcher.evaluate(view.test)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Module
from ..data.dataset import CandidatePair, GEMDataset, LowResourceView
from ..data.serialize import serialize
from ..eval.metrics import PRF
from ..infer import EngineConfig, InferenceEngine
from ..lm import load_pretrained
from ..lm.model import MiniLM
from ..text import Tokenizer
from ..text.tfidf import TfIdfSummarizer
from .config import PromptEMConfig
from .finetune import SequenceClassifier
from .prompt_model import PromptModel
from .self_training import LightweightSelfTrainer, SelfTrainingConfig, SelfTrainingReport
from .templates import make_template
from .trainer import Trainer, TrainerConfig, predict, predict_proba
from .verbalizer import Verbalizer


class PromptEM:
    """Low-resource generalized entity matcher (the paper's full system)."""

    def __init__(self, config: Optional[PromptEMConfig] = None,
                 lm: Optional[MiniLM] = None,
                 tokenizer: Optional[Tokenizer] = None) -> None:
        self.config = config if config is not None else PromptEMConfig()
        if (lm is None) != (tokenizer is None):
            raise ValueError("provide both lm and tokenizer, or neither")
        self._lm = lm
        self._tokenizer = tokenizer
        self._pristine_lm_state = None
        self.model: Optional[Module] = None
        self.report: Optional[SelfTrainingReport] = None
        self._summarizer: Optional[TfIdfSummarizer] = None
        self._engine: Optional[InferenceEngine] = None

    # ------------------------------------------------------------------
    def engine(self) -> Optional[InferenceEngine]:
        """The matcher's persistent inference engine (None when disabled).

        Shared by ``predict`` / ``predict_proba`` / ``evaluate`` so the
        encoding cache survives across calls.
        """
        cfg = self.config
        if not cfg.use_engine:
            return None
        if self._engine is None:
            self._engine = InferenceEngine(EngineConfig(
                token_budget=cfg.token_budget,
                max_batch_pairs=max(cfg.batch_size, 32),
                cache_capacity=cfg.engine_cache,
                base_seed=cfg.seed,
                workers=cfg.workers if cfg.workers is not None else 1))
        return self._engine

    # ------------------------------------------------------------------
    def _ensure_backbone(self) -> None:
        if self._lm is None:
            self._lm, self._tokenizer = load_pretrained(self.config.model_name)
        if self._pristine_lm_state is None:
            self._pristine_lm_state = self._lm.state_dict()

    def _fit_summarizer(self, pairs: Sequence[CandidatePair]) -> None:
        if not self.config.summarize_long_text:
            self._summarizer = None
            return
        texts: List[str] = []
        for pair in pairs:
            texts.append(serialize(pair.left))
            texts.append(serialize(pair.right))
        self._summarizer = TfIdfSummarizer(
            max_tokens=self.config.summary_tokens).fit(texts)

    def _make_model(self) -> Module:
        """A fresh model around a pristine copy of the pre-trained LM.

        Algorithm 1 initializes a *new* teacher/student per phase; restoring
        the cached pre-trained weights reproduces "initialize the network
        with parameters from the pre-trained LM" without re-training.
        """
        cfg = self.config
        lm = MiniLM(self._lm.config)
        lm.load_state_dict(self._pristine_lm_state)
        if cfg.use_prompt_tuning:
            template = make_template(cfg.template, self._tokenizer,
                                     continuous=cfg.continuous,
                                     max_len=min(cfg.max_len, lm.config.max_len),
                                     tokens_per_slot=cfg.tokens_per_slot)
            verbalizer = (Verbalizer.designed(self._tokenizer.vocab)
                          if cfg.label_words == "designed"
                          else Verbalizer.simple(self._tokenizer.vocab))
            return PromptModel(lm, self._tokenizer, template, verbalizer,
                               summarizer=self._summarizer, seed=cfg.seed)
        return SequenceClassifier(lm, self._tokenizer,
                                  max_len=min(cfg.max_len, lm.config.max_len),
                                  summarizer=self._summarizer, seed=cfg.seed)

    # ------------------------------------------------------------------
    def fit(self, view: LowResourceView) -> "PromptEM":
        """Train on a low-resource view (labeled + unlabeled + valid)."""
        return self.fit_pairs(view.labeled, view.unlabeled, view.valid)

    def fit_pairs(self, labeled: Sequence[CandidatePair],
                  unlabeled: Sequence[CandidatePair],
                  valid: Sequence[CandidatePair]) -> "PromptEM":
        cfg = self.config
        if not labeled:
            raise ValueError("PromptEM needs at least a few labeled pairs")
        self._ensure_backbone()
        self._fit_summarizer(list(labeled) + list(valid))

        unlabeled = list(unlabeled)
        if cfg.unlabeled_cap is not None and len(unlabeled) > cfg.unlabeled_cap:
            rng = np.random.default_rng(cfg.seed)
            keep = rng.choice(len(unlabeled), size=cfg.unlabeled_cap,
                              replace=False)
            unlabeled = [unlabeled[i] for i in sorted(keep)]

        if cfg.use_self_training and cfg.self_training_iterations > 0:
            st_config = SelfTrainingConfig(
                iterations=cfg.self_training_iterations,
                teacher_epochs=cfg.teacher_epochs,
                student_epochs=cfg.student_epochs,
                pseudo_label_ratio=cfg.pseudo_label_ratio,
                selection_strategy=cfg.selection_strategy,
                mc_passes=cfg.mc_passes,
                use_dynamic_pruning=cfg.use_dynamic_pruning,
                prune_ratio=cfg.prune_ratio,
                prune_frequency=cfg.prune_frequency,
                batch_size=cfg.batch_size, lr=cfg.lr,
                weight_decay=cfg.weight_decay, grad_clip=cfg.grad_clip,
                seed=cfg.seed,
                use_engine=cfg.use_engine, token_budget=cfg.token_budget,
                engine_cache=cfg.engine_cache,
                workers=cfg.workers)
            trainer = LightweightSelfTrainer(self._make_model, st_config)
            self.model, self.report = trainer.run(labeled, unlabeled, valid)
        else:
            self.model = self._make_model()
            Trainer(self.model, TrainerConfig(
                epochs=cfg.teacher_epochs, batch_size=cfg.batch_size,
                lr=cfg.lr, weight_decay=cfg.weight_decay,
                grad_clip=cfg.grad_clip, seed=cfg.seed,
                workers=cfg.workers)).fit(
                labeled, valid=valid)
            self.report = None
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> Module:
        if self.model is None:
            raise RuntimeError("call fit() before predicting")
        return self.model

    def predict(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        """Hard 0/1 match decisions."""
        return predict(self._require_fitted(), pairs,
                       batch_size=self.config.batch_size,
                       engine=self.engine())

    def predict_proba(self, pairs: Sequence[CandidatePair]) -> np.ndarray:
        """(N, 2) class probabilities."""
        return predict_proba(self._require_fitted(), pairs,
                             batch_size=self.config.batch_size,
                             engine=self.engine())

    def evaluate(self, pairs: Sequence[CandidatePair]) -> PRF:
        """Precision / recall / F1 (percent) against the pairs' labels."""
        truth = np.array([p.label for p in pairs], dtype=np.int64)
        preds = self.predict(pairs)
        return PRF.from_labels(truth, preds)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted matcher (model weights + config + threshold).

        The backbone checkpoint itself is re-resolved from the zoo on load,
        so the file stays small and vocabulary-compatible.
        """
        import dataclasses
        from pathlib import Path

        from ..autograd import save_checkpoint

        model = self._require_fitted()
        metadata = {
            "config": dataclasses.asdict(self.config),
            "decision_threshold": getattr(model, "decision_threshold", None),
        }
        save_checkpoint(model, Path(path), metadata=metadata)

    @classmethod
    def load(cls, path, lm: Optional[MiniLM] = None,
             tokenizer: Optional[Tokenizer] = None) -> "PromptEM":
        """Rebuild a fitted matcher saved with :meth:`save`."""
        import json
        from pathlib import Path

        import numpy as np_module

        from ..autograd import load_checkpoint
        from .config import PromptEMConfig

        # Peek at the metadata first to reconstruct the config.
        with np_module.load(Path(path)) as archive:
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode("utf-8"))
        config = PromptEMConfig(**metadata["config"])
        matcher = cls(config, lm=lm, tokenizer=tokenizer)
        matcher._ensure_backbone()
        # TF-IDF summarizer statistics are not persisted: a reloaded matcher
        # serializes full text (identical behaviour for structured data).
        matcher._summarizer = None
        matcher.model = matcher._make_model()
        load_checkpoint(matcher.model, Path(path))
        threshold = metadata.get("decision_threshold")
        if threshold is not None:
            matcher.model.decision_threshold = threshold
        matcher.model.eval()
        return matcher
