"""Parameter-efficient tuning: soft prompts and bottleneck adapters.

Full prompt-tuning (the PR-1..2 training path) updates every backbone
weight, so every task/tenant costs a complete MiniLM copy on disk and in
serving memory. APrompt4EM and AdapterEM show that in low-resource GEM a
per-task delta of ~1% of model size matches full tuning F1. This module
provides the two delta families over one frozen backbone:

* :class:`SoftPrompt` / :class:`SoftPromptModel` -- the continuous
  template's prompt slots are fed from a directly-trainable ``(P, D)``
  embedding matrix instead of the frozen :class:`PromptEncoder`'s
  LSTM+MLP reparameterization. The matrix conforms to the
  ``prompt_encoder()`` protocol (callable returning a Tensor), so both
  the autograd reference path and the raw-numpy fastpath consume it with
  zero kernel changes.
* :class:`Adapter` / :func:`install_adapters` -- bottleneck residual
  blocks (``x + up(gelu(down(x)))``, ``up`` zero-initialized so insertion
  is exact identity) hung off each transformer layer as ``adapter_attn``
  and ``adapter_ffn``. Both the reference
  :class:`~repro.autograd.transformer.TransformerEncoderLayer` forward
  and the fastpath ``encoder_hidden`` apply them via
  ``getattr(layer, "adapter_*", None)`` -- absent means the exact
  pre-PEFT code path, byte for byte.

:func:`apply_peft` freezes the backbone in place (see
:meth:`~repro.autograd.module.Parameter.freeze_`: gradients still flow
*through* frozen ops to the deltas; optimizers simply skip the frozen
slots), installs the requested delta family, and the trainable set --
``model.named_trainable_parameters()`` -- *is* the tenant delta that
:class:`repro.serve.delta.DeltaBundle` ships.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..autograd import functional as F
from ..autograd import no_grad
from ..autograd.layers import Linear
from ..autograd.module import Module, Parameter
from ..autograd.tensor import Tensor, get_default_dtype
from .prompt_model import PromptModel

#: delta families understood by ``apply_peft`` / ``repro tune --peft``
PEFT_KINDS = ("soft_prompt", "adapter")

#: attribute slots probed by the transformer forward and the fastpath
ADAPTER_SLOTS = ("adapter_attn", "adapter_ffn")


class SoftPrompt(Module):
    """A directly-trainable prompt matrix behind the prompt-encoder protocol.

    ``forward()`` returns the ``(P, D)`` :class:`Parameter` itself (a
    Parameter *is* a Tensor), exactly what
    ``PromptModel.mask_logits_encoded`` gathers from and what the fastpath
    reads via ``model.prompt_encoder().data``.
    """

    def __init__(self, num_tokens: int, d_model: int,
                 rng: Optional[np.random.Generator] = None,
                 init: Optional[np.ndarray] = None) -> None:
        super().__init__()
        if num_tokens <= 0:
            raise ValueError("soft prompt needs at least one prompt token")
        self.num_tokens = num_tokens
        self.d_model = d_model
        if init is not None:
            init = np.asarray(init, dtype=get_default_dtype())
            if init.shape != (num_tokens, d_model):
                raise ValueError(
                    f"soft-prompt init shape {init.shape} != "
                    f"({num_tokens}, {d_model})")
            table = init.copy()
        else:
            rng = rng if rng is not None else np.random.default_rng(0)
            table = (rng.standard_normal((num_tokens, d_model)) * 0.02
                     ).astype(get_default_dtype())
        self.embeddings = Parameter(table, name="soft_prompt")

    def forward(self) -> Tensor:
        return self.embeddings


class Adapter(Module):
    """Bottleneck residual block: ``x + up(gelu(down(x)))``.

    ``up`` is zero-initialized, so a freshly installed adapter is an exact
    identity -- predictions (reference and fastpath) are unchanged until
    tuning moves the delta.
    """

    def __init__(self, d_model: int, bottleneck: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if bottleneck <= 0:
            raise ValueError("adapter bottleneck must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.d_model = d_model
        self.bottleneck = bottleneck
        self.down = Linear(d_model, bottleneck, rng=rng)
        self.up = Linear(bottleneck, d_model, rng=rng)
        self.up.weight.data[...] = 0.0
        self.up.bias.data[...] = 0.0

    def forward(self, x: Tensor) -> Tensor:
        return x + self.up(F.gelu(self.down(x)))


def install_adapters(lm, bottleneck: int = 8, seed: int = 0) -> List[Adapter]:
    """Hang a fresh ``adapter_attn``/``adapter_ffn`` pair off each layer.

    Returns the adapters in probe order (attn, ffn per layer). Raises if
    any layer already carries adapters -- stacking deltas is a bug, not a
    feature (tenant binds must remove before installing).
    """
    if has_adapters(lm):
        raise ValueError("adapters already installed; remove_adapters first")
    d_model = lm.config.d_model
    installed: List[Adapter] = []
    for i, layer in enumerate(lm.encoder.layers):
        for j, slot in enumerate(ADAPTER_SLOTS):
            rng = np.random.default_rng((seed, i, j))
            adapter = Adapter(d_model, bottleneck, rng=rng)
            setattr(layer, slot, adapter)
            installed.append(adapter)
    return installed


def attach_adapters(lm, adapters: Iterable[Adapter]) -> None:
    """Re-attach pre-built adapters (tenant bind path), in probe order."""
    if has_adapters(lm):
        raise ValueError("adapters already installed; remove_adapters first")
    stack = list(adapters)
    expected = len(lm.encoder.layers) * len(ADAPTER_SLOTS)
    if len(stack) != expected:
        raise ValueError(
            f"expected {expected} adapters for this backbone, got {len(stack)}")
    it = iter(stack)
    for layer in lm.encoder.layers:
        for slot in ADAPTER_SLOTS:
            setattr(layer, slot, next(it))


def remove_adapters(lm) -> bool:
    """Detach every adapter; the backbone reverts to the pre-PEFT graph.

    ``Module.__setattr__`` registers child modules but never unregisters,
    so removal must scrub ``_modules`` explicitly or the detached adapter
    would keep showing up in ``named_parameters()``/``state_dict()``.
    """
    removed = False
    for layer in lm.encoder.layers:
        for slot in ADAPTER_SLOTS:
            if slot in layer._modules:
                del layer._modules[slot]
                removed = True
            if slot in layer.__dict__:
                object.__delattr__(layer, slot)
    return removed


def has_adapters(lm) -> bool:
    return any(
        getattr(layer, slot, None) is not None
        for layer in lm.encoder.layers for slot in ADAPTER_SLOTS)


def iter_adapters(lm) -> List[Adapter]:
    """Installed adapters in probe order (attn, ffn per layer)."""
    found: List[Adapter] = []
    for layer in lm.encoder.layers:
        for slot in ADAPTER_SLOTS:
            adapter = getattr(layer, slot, None)
            if adapter is not None:
                found.append(adapter)
    return found


def apply_peft(model: PromptModel, kind: str, bottleneck: int = 8,
               seed: int = 0) -> PromptModel:
    """Freeze ``model`` in place and install the trainable delta family.

    Both kinds replace the (frozen) :class:`PromptEncoder` with a
    :class:`SoftPrompt` warm-started from the encoder's current output, so
    the step-0 predictions equal the base model's and the prompt matrix is
    part of the delta (the LSTM/MLP reparameterization only helps
    *optimization from scratch*; a warm-started direct matrix is the
    standard deployment form). ``adapter`` additionally installs
    zero-initialized bottleneck adapters on every transformer layer.
    """
    if kind not in PEFT_KINDS:
        raise ValueError(f"unknown peft kind {kind!r}; expected {PEFT_KINDS}")
    if model.template.num_prompt_tokens <= 0 and kind == "soft_prompt":
        raise ValueError(
            "soft-prompt tuning needs a continuous template "
            "(this model has no prompt slots)")
    model.freeze()
    if model.template.num_prompt_tokens > 0:
        init = None
        if model.prompt_encoder is not None:
            with no_grad():
                init = np.array(model.prompt_encoder().data, copy=True)
        model.prompt_encoder = SoftPrompt(
            model.template.num_prompt_tokens, model.lm.config.d_model,
            rng=np.random.default_rng(seed), init=init)
        model.prompt_encoder.unfreeze()
    if kind == "adapter":
        install_adapters(model.lm, bottleneck=bottleneck, seed=seed)
    return model


class SoftPromptModel(PromptModel):
    """A :class:`PromptModel` born frozen with a trainable soft prompt."""

    def __init__(self, lm, tokenizer, template, verbalizer,
                 summarizer=None, seed: int = 0) -> None:
        super().__init__(lm, tokenizer, template, verbalizer,
                         summarizer=summarizer, seed=seed)
        apply_peft(self, "soft_prompt", seed=seed)


def peft_kind(model: Module) -> Optional[str]:
    """Infer which delta family (if any) a model carries."""
    lm = getattr(model, "lm", model)
    if has_adapters(lm):
        return "adapter"
    if isinstance(getattr(model, "prompt_encoder", None), SoftPrompt):
        return "soft_prompt"
    return None


def peft_state(model: Module) -> Dict[str, np.ndarray]:
    """The tenant delta: every trainable parameter, by qualified name."""
    return {name: param.data.copy()
            for name, param in model.named_trainable_parameters()}


def load_peft_state(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Load a delta back into a model with the same trainable structure."""
    own = dict(model.named_trainable_parameters())
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if missing or unexpected:
        raise KeyError(
            f"delta state mismatch; missing={sorted(missing)} "
            f"unexpected={sorted(unexpected)}")
    for name, values in state.items():
        param = own[name]
        if param.data.shape != values.shape:
            raise ValueError(
                f"shape mismatch for {name}: have {param.data.shape}, "
                f"got {values.shape}")
        param.data = np.asarray(values, dtype=get_default_dtype()).copy()


def trainable_fraction(model: Module) -> float:
    """Trainable / total parameter count -- the <= 2% delta-size contract."""
    total = model.num_parameters()
    if total == 0:
        return 0.0
    return model.num_trainable_parameters() / total
