"""PromptModel: MiniLM + template + verbalizer = GEM as a cloze task.

This is the paper's core idea (Section 3): instead of a randomly initialized
classification head over [CLS], the *pre-trained MLM head* predicts the
[MASK] token of a GEM-specific template, and the verbalizer turns label-word
probabilities into class scores. No new output parameters are introduced
(beyond optional continuous prompts), so the objective form matches
pre-training exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Module, Tensor, functional as F, where
from ..data.dataset import CandidatePair
from ..data.serialize import serialize
from ..lm.model import MiniLM
from ..text import Tokenizer
from ..text.tfidf import TfIdfSummarizer
from .templates import PROMPT_PLACEHOLDER, PromptEncoder, Template
from .verbalizer import Verbalizer

_EPS = 1e-12


class PromptModel(Module):
    """Scores candidate pairs via masked-language-model cloze prediction."""

    def __init__(self, lm: MiniLM, tokenizer: Tokenizer, template: Template,
                 verbalizer: Verbalizer,
                 summarizer: Optional[TfIdfSummarizer] = None,
                 seed: int = 0) -> None:
        super().__init__()
        self.lm = lm
        self.tokenizer = tokenizer
        self.template = template
        self.verbalizer = verbalizer
        self.summarizer = summarizer
        if template.num_prompt_tokens > 0:
            self.prompt_encoder = PromptEncoder(
                template.num_prompt_tokens, lm.config.d_model,
                rng=np.random.default_rng(seed))
        else:
            self.prompt_encoder = None

    # ------------------------------------------------------------------
    def _render(self, pair: CandidatePair):
        left = serialize(pair.left, summarizer=self.summarizer)
        right = serialize(pair.right, summarizer=self.summarizer)
        return self.template.render(left, right)

    def _assemble(self, pairs: Sequence[CandidatePair]):
        """Render and pad a batch; returns numpy bookkeeping arrays."""
        instances = [self._render(p) for p in pairs]
        batch = len(instances)
        longest = max(len(inst.ids) for inst in instances)
        pad_id = self.tokenizer.vocab.pad_id

        ids = np.full((batch, longest), pad_id, dtype=np.int64)
        pad_mask = np.ones((batch, longest), dtype=bool)
        is_prompt = np.zeros((batch, longest), dtype=bool)
        prompt_idx = np.zeros((batch, longest), dtype=np.int64)
        mask_positions = np.zeros(batch, dtype=np.int64)

        for i, inst in enumerate(instances):
            seq = np.asarray(inst.ids, dtype=np.int64)
            slots = seq == PROMPT_PLACEHOLDER
            clean = np.where(slots, pad_id, seq)
            n = len(seq)
            ids[i, :n] = clean
            pad_mask[i, :n] = False
            is_prompt[i, :n] = slots
            prompt_idx[i, :n][slots] = np.arange(slots.sum())
            mask_positions[i] = inst.mask_position
        return ids, pad_mask, is_prompt, prompt_idx, mask_positions

    # ------------------------------------------------------------------
    def mask_logits(self, pairs: Sequence[CandidatePair]) -> Tensor:
        """(B, V) vocabulary logits at each instance's [MASK] position."""
        ids, pad_mask, is_prompt, prompt_idx, mask_positions = self._assemble(pairs)
        batch, longest = ids.shape

        token_vecs = self.lm.token_embedding(ids)
        if self.prompt_encoder is not None and is_prompt.any():
            prompt_vecs = self.prompt_encoder()  # (P, D)
            gathered = prompt_vecs[prompt_idx.reshape(-1)].reshape(
                batch, longest, self.lm.config.d_model)
            condition = np.broadcast_to(
                is_prompt[:, :, None],
                (batch, longest, self.lm.config.d_model))
            token_vecs = where(condition, gathered, token_vecs)

        positions = np.broadcast_to(np.arange(longest), ids.shape)
        embeds = self.lm.embed_from_vectors(token_vecs, positions,
                                            token_ids=ids)
        hidden = self.lm.encode(ids, pad_mask=pad_mask, inputs_embeds=embeds)
        logits = self.lm.mlm_logits(hidden)
        return logits[(np.arange(batch), mask_positions)]

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        """(B, 2) normalized class probabilities.

        Eq. 1 produces unnormalized class scores (mean label-word
        probability); we normalize over the two classes so downstream
        consumers (loss, MC-Dropout statistics, EL2N) can treat the output
        as a proper distribution. Normalization is monotone, so argmax
        predictions match the paper's Eq. 1 inference rule exactly.
        """
        probs = F.softmax(self.mask_logits(pairs), axis=-1)
        scores = self.verbalizer.class_probs(probs)
        total = scores.sum(axis=1, keepdims=True)
        return scores / (total + _EPS)

    def loss(self, pairs: Sequence[CandidatePair],
             labels: np.ndarray,
             sample_weights: Optional[np.ndarray] = None) -> Tensor:
        """Cross-entropy over verbalized class probabilities."""
        probs = self.forward(pairs)
        labels = np.asarray(labels, dtype=np.int64)
        picked = probs[(np.arange(len(labels)), labels)]
        logs = (picked + _EPS).log()
        if sample_weights is not None:
            weights = np.asarray(sample_weights, dtype=np.float64)
            total = weights.sum()
            if total <= 0:
                return Tensor(0.0)
            return -(logs * Tensor(weights)).sum() / total
        return -logs.mean()
