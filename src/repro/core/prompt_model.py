"""PromptModel: MiniLM + template + verbalizer = GEM as a cloze task.

This is the paper's core idea (Section 3): instead of a randomly initialized
classification head over [CLS], the *pre-trained MLM head* predicts the
[MASK] token of a GEM-specific template, and the verbalizer turns label-word
probabilities into class scores. No new output parameters are introduced
(beyond optional continuous prompts), so the objective form matches
pre-training exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import (
    Module, Tensor, functional as F, gather_rows, is_grad_enabled, where,
)
from ..data.dataset import CandidatePair
from ..data.serialize import serialize
from ..infer import PairEncoding
from ..infer.fastpath import prompt_forward_encoded
from ..lm.model import MiniLM
from ..text import Tokenizer
from ..text.tfidf import TfIdfSummarizer
from .templates import PROMPT_PLACEHOLDER, PromptEncoder, Template
from .verbalizer import Verbalizer

_EPS = 1e-12


class PromptModel(Module):
    """Scores candidate pairs via masked-language-model cloze prediction."""

    def __init__(self, lm: MiniLM, tokenizer: Tokenizer, template: Template,
                 verbalizer: Verbalizer,
                 summarizer: Optional[TfIdfSummarizer] = None,
                 seed: int = 0) -> None:
        super().__init__()
        self.lm = lm
        self.tokenizer = tokenizer
        self.template = template
        self.verbalizer = verbalizer
        self.summarizer = summarizer
        if template.num_prompt_tokens > 0:
            self.prompt_encoder = PromptEncoder(
                template.num_prompt_tokens, lm.config.d_model,
                rng=np.random.default_rng(seed))
        else:
            self.prompt_encoder = None

    # ------------------------------------------------------------------
    def _render(self, pair: CandidatePair):
        left = serialize(pair.left, summarizer=self.summarizer)
        right = serialize(pair.right, summarizer=self.summarizer)
        return self.template.render(left, right)

    def encode_pair(self, pair: CandidatePair) -> PairEncoding:
        """Render one pair to cacheable token ids (engine protocol)."""
        inst = self._render(pair)
        return PairEncoding(ids=inst.ids, mask_position=inst.mask_position)

    def encoding_fingerprint(self) -> tuple:
        """Cache-key component: everything that shapes an encoding."""
        return ("prompt", type(self.template).__name__,
                getattr(self.template, "layout", None),
                self.template.max_len,
                getattr(self.template, "tokens_per_slot", 0),
                id(self.tokenizer), id(self.summarizer))

    def _assemble(self, encodings: Sequence[PairEncoding]):
        """Pad a batch of encodings; returns numpy bookkeeping arrays."""
        batch = len(encodings)
        longest = max(len(enc.ids) for enc in encodings)
        pad_id = self.tokenizer.vocab.pad_id

        ids = np.full((batch, longest), pad_id, dtype=np.int64)
        pad_mask = np.ones((batch, longest), dtype=bool)
        is_prompt = np.zeros((batch, longest), dtype=bool)
        prompt_idx = np.zeros((batch, longest), dtype=np.int64)
        mask_positions = np.zeros(batch, dtype=np.int64)

        for i, enc in enumerate(encodings):
            seq = enc.ids
            slots = seq == PROMPT_PLACEHOLDER
            clean = np.where(slots, pad_id, seq)
            n = len(seq)
            ids[i, :n] = clean
            pad_mask[i, :n] = False
            is_prompt[i, :n] = slots
            prompt_idx[i, :n][slots] = np.arange(slots.sum())
            mask_positions[i] = enc.mask_position
        return ids, pad_mask, is_prompt, prompt_idx, mask_positions

    # ------------------------------------------------------------------
    def mask_logits(self, pairs: Sequence[CandidatePair]) -> Tensor:
        """(B, V) vocabulary logits at each instance's [MASK] position."""
        return self.mask_logits_encoded([self.encode_pair(p) for p in pairs])

    def mask_logits_encoded(self, encodings: Sequence[PairEncoding],
                            tile: int = 1) -> Tensor:
        """Mask logits from pre-rendered encodings, optionally tiled.

        ``tile > 1`` repeats the padded batch along the batch axis (rows
        ``[0, B)`` are tile 0, ``[B, 2B)`` tile 1, ...), which is how the
        engine runs all MC-Dropout passes in one forward.
        """
        ids, pad_mask, is_prompt, prompt_idx, mask_positions = \
            self._assemble(encodings)
        if tile > 1:
            ids = np.tile(ids, (tile, 1))
            pad_mask = np.tile(pad_mask, (tile, 1))
            is_prompt = np.tile(is_prompt, (tile, 1))
            prompt_idx = np.tile(prompt_idx, (tile, 1))
            mask_positions = np.tile(mask_positions, tile)
        batch, longest = ids.shape

        token_vecs = self.lm.token_embedding(ids)
        if self.prompt_encoder is not None and is_prompt.any():
            prompt_vecs = self.prompt_encoder()  # (P, D)
            gathered = prompt_vecs[prompt_idx.reshape(-1)].reshape(
                batch, longest, self.lm.config.d_model)
            condition = np.broadcast_to(
                is_prompt[:, :, None],
                (batch, longest, self.lm.config.d_model))
            token_vecs = where(condition, gathered, token_vecs)

        positions = np.broadcast_to(np.arange(longest), ids.shape)
        embeds = self.lm.embed_from_vectors(token_vecs, positions,
                                            token_ids=ids)
        hidden = self.lm.encode(ids, pad_mask=pad_mask, inputs_embeds=embeds)
        # project only the [MASK] rows through the (d, V) vocab head:
        # (B, d) x (d, V) instead of (B*T, d) x (d, V).
        at_mask = gather_rows(hidden, np.arange(batch), mask_positions)
        return self.lm.mlm_logits(at_mask)

    def _class_probs(self, mask_logits: Tensor) -> Tensor:
        probs = F.softmax(mask_logits, axis=-1)
        scores = self.verbalizer.class_probs(probs)
        total = scores.sum(axis=1, keepdims=True)
        return scores / (total + _EPS)

    def forward(self, pairs: Sequence[CandidatePair]) -> Tensor:
        """(B, 2) normalized class probabilities.

        Eq. 1 produces unnormalized class scores (mean label-word
        probability); we normalize over the two classes so downstream
        consumers (loss, MC-Dropout statistics, EL2N) can treat the output
        as a proper distribution. Normalization is monotone, so argmax
        predictions match the paper's Eq. 1 inference rule exactly.
        """
        return self._class_probs(self.mask_logits(pairs))

    def forward_encoded(self, encodings: Sequence[PairEncoding],
                        tile: int = 1) -> Tensor:
        """(tile * B, 2) probabilities from cached encodings (engine path).

        Under ``no_grad`` this dispatches to the raw-numpy kernels in
        :mod:`repro.infer.fastpath` (same math and dropout draws, no
        autograd bookkeeping); with gradients enabled it runs the recorded
        reference path.
        """
        if not is_grad_enabled():
            return Tensor(prompt_forward_encoded(self, encodings, tile=tile))
        return self._class_probs(self.mask_logits_encoded(encodings, tile=tile))

    def loss(self, pairs: Sequence[CandidatePair],
             labels: np.ndarray,
             sample_weights: Optional[np.ndarray] = None) -> Tensor:
        """Cross-entropy over verbalized class probabilities."""
        return self.loss_encoded([self.encode_pair(p) for p in pairs],
                                 labels, sample_weights)

    def loss_encoded(self, encodings: Sequence[PairEncoding],
                     labels: np.ndarray,
                     sample_weights: Optional[np.ndarray] = None,
                     reduction: str = "mean") -> Tensor:
        """Same loss from pre-rendered encodings (trainer fastpath).

        Lets :class:`~repro.core.trainer.Trainer` reuse the inference
        engine's encoding cache for training batches instead of
        re-serializing every pair each epoch. ``reduction="sum"`` returns
        the *unnormalized* (weighted) sum -- the data-parallel trainer sums
        per-shard losses and divides by the full batch's weight total
        itself, so the normalizer never depends on how the batch was
        sharded.
        """
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        probs = self._class_probs(self.mask_logits_encoded(encodings))
        labels = np.asarray(labels, dtype=np.int64)
        picked = probs[(np.arange(len(labels)), labels)]
        logs = (picked + _EPS).log()
        if sample_weights is not None:
            weights = np.asarray(sample_weights, dtype=np.float64)
            weighted = -(logs * Tensor(weights)).sum()
            if reduction == "sum":
                return weighted
            total = weights.sum()
            if total <= 0:
                return Tensor(0.0)
            return weighted / total
        return -logs.sum() if reduction == "sum" else -logs.mean()
