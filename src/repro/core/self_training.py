"""Lightweight self-training (paper Algorithm 1).

Per iteration:

1. train a fresh *teacher* on the labeled set D_L;
2. select high-quality pseudo-labels D_P from the unlabeled pool D_U via
   uncertainty-aware selection (Section 4.2) and move them into D_L;
3. train a fresh *student* on the augmented D_L, pruning useless samples
   with MC-EL2N every ``prune_frequency`` epochs (Section 4.3);
4. keep the student with the best validation F1.

The procedure is generic over the model: any factory producing a module
with ``loss``/``forward`` works, which is what lets the benchmarks attach
LST to fine-tuning baselines too ("LST is general enough to incorporate
with other approaches").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..autograd import Module
from ..data.dataset import CandidatePair
from ..infer import EngineConfig, InferenceEngine
from ..obs import get_telemetry
from .el2n import prune_dataset
from .trainer import Trainer, TrainerConfig, evaluate_f1
from .uncertainty import select_pseudo_labels


@dataclass
class SelfTrainingConfig:
    """Knobs of Algorithm 1 (defaults follow paper Section 5.1)."""

    iterations: int = 1
    teacher_epochs: int = 12
    student_epochs: int = 16
    pseudo_label_ratio: float = 0.10       # u_r
    selection_strategy: str = "uncertainty"
    mc_passes: int = 10
    use_dynamic_pruning: bool = True
    prune_ratio: float = 0.2               # e_r
    prune_frequency: int = 8
    batch_size: int = 16
    lr: float = 5e-4
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    seed: int = 0
    #: inference-engine knobs for pseudo-labeling / pruning / evaluation
    use_engine: bool = True
    token_budget: int = 2048
    engine_cache: int = 8192
    #: worker processes for both trainers and the shared engine (see
    #: ``TrainerConfig.workers`` / ``EngineConfig.workers``); ``None``
    #: keeps everything on the legacy in-process paths
    workers: Optional[int] = None


@dataclass
class SelfTrainingReport:
    """What happened during one LST run."""

    teacher_valid_f1: List[float] = field(default_factory=list)
    student_valid_f1: List[float] = field(default_factory=list)
    pseudo_labels_added: List[int] = field(default_factory=list)
    samples_pruned: List[int] = field(default_factory=list)
    final_train_size: int = 0
    # inference-engine counters (filled when the engine is enabled)
    engine_pairs_per_sec: float = 0.0
    engine_cache_hit_rate: float = 0.0
    engine_batches: int = 0
    engine_padding_fraction: float = 0.0


class LightweightSelfTrainer:
    """Orchestrates Algorithm 1 over a model factory."""

    def __init__(self, model_factory: Callable[[], Module],
                 config: Optional[SelfTrainingConfig] = None) -> None:
        self.model_factory = model_factory
        self.config = config if config is not None else SelfTrainingConfig()

    def _trainer_config(self, epochs: int, seed_offset: int) -> TrainerConfig:
        cfg = self.config
        return TrainerConfig(epochs=epochs, batch_size=cfg.batch_size,
                             lr=cfg.lr, weight_decay=cfg.weight_decay,
                             grad_clip=cfg.grad_clip,
                             seed=cfg.seed + seed_offset,
                             workers=cfg.workers)

    def _make_engine(self) -> Optional[InferenceEngine]:
        cfg = self.config
        if not cfg.use_engine:
            return None
        return InferenceEngine(EngineConfig(
            token_budget=cfg.token_budget,
            max_batch_pairs=max(cfg.batch_size, 32),
            cache_capacity=cfg.engine_cache,
            base_seed=cfg.seed,
            workers=cfg.workers if cfg.workers is not None else 1))

    def run(self, labeled: Sequence[CandidatePair],
            unlabeled: Sequence[CandidatePair],
            valid: Sequence[CandidatePair]) -> tuple:
        """Execute Algorithm 1. Returns (best_student_model, report)."""
        cfg = self.config
        d_l: List[CandidatePair] = list(labeled)
        d_u: List[CandidatePair] = list(unlabeled)
        report = SelfTrainingReport()
        # One engine for the whole run: the teacher's MC-Dropout sweep warms
        # the encoding cache that the student's pruning and every subsequent
        # iteration then hit.
        engine = self._make_engine()

        best_model: Optional[Module] = None
        best_f1 = -1.0

        tel = get_telemetry()
        for iteration in range(cfg.iterations):
            # --- teacher (Algorithm 1, lines 2-4) -----------------------
            teacher = self.model_factory()
            with tel.span("selftrain.teacher", iteration=iteration):
                Trainer(teacher, self._trainer_config(
                    cfg.teacher_epochs, seed_offset=iteration)).fit(
                    d_l, valid=valid)
            teacher_f1 = evaluate_f1(teacher, valid, batch_size=cfg.batch_size,
                                     engine=engine)
            report.teacher_valid_f1.append(teacher_f1)
            if teacher_f1 > best_f1:
                best_f1, best_model = teacher_f1, teacher

            # --- pseudo-label selection (lines 5-8) ---------------------
            pseudo_positive = pseudo_negative = 0
            if d_u:
                with tel.span("selftrain.pseudo_label", iteration=iteration):
                    selection = select_pseudo_labels(
                        teacher, d_u, ratio=cfg.pseudo_label_ratio,
                        passes=cfg.mc_passes, strategy=cfg.selection_strategy,
                        batch_size=cfg.batch_size, seed=cfg.seed + iteration,
                        engine=engine)
                chosen = set(selection.indices.tolist())
                for idx, label in zip(selection.indices, selection.pseudo_labels):
                    d_l.append(d_u[idx].with_label(int(label)))
                    if int(label) == 1:
                        pseudo_positive += 1
                    else:
                        pseudo_negative += 1
                d_u = [p for i, p in enumerate(d_u) if i not in chosen]
                report.pseudo_labels_added.append(len(chosen))
            else:
                report.pseudo_labels_added.append(0)

            # --- student with dynamic pruning (lines 9-15) --------------
            student = self.model_factory()
            pruned_counter = [0]
            current = {"train": d_l}

            def prune_callback(epoch: int, trainer: Trainer):
                if not cfg.use_dynamic_pruning:
                    return None
                if (epoch + 1) % cfg.prune_frequency != 0:
                    return None
                before = len(current["train"])
                kept = prune_dataset(trainer.model, current["train"],
                                     ratio=cfg.prune_ratio,
                                     passes=cfg.mc_passes,
                                     batch_size=cfg.batch_size,
                                     engine=engine,
                                     seed=cfg.seed + 17 * (epoch + 1))
                pruned_counter[0] += before - len(kept)
                current["train"] = kept
                return kept

            with tel.span("selftrain.student", iteration=iteration):
                Trainer(student, self._trainer_config(
                    cfg.student_epochs, seed_offset=100 + iteration)).fit(
                    d_l, valid=valid, epoch_callback=prune_callback)
            student_f1 = evaluate_f1(student, valid, batch_size=cfg.batch_size,
                                     engine=engine)
            report.student_valid_f1.append(student_f1)
            report.samples_pruned.append(pruned_counter[0])
            d_l = current["train"]

            # --- keep the best model on validation (line 16) ------------
            if student_f1 >= best_f1:
                best_f1, best_model = student_f1, student

            if tel.enabled:
                tel.metrics.counter("selftrain.rounds").inc()
                tel.metrics.counter("selftrain.pseudo_labels").inc(
                    report.pseudo_labels_added[-1])
                tel.event("selftrain.round", iteration=iteration,
                          teacher_f1=float(teacher_f1),
                          student_f1=float(student_f1),
                          pseudo_added=report.pseudo_labels_added[-1],
                          pseudo_positive=pseudo_positive,
                          pseudo_negative=pseudo_negative,
                          pruned=pruned_counter[0],
                          train_size=len(d_l),
                          unlabeled_remaining=len(d_u))

        if best_model is None:
            raise RuntimeError("self-training ran zero iterations; "
                               "train a plain model instead")
        report.final_train_size = len(d_l)
        if engine is not None:
            stats = engine.stats
            report.engine_pairs_per_sec = stats.pairs_per_sec
            report.engine_cache_hit_rate = stats.cache_hit_rate
            report.engine_batches = stats.batches
            report.engine_padding_fraction = stats.padding_fraction
            if tel.enabled and stats.pairs:
                tel.event("engine.stats", scope="self_training",
                          **engine.stats_dict())
        return best_model, report
