"""GEM-specific prompt templates (paper Section 3.1).

Two hard-encoding templates:

* ``T1(x) = serialize(e) [SEP] serialize(e') [SEP] they are [MASK]``
* ``T2(x) = serialize(e) is [MASK] to serialize(e')``

and their *continuous* counterparts, which follow P-tuning: trainable prompt
token embeddings are inserted around the same layout and re-parameterized
through a BiLSTM + MLP so the model can search for prompts beyond what the
vocabulary can express.

A template renders a serialized pair into a :class:`TemplateInstance`: token
ids where continuous prompt slots hold :data:`PROMPT_PLACEHOLDER`, plus the
position of the [MASK] token whose prediction the verbalizer scores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autograd import BiLSTM, Linear, Module, Parameter, Sequential, Tensor
from ..autograd import functional as F
from ..text import Tokenizer

#: Sentinel id marking a continuous-prompt slot inside a rendered instance.
PROMPT_PLACEHOLDER = -1

TEMPLATE_NAMES = ("t1", "t2")


@dataclass
class TemplateInstance:
    """One rendered input: ids (with placeholder slots) and the mask index."""

    ids: List[int]
    mask_position: int

    def __post_init__(self) -> None:
        if not 0 <= self.mask_position < len(self.ids):
            raise ValueError("mask_position out of range")


class Template(ABC):
    """Base template: splits a fixed token budget between the two entities."""

    #: number of trainable prompt tokens (0 for hard templates)
    num_prompt_tokens: int = 0

    def __init__(self, tokenizer: Tokenizer, max_len: int = 128) -> None:
        self.tokenizer = tokenizer
        self.max_len = max_len

    def _entity_ids(self, left: str, right: str, budget: int) -> tuple:
        """Tokenize both sides and truncate longest-first to ``budget``."""
        a = self.tokenizer.tokenize(left)
        b = self.tokenizer.tokenize(right)
        while len(a) + len(b) > budget:
            if len(a) >= len(b):
                a.pop()
            else:
                b.pop()
        vocab = self.tokenizer.vocab
        return vocab.encode(a), vocab.encode(b)

    def _word_ids(self, text: str) -> List[int]:
        return self.tokenizer.vocab.encode(self.tokenizer.tokenize(text))

    @abstractmethod
    def render(self, left: str, right: str) -> TemplateInstance:
        """Render a serialized pair into ids + mask position."""


class HardTemplateT1(Template):
    """``[CLS] e [SEP] e' [SEP] they are [MASK] [SEP]``"""

    def render(self, left: str, right: str) -> TemplateInstance:
        vocab = self.tokenizer.vocab
        suffix = self._word_ids("they are")
        overhead = 4 + len(suffix) + 1  # CLS + 3 SEP + suffix + MASK
        a, b = self._entity_ids(left, right, self.max_len - overhead)
        ids = [vocab.cls_id, *a, vocab.sep_id, *b, vocab.sep_id,
               *suffix, vocab.mask_id, vocab.sep_id]
        return TemplateInstance(ids=ids, mask_position=len(ids) - 2)


class HardTemplateT2(Template):
    """``[CLS] e is [MASK] to e' [SEP]``"""

    def render(self, left: str, right: str) -> TemplateInstance:
        vocab = self.tokenizer.vocab
        is_ids = self._word_ids("is")
        to_ids = self._word_ids("to")
        overhead = 2 + len(is_ids) + len(to_ids) + 1
        a, b = self._entity_ids(left, right, self.max_len - overhead)
        ids = [vocab.cls_id, *a, *is_ids, vocab.mask_id, *to_ids, *b, vocab.sep_id]
        mask_position = 1 + len(a) + len(is_ids)
        return TemplateInstance(ids=ids, mask_position=mask_position)


class PromptEncoder(Module):
    """P-tuning re-parameterization: embeddings -> BiLSTM -> MLP.

    The raw prompt embeddings are free parameters; the BiLSTM lets prompt
    tokens interact, and the MLP projects back to model width.
    """

    def __init__(self, num_tokens: int, d_model: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_tokens <= 0:
            raise ValueError("need at least one prompt token")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_tokens = num_tokens
        self.d_model = d_model
        self.embeddings = Parameter(rng.standard_normal((num_tokens, d_model)) * 0.1)
        hidden = max(d_model // 2, 4)
        self.lstm = BiLSTM(d_model, hidden, rng=rng)
        self.mlp = Sequential(
            Linear(2 * hidden, d_model, rng=rng),
        )

    def forward(self) -> Tensor:
        """Return the (num_tokens, d_model) continuous prompt matrix."""
        seq = self.embeddings.reshape(1, self.num_tokens, self.d_model)
        encoded = self.lstm(seq)
        out = self.mlp(F.relu(encoded))
        return out.reshape(self.num_tokens, self.d_model)


class ContinuousTemplate(Template):
    """A hard template augmented with trainable prompt slots.

    ``layout='t1'`` inserts prompt blocks before each entity and before the
    mask; ``layout='t2'`` inserts them around the [MASK] connective. The
    actual vectors come from a :class:`PromptEncoder` owned by the prompt
    model, not by the template (templates stay stateless renderers).
    """

    def __init__(self, tokenizer: Tokenizer, layout: str = "t1",
                 max_len: int = 128, tokens_per_slot: int = 2) -> None:
        super().__init__(tokenizer, max_len=max_len)
        if layout not in TEMPLATE_NAMES:
            raise ValueError(f"layout must be one of {TEMPLATE_NAMES}")
        if tokens_per_slot <= 0:
            raise ValueError("tokens_per_slot must be positive")
        self.layout = layout
        self.tokens_per_slot = tokens_per_slot
        self.num_prompt_tokens = 3 * tokens_per_slot

    def _slot(self, slot_index: int) -> List[int]:
        return [PROMPT_PLACEHOLDER] * self.tokens_per_slot

    def render(self, left: str, right: str) -> TemplateInstance:
        vocab = self.tokenizer.vocab
        k = self.tokens_per_slot
        if self.layout == "t1":
            suffix = self._word_ids("they are")
            overhead = 4 + len(suffix) + 1 + 3 * k
            a, b = self._entity_ids(left, right, self.max_len - overhead)
            ids = [vocab.cls_id, *self._slot(0), *a, vocab.sep_id,
                   *self._slot(1), *b, vocab.sep_id,
                   *self._slot(2), *suffix, vocab.mask_id, vocab.sep_id]
            return TemplateInstance(ids=ids, mask_position=len(ids) - 2)
        is_ids = self._word_ids("is")
        to_ids = self._word_ids("to")
        overhead = 2 + len(is_ids) + len(to_ids) + 1 + 3 * k
        a, b = self._entity_ids(left, right, self.max_len - overhead)
        ids = [vocab.cls_id, *self._slot(0), *a, *is_ids, *self._slot(1),
               vocab.mask_id, *to_ids, *self._slot(2), *b, vocab.sep_id]
        mask_position = 1 + k + len(a) + len(is_ids) + k
        return TemplateInstance(ids=ids, mask_position=mask_position)


def make_template(name: str, tokenizer: Tokenizer, continuous: bool = True,
                  max_len: int = 128, tokens_per_slot: int = 2) -> Template:
    """Factory covering the four template variants of Figure 4."""
    if name not in TEMPLATE_NAMES:
        raise ValueError(f"unknown template {name!r}; expected one of {TEMPLATE_NAMES}")
    if continuous:
        return ContinuousTemplate(tokenizer, layout=name, max_len=max_len,
                                  tokens_per_slot=tokens_per_slot)
    cls = HardTemplateT1 if name == "t1" else HardTemplateT2
    return cls(tokenizer, max_len=max_len)
