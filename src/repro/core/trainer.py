"""Generic supervised trainer shared by PromptEM and the LM baselines.

Implements the paper's training protocol (Section 5.1): AdamW, mini-batches,
a fixed epoch budget, and *best-epoch selection on validation F1* ("we
select the epoch with the highest F1-score on the validation set").
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..autograd import AdamW, DropoutPlan, Module, dropout_plan
from ..data.dataset import CandidatePair
from ..eval.metrics import ConfusionMatrix
from ..infer import EngineConfig, InferenceEngine
from ..infer.engine import pack_buckets
from ..obs import fingerprint_digest, get_telemetry
from ..parallel import (GradientBoard, ParameterPublisher, WorkerPool,
                        shard_indices)


@dataclass
class TrainerConfig:
    """Optimization hyperparameters."""

    epochs: int = 10
    batch_size: int = 16
    lr: float = 5e-4
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    seed: int = 0
    select_best_on_valid: bool = True
    #: reweight classes to equal mass -- tiny low-resource samples are
    #: heavily negative-skewed and otherwise collapse to the majority class
    balance_classes: bool = True
    #: after training, tune the decision threshold on the validation set
    #: (stored as ``model.decision_threshold`` and honoured by predict())
    calibrate_threshold: bool = True
    #: pack mini-batches of similar-length pairs under ``rows x longest <=
    #: token_budget`` (capped at ``batch_size`` rows), so short pairs stop
    #: paying padded-position FLOPs up to the batch maximum. Only active for
    #: models speaking the engine encoding protocol (``encode_pair``);
    #: ``None`` keeps fixed ``batch_size`` slices.
    token_budget: Optional[int] = 2048
    #: visit pairs in exactly the seed loop's shuffled order (fixed
    #: ``batch_size`` slices of ``rng.permutation``) -- the parity mode the
    #: training benchmark and regression tests use to compare trajectories.
    preserve_rng_order: bool = False
    #: ``None`` keeps the legacy in-process loop (stateful dropout rngs).
    #: Any int >= 1 switches to the data-parallel micro-shard path, whose
    #: trained weights are **bit-identical at every worker count** (1
    #: included): shard boundaries and dropout plans depend only on
    #: ``grad_shards`` and the batch, and shard gradients reduce in fixed
    #: order. Needs a model speaking the encoded-training protocol with
    #: ``reduction`` support; anything else falls back to the legacy loop.
    workers: Optional[int] = None
    #: micro-shards per mini-batch on the data-parallel path. Part of the
    #: result (each shard carries its own dropout plan), not a free perf
    #: knob: change it and trajectories legitimately change.
    grad_shards: int = 4


@dataclass
class TrainHistory:
    """Per-epoch loss and validation F1."""

    losses: List[float] = field(default_factory=list)
    valid_f1: List[float] = field(default_factory=list)
    best_epoch: int = -1
    steps: int = 0


def _transient_engine(batch_size: int) -> InferenceEngine:
    """A per-call engine: bucketed batching without cross-call caching."""
    return InferenceEngine(EngineConfig(max_batch_pairs=batch_size))


def predict_proba(model: Module, pairs: Sequence[CandidatePair],
                  batch_size: int = 32,
                  engine: Optional[InferenceEngine] = None) -> np.ndarray:
    """(N, 2) class probabilities in eval mode, without building a graph.

    Routed through :class:`repro.infer.InferenceEngine`; pass a persistent
    ``engine`` to reuse its encoding cache across calls (self-training does).
    """
    if engine is None:
        engine = _transient_engine(batch_size)
    return engine.predict_proba(model, pairs)


def predict(model: Module, pairs: Sequence[CandidatePair],
            batch_size: int = 32,
            engine: Optional[InferenceEngine] = None) -> np.ndarray:
    """Hard 0/1 predictions.

    Honours a calibrated ``model.decision_threshold`` when present
    (set by :class:`Trainer` from validation F1); argmax otherwise.
    """
    probs = predict_proba(model, pairs, batch_size=batch_size, engine=engine)
    threshold = getattr(model, "decision_threshold", None)
    if threshold is None:
        return probs.argmax(axis=1)
    return (probs[:, 1] > threshold).astype(np.int64)


def tune_threshold(probs: np.ndarray, labels: np.ndarray) -> float:
    """The positive-probability cutoff maximizing F1 on (probs, labels).

    Vectorized: instead of building a :class:`ConfusionMatrix` per candidate
    cut (O(n) cuts x O(n) counting), TP/FP at every cut fall out of one sort
    and a cumulative positive count -- ``searchsorted`` gives, per cut, how
    many scores it clears.

    Tie-breaking is deterministic and permutation-invariant: among all cuts
    whose F1 is within ``1e-12`` of the maximum, the default ``0.5`` wins if
    it is one of them, otherwise the smallest cut. Without the tolerance,
    exact ties can be broken by which F1 accumulated less rounding error --
    an accident of the score distribution, not a property of the cut.
    """
    labels = np.asarray(labels, dtype=np.int64)
    scores = probs[:, 1]
    candidates = np.unique(scores)
    # midpoints between consecutive scores + 0.5 as a fallback
    cuts = np.concatenate([[0.5], (candidates[:-1] + candidates[1:]) / 2.0]) \
        if len(candidates) > 1 else np.array([0.5])

    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]
    cum_pos = np.cumsum(labels[order] == 1)
    total_pos = int(cum_pos[-1]) if len(cum_pos) else 0

    below = np.searchsorted(sorted_scores, cuts, side="right")
    tp = total_pos - np.where(below > 0, cum_pos[np.maximum(below, 1) - 1], 0)
    fp = (len(scores) - below) - tp
    fn = total_pos - tp
    # same guard semantics as ConfusionMatrix.f1 (0.0 on empty denominators)
    precision = np.divide(tp, tp + fp, out=np.zeros(len(cuts)),
                          where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros(len(cuts)),
                       where=(tp + fn) > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros(len(cuts)),
                   where=denom > 0)
    tied = cuts[f1 >= np.max(f1) - 1e-12]
    if np.any(tied == 0.5):
        return 0.5
    return float(tied.min())


def stochastic_proba(model: Module, pairs: Sequence[CandidatePair],
                     batch_size: int = 32,
                     engine: Optional[InferenceEngine] = None,
                     pass_seed: Optional[int] = None) -> np.ndarray:
    """One stochastic forward pass (dropout active) -- MC-Dropout's core.

    ``pass_seed`` makes the pass replayable (deterministic dropout masks);
    left ``None``, each Dropout module draws from its own rng as before.
    """
    if engine is None:
        engine = _transient_engine(batch_size)
    return engine.stochastic_proba(model, pairs, pass_seed=pass_seed)


def evaluate_f1(model: Module, pairs: Sequence[CandidatePair],
                batch_size: int = 32,
                engine: Optional[InferenceEngine] = None) -> float:
    if not pairs:
        return 0.0
    preds = predict(model, pairs, batch_size=batch_size, engine=engine)
    truth = np.array([p.label for p in pairs])
    return ConfusionMatrix.from_labels(truth, preds).f1


class _ShardedTrainSession:
    """Data-parallel micro-shard training over one (train, weights) set.

    Per optimizer step the mini-batch splits into ``grad_shards`` fixed
    micro-shards (:func:`shard_indices` of the batch -- worker-count
    independent). Each shard runs a forward/backward with an *unnormalized
    sum* loss under its own :class:`DropoutPlan` (seeded by global step +
    shard slot, so masks are reproducible in any process) and gathers its
    flat gradient into a :class:`GradientBoard` slot. The parent reduces
    the slots in fixed slot order, scales once by the full batch's weight
    total, and applies :meth:`Optimizer.step_flat` -- then publishes the
    new parameters through shared memory for the workers' next pull.

    Workers fork once per session and hold the model via copy-on-write;
    the only steady-state traffic is one shm parameter pull per worker per
    step plus tiny task/result pickles. With ``workers <= 1`` (or no fork
    / no shared memory) the identical shard math runs in-process.
    """

    def __init__(self, trainer: "Trainer", train: Sequence[CandidatePair],
                 encodings: Sequence, weights: Optional[np.ndarray]) -> None:
        cfg = trainer.config
        self.cfg = cfg
        self.model = trainer.model
        self.optimizer = trainer.optimizer
        self.encodings = encodings
        self.labels = np.array([p.label for p in train], dtype=np.int64)
        self.weights = weights
        fingerprint = getattr(self.model, "encoding_fingerprint", None)
        self.fingerprint = fingerprint_digest(fingerprint()) \
            if fingerprint else ""
        tel = get_telemetry()
        if tel.enabled and self.fingerprint:
            tel.event("trainer.fingerprint", fingerprint=self.fingerprint,
                      grad_shards=cfg.grad_shards, workers=cfg.workers)
        self.publisher = ParameterPublisher(self.optimizer, self.fingerprint)
        self.board = GradientBoard(max(cfg.grad_shards, 1),
                                   self.optimizer.flat_size,
                                   self.optimizer.flat_dtype)
        workers = cfg.workers
        # real parallelism additionally needs shared memory for the
        # parameter broadcast and the gradient board; without it the
        # same sharded algorithm runs in-process (results unchanged)
        if not (self.publisher.is_shared and self.board.is_shared):
            workers = 1
        self.publisher.publish(self.optimizer)
        self.pool = WorkerPool(workers, self._shard_task)
        self._reduce_buf = np.zeros(self.optimizer.flat_size,
                                    dtype=self.optimizer.flat_dtype)

    def _shard_task(self, task):
        """Worker side: one micro-shard forward/backward; grad into shm."""
        step, slot, idx = task
        self.publisher.pull(self.optimizer, self.fingerprint)
        self.model.train()
        shard_weights = self.weights[idx] if self.weights is not None else None
        plan = DropoutPlan(base_seed=self.cfg.seed, pass_seeds=(slot,),
                           batch_index=step)
        self.optimizer.zero_grad()
        with dropout_plan(plan):
            loss = self.model.loss_encoded(
                [self.encodings[i] for i in idx], self.labels[idx],
                sample_weights=shard_weights, reduction="sum")
        loss.backward()
        present = self.optimizer.flatten_grads(self.board.slot(slot))
        return float(loss.item()), present

    def step(self, step_index: int, idx: np.ndarray):
        """One optimizer step over batch ``idx``.

        Returns ``(mean_loss, grad_norm)`` -- the pre-clip global gradient
        norm the fused update measured, which the trainer's per-step
        telemetry reports.
        """
        shards = shard_indices(len(idx), self.cfg.grad_shards)
        results = self.pool.map(
            [(step_index, slot, idx[shard])
             for slot, shard in enumerate(shards)])
        reduced = self.board.reduce(len(shards), out=self._reduce_buf)
        total = (float(self.weights[idx].sum())
                 if self.weights is not None else float(len(idx)))
        reduced *= 1.0 / total
        present = tuple(any(flags) for flags in
                        zip(*(present for _, present in results)))
        grad_norm = self.optimizer.step_flat(
            reduced, grad_clip=self.cfg.grad_clip, present=present)
        self.publisher.publish(self.optimizer)
        return sum(loss for loss, _ in results) / total, grad_norm

    def close(self) -> None:
        self.pool.close()
        self.board.close()
        self.publisher.close()


class Trainer:
    """Epoch loop with shuffling, clipping and best-on-valid checkpointing."""

    def __init__(self, model: Module, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.optimizer = AdamW(model.parameters(), lr=self.config.lr,
                               weight_decay=self.config.weight_decay)

    def fit(self, train: Sequence[CandidatePair],
            valid: Optional[Sequence[CandidatePair]] = None,
            sample_weights: Optional[np.ndarray] = None,
            epoch_callback: Optional[Callable[[int, "Trainer"], Sequence[CandidatePair]]] = None,
            ) -> TrainHistory:
        """Train on labeled pairs; returns the history.

        ``epoch_callback(epoch, trainer)`` runs after each epoch and may
        return a *replacement training set* -- the hook dynamic data pruning
        uses to shrink ``train`` mid-run (Algorithm 1, lines 12-15).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        train = list(train)
        if not train:
            raise ValueError("empty training set")
        weights = (np.asarray(sample_weights, dtype=np.float64)
                   if sample_weights is not None else None)
        if weights is not None and len(weights) != len(train):
            raise ValueError("sample_weights length mismatch")
        if cfg.balance_classes:
            balance = _class_balance_weights(train)
            weights = balance if weights is None else weights * balance

        # One engine for the whole fit: per-epoch validation, threshold
        # calibration and the training fastpath all share its encoding cache.
        engine = _transient_engine(cfg.batch_size)
        encodings, lengths = self._train_encodings(engine, train)
        session = self._sharded_session(train, encodings, weights)

        history = TrainHistory()
        best_f1 = -1.0
        best_state = None
        best_threshold = None

        tel = get_telemetry()
        if tel.enabled:
            tel.event("trainer.fit.start", n_train=len(train),
                      n_valid=len(valid) if valid else 0,
                      epochs=cfg.epochs, batch_size=cfg.batch_size,
                      lr=cfg.lr, workers=cfg.workers,
                      grad_shards=cfg.grad_shards,
                      sharded=session is not None)

        try:
            with tel.span("trainer.fit", epochs=cfg.epochs):
                for epoch in range(cfg.epochs):
                    order = rng.permutation(len(train))
                    self.model.train()
                    epoch_losses = []
                    epoch_tokens = 0
                    epoch_started = time.perf_counter()
                    with tel.span("trainer.epoch", epoch=epoch):
                        for idx in self._epoch_batches(order, lengths, rng):
                            if session is not None:
                                loss_value, grad_norm = session.step(
                                    history.steps, idx)
                            else:
                                labels = np.array(
                                    [train[i].label for i in idx],
                                    dtype=np.int64)
                                batch_weights = weights[idx] \
                                    if weights is not None else None
                                if encodings is not None:
                                    loss = self.model.loss_encoded(
                                        [encodings[i] for i in idx], labels,
                                        sample_weights=batch_weights)
                                else:
                                    loss = self.model.loss(
                                        [train[i] for i in idx], labels,
                                        sample_weights=batch_weights)
                                self.optimizer.zero_grad()
                                loss.backward()
                                grad_norm = self.optimizer.step(
                                    grad_clip=cfg.grad_clip)
                                loss_value = loss.item()
                            epoch_losses.append(loss_value)
                            if tel.enabled:
                                epoch_tokens += int(sum(
                                    lengths[i] for i in idx)) \
                                    if lengths is not None else 0
                                tel.metrics.counter("trainer.steps").inc()
                                tel.metrics.histogram(
                                    "trainer.loss").observe(loss_value)
                                tel.event(
                                    "trainer.step", step=history.steps,
                                    epoch=epoch, loss=float(loss_value),
                                    grad_norm=None if grad_norm is None
                                    else float(grad_norm),
                                    lr=self.optimizer.lr)
                            history.steps += 1
                    epoch_elapsed = time.perf_counter() - epoch_started
                    history.losses.append(float(np.mean(epoch_losses)))

                    f1 = None
                    threshold = None
                    if valid:
                        with tel.span("trainer.validate", epoch=epoch):
                            probs = predict_proba(self.model, valid,
                                                  batch_size=cfg.batch_size,
                                                  engine=engine)
                            truth = np.array([p.label for p in valid],
                                             dtype=np.int64)
                            threshold = (tune_threshold(probs, truth)
                                         if cfg.calibrate_threshold else None)
                            if threshold is None:
                                preds = probs.argmax(axis=1)
                            else:
                                preds = (probs[:, 1] > threshold).astype(
                                    np.int64)
                            f1 = ConfusionMatrix.from_labels(truth, preds).f1
                        history.valid_f1.append(f1)
                        if cfg.select_best_on_valid and f1 > best_f1:
                            best_f1 = f1
                            best_state = self.model.state_dict()
                            best_threshold = threshold
                            history.best_epoch = epoch

                    if tel.enabled:
                        tel.metrics.gauge("trainer.epoch").set(epoch)
                        tel.event(
                            "trainer.epoch", epoch=epoch,
                            loss=history.losses[-1], steps=history.steps,
                            valid_f1=f1, threshold=threshold,
                            tokens=epoch_tokens,
                            tokens_per_sec=epoch_tokens / epoch_elapsed
                            if epoch_elapsed > 0 else 0.0,
                            examples_per_sec=len(train) / epoch_elapsed
                            if epoch_elapsed > 0 else 0.0)

                    if epoch_callback is not None:
                        replacement = epoch_callback(epoch, self)
                        if replacement is not None:
                            train = list(replacement)
                            if not train:
                                break
                            if weights is not None and \
                                    len(weights) != len(train):
                                weights = (_class_balance_weights(train)
                                           if cfg.balance_classes else None)
                            encodings, lengths = self._train_encodings(
                                engine, train)
                            # forked workers hold the old train set via their
                            # closures; a replacement needs a fresh session
                            if session is not None:
                                session.close()
                                session = self._sharded_session(
                                    train, encodings, weights)
        finally:
            if session is not None:
                session.close()

        if best_state is not None:
            self.model.load_state_dict(best_state)
        if cfg.calibrate_threshold:
            self.model.decision_threshold = best_threshold \
                if best_threshold is not None else 0.5
        self.model.eval()
        return history

    # ------------------------------------------------------------------
    def _sharded_session(self, train: Sequence[CandidatePair],
                         encodings, weights: Optional[np.ndarray]
                         ) -> Optional[_ShardedTrainSession]:
        """Build the data-parallel session when configured and supported.

        Requires ``config.workers`` to be set, cached encodings (the
        encoded-training protocol) and a ``loss_encoded`` that understands
        ``reduction`` -- legacy models silently keep the in-process loop.
        """
        if self.config.workers is None or encodings is None:
            return None
        try:
            signature = inspect.signature(self.model.loss_encoded)
        except (TypeError, ValueError):  # pragma: no cover - C callables
            return None
        if "reduction" not in signature.parameters:
            return None
        return _ShardedTrainSession(self, train, encodings, weights)

    def _train_encodings(self, engine: InferenceEngine,
                         train: Sequence[CandidatePair]):
        """Cache training-pair encodings once per fit (and per replacement).

        Returns ``(encodings, lengths)`` when the model speaks the engine
        encoding protocol and exposes ``loss_encoded``; ``(None, None)``
        sends :meth:`fit` down the legacy ``model.loss(batch)`` path.
        """
        if not (hasattr(self.model, "encode_pair")
                and hasattr(self.model, "loss_encoded")):
            return None, None
        supported = getattr(self.model, "supports_encoded_training", None)
        if supported is not None and not supported():
            return None, None
        encodings = engine.encodings(self.model, train)
        return encodings, [len(enc.ids) for enc in encodings]

    def _epoch_batches(self, order: np.ndarray,
                       lengths: Optional[List[int]],
                       rng: np.random.Generator):
        """Yield train-index arrays for one epoch's mini-batches.

        Parity mode (``preserve_rng_order``, no ``token_budget``, or a
        model without cached encodings): fixed ``batch_size`` slices of the
        shuffled ``order`` -- exactly the seed loop. Fastpath: token-budget
        buckets of similar-length pairs, visited in random order.
        """
        cfg = self.config
        if (lengths is None or cfg.token_budget is None
                or cfg.preserve_rng_order):
            for start in range(0, len(order), cfg.batch_size):
                yield order[start:start + cfg.batch_size]
            return
        shuffled_lengths = [lengths[i] for i in order]
        buckets = pack_buckets(shuffled_lengths, cfg.token_budget,
                               cfg.batch_size)
        for b in rng.permutation(len(buckets)):
            yield order[buckets[b]]


def _class_balance_weights(train: Sequence[CandidatePair]) -> np.ndarray:
    """Inverse-frequency class weights normalized to mean 1."""
    labels = np.array([p.label for p in train], dtype=np.int64)
    counts = np.bincount(labels, minlength=2).astype(np.float64)
    counts[counts == 0] = 1.0
    per_class = len(labels) / (2.0 * counts)
    return per_class[labels]
