"""MC-Dropout uncertainty and pseudo-label selection (paper Section 4.2).

A straightforward confidence threshold fails two ways: poorly calibrated
networks assign high confidence to wrong predictions, and the most confident
samples teach the student nothing. Instead we estimate *epistemic*
uncertainty with MC-Dropout [Gal & Ghahramani 2016]: run ``passes``
stochastic forward passes and take the standard deviation of the predicted
class's probability. Pseudo-labels are the Top-N_P *least uncertain*
unlabeled samples (Eq. 2) -- no threshold to tune.

The confidence and clustering selectors reproduced here are the Table 5
comparison strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.cluster.vq import kmeans2

from ..autograd import Module
from ..data.dataset import CandidatePair
from ..infer import EngineConfig, InferenceEngine
from ..obs import get_telemetry
from .trainer import predict_proba, stochastic_proba


def _worker_engine(workers: Optional[int],
                   batch_size: int) -> Optional[InferenceEngine]:
    """A transient engine when parallel scoring was requested without one."""
    if workers is None or workers <= 1:
        return None
    return InferenceEngine(EngineConfig(max_batch_pairs=batch_size,
                                        workers=workers))


@dataclass
class McDropoutResult:
    """Statistics of ``passes`` stochastic forward passes."""

    mean_probs: np.ndarray      # (N, 2) mean class probabilities
    labels: np.ndarray          # (N,) argmax of the mean
    uncertainty: np.ndarray     # (N,) std of the predicted class's probability
    all_probs: np.ndarray       # (passes, N, 2)

    def __len__(self) -> int:
        return len(self.labels)


def hard_labels(model: Module, probs: np.ndarray) -> np.ndarray:
    """Class decisions from probabilities, honouring the model's calibrated
    ``decision_threshold`` when present (set by the Trainer)."""
    threshold = getattr(model, "decision_threshold", None)
    if threshold is None:
        return probs.argmax(axis=1)
    return (probs[:, 1] > threshold).astype(np.int64)


def mc_dropout(model: Module, pairs: Sequence[CandidatePair],
               passes: int = 10, batch_size: int = 32,
               engine: Optional[InferenceEngine] = None,
               seed: int = 0, workers: Optional[int] = None) -> McDropoutResult:
    """Run MC-Dropout over ``pairs`` (paper default: 10 passes).

    With an ``engine``, all passes run as one tiled, length-bucketed forward
    per batch (vectorized MC-Dropout) with per-pass seeded dropout --
    bit-identical to the engine's sequential reference path. Without one,
    the legacy per-pass loop is used. ``workers`` (without an ``engine``)
    builds a transient engine that shards buckets over that many forked
    processes -- same bits, more cores.
    """
    if passes < 2:
        raise ValueError("MC-Dropout needs at least 2 stochastic passes")
    if engine is None:
        engine = _worker_engine(workers, batch_size)
    if not pairs:
        empty = np.zeros((0, 2))
        return McDropoutResult(empty, np.zeros(0, dtype=np.int64),
                               np.zeros(0), np.zeros((passes, 0, 2)))
    if engine is not None:
        stacked = engine.mc_dropout_proba(model, pairs, passes=passes,
                                          seed=seed)
    else:
        stacked = np.stack([
            stochastic_proba(model, pairs, batch_size=batch_size)
            for _ in range(passes)
        ])
    mean = stacked.mean(axis=0)
    labels = hard_labels(model, mean)
    rows = np.arange(len(labels))
    uncertainty = stacked[:, rows, labels].std(axis=0)
    tel = get_telemetry()
    if tel.enabled and len(labels):
        tel.metrics.counter("mc_dropout.sweeps").inc()
        tel.metrics.quantiles("mc_dropout.uncertainty").observe_many(
            uncertainty.tolist())
        tel.event("mc_dropout.stats", pairs=len(labels), passes=passes,
                  uncertainty_mean=float(uncertainty.mean()),
                  uncertainty_min=float(uncertainty.min()),
                  uncertainty_max=float(uncertainty.max()),
                  uncertainty_p50=float(np.quantile(uncertainty, 0.5)),
                  uncertainty_p90=float(np.quantile(uncertainty, 0.9)),
                  positive_fraction=float((labels == 1).mean()))
    return McDropoutResult(mean_probs=mean, labels=labels,
                           uncertainty=uncertainty, all_probs=stacked)


def top_n_count(total: int, ratio: float) -> int:
    """N_P = N_U * u_r (Eq. 2), clamped to the pool size."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    return min(total, max(1, int(round(total * ratio)))) if total else 0


def select_by_uncertainty(result: McDropoutResult, count: int) -> np.ndarray:
    """Indices of the ``count`` *least uncertain* samples (Eq. 2)."""
    count = min(count, len(result))
    return np.argsort(result.uncertainty, kind="stable")[:count]


def select_by_confidence(probs: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` most confident samples (the naive strategy)."""
    confidence = probs.max(axis=1)
    count = min(count, len(confidence))
    return np.argsort(-confidence, kind="stable")[:count]


def select_by_clustering(features: np.ndarray, count: int,
                         num_clusters: int = 2, seed: int = 0) -> np.ndarray:
    """Cluster the feature space and pick samples nearest their centroid.

    Following few-shot pseudo-labeling practice [Dopierre et al. 2020]:
    samples close to a cluster center are treated as prototypical and
    receive pseudo-labels first.
    """
    n = len(features)
    count = min(count, n)
    if n == 0 or count == 0:
        return np.zeros(0, dtype=np.int64)
    k = min(num_clusters, n)
    centroids, assignment = kmeans2(features.astype(np.float64), k,
                                    minit="points", seed=seed)
    distances = np.linalg.norm(features - centroids[assignment], axis=1)
    return np.argsort(distances, kind="stable")[:count]


@dataclass
class PseudoLabelSelection:
    """Outcome of one pseudo-labeling round."""

    indices: np.ndarray          # positions in the unlabeled pool
    pseudo_labels: np.ndarray    # teacher-assigned labels for those positions


def select_pseudo_labels(model: Module, unlabeled: Sequence[CandidatePair],
                         ratio: float = 0.1, passes: int = 10,
                         strategy: str = "uncertainty",
                         batch_size: int = 32,
                         features: Optional[np.ndarray] = None,
                         seed: int = 0,
                         engine: Optional[InferenceEngine] = None,
                         workers: Optional[int] = None,
                         ) -> PseudoLabelSelection:
    """Pick Top-N_P pseudo-labels from the unlabeled pool.

    ``strategy`` is one of ``uncertainty`` (the paper's), ``confidence``,
    or ``clustering`` (Table 5 alternatives). Clustering needs ``features``
    (e.g. pooled encoder states); it falls back to mean probabilities.
    ``engine`` routes the stochastic/eval forwards through the batched
    inference engine (cached encodings + vectorized MC-Dropout);
    ``workers`` (without an ``engine``) makes that transient engine shard
    its buckets across forked processes, selecting identical indices.
    """
    if engine is None:
        engine = _worker_engine(workers, batch_size)
    count = top_n_count(len(unlabeled), ratio)
    if count == 0:
        return PseudoLabelSelection(np.zeros(0, dtype=np.int64),
                                    np.zeros(0, dtype=np.int64))
    if strategy == "uncertainty":
        result = mc_dropout(model, unlabeled, passes=passes,
                            batch_size=batch_size, engine=engine, seed=seed)
        indices = select_by_uncertainty(result, count)
        labels = result.labels[indices]
    elif strategy == "confidence":
        probs = predict_proba(model, unlabeled, batch_size=batch_size,
                              engine=engine)
        indices = select_by_confidence(probs, count)
        labels = hard_labels(model, probs)[indices]
    elif strategy == "clustering":
        probs = predict_proba(model, unlabeled, batch_size=batch_size,
                              engine=engine)
        space = features if features is not None else probs
        indices = select_by_clustering(space, count, seed=seed)
        labels = hard_labels(model, probs)[indices]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return PseudoLabelSelection(indices=indices, pseudo_labels=labels)
