"""Label-word verbalizer (paper Section 3.1 + Eq. 1).

GEM's binary decision is expressed as a *general* relationship: ``yes`` maps
to {matched, similar, relevant} and ``no`` to {mismatched, different,
irrelevant}. The class score is the mean [MASK] probability over the class's
label words (Eq. 1). Figure 5 compares against the "simple" single-word sets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..autograd import Tensor, stack
from ..text import Vocabulary
from ..text.lexicon import (
    NEGATIVE_LABEL_WORDS, POSITIVE_LABEL_WORDS,
    SIMPLE_NEGATIVE_LABEL_WORDS, SIMPLE_POSITIVE_LABEL_WORDS,
)


class Verbalizer:
    """Maps binary classes to label-word id sets and scores them."""

    def __init__(self, vocab: Vocabulary,
                 positive_words: Sequence[str],
                 negative_words: Sequence[str]) -> None:
        if not positive_words or not negative_words:
            raise ValueError("both classes need at least one label word")
        self.vocab = vocab
        self.words: Dict[int, List[str]] = {
            0: list(negative_words), 1: list(positive_words)}
        self.ids: Dict[int, np.ndarray] = {}
        for label, words in self.words.items():
            missing = [w for w in words if w not in vocab]
            if missing:
                raise ValueError(
                    f"label words {missing} are out of vocabulary; the LM "
                    "cannot predict words it has never seen")
            self.ids[label] = np.array([vocab.id_of(w) for w in words],
                                       dtype=np.int64)
        overlap = set(self.ids[0]) & set(self.ids[1])
        if overlap:
            raise ValueError(f"label-word sets overlap on ids {sorted(overlap)}")

    @classmethod
    def designed(cls, vocab: Vocabulary) -> "Verbalizer":
        """The paper's GEM label words (general binary relationship)."""
        return cls(vocab, POSITIVE_LABEL_WORDS, NEGATIVE_LABEL_WORDS)

    @classmethod
    def simple(cls, vocab: Vocabulary) -> "Verbalizer":
        """matched / mismatched only (the Figure 5 baseline)."""
        return cls(vocab, SIMPLE_POSITIVE_LABEL_WORDS, SIMPLE_NEGATIVE_LABEL_WORDS)

    def class_probs(self, mask_probs: Tensor) -> Tensor:
        """Eq. 1: (B, V) mask-token probabilities -> (B, 2) class scores.

        ``P(y | x) = (1/m) * sum_j P([MASK] = w_j | T(x))`` -- the returned
        columns are ordered [negative, positive] and do *not* sum to one.
        """
        cols = []
        for label in (0, 1):
            ids = self.ids[label]
            cols.append(mask_probs[:, ids].mean(axis=1))
        return stack(cols, axis=1)
