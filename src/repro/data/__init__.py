"""Data substrate: records, serialization, datasets, blocking, generators."""

from .blocking import BlockingResult, OverlapBlocker, blocking_recall
from .dataset import (
    CandidatePair, DatasetStatistics, GEMDataset, LowResourceView, split_pairs,
)
from .generators import DATASET_NAMES, load_all, load_dataset, make_generator
from .io import (
    load_dataset_file, load_machamp_dir, save_dataset, save_machamp_dir,
)
from .minhash import MinHashBlocker, MinHasher
from .records import KINDS, RELATIONAL, SEMI, TEXT, EntityRecord, Table
from .serialize import serialize, serialize_pair

__all__ = [
    "EntityRecord", "Table", "KINDS", "RELATIONAL", "SEMI", "TEXT",
    "serialize", "serialize_pair",
    "CandidatePair", "GEMDataset", "LowResourceView", "DatasetStatistics",
    "split_pairs",
    "OverlapBlocker", "BlockingResult", "blocking_recall",
    "MinHashBlocker", "MinHasher",
    "DATASET_NAMES", "load_dataset", "load_all", "make_generator",
    "save_dataset", "load_dataset_file", "load_machamp_dir", "save_machamp_dir",
]
