"""Token-overlap blocking (the first stage of the classic EM workflow).

The paper focuses on *matching* and assumes candidate pairs already exist
(Section 2.1), but a complete system needs the blocking step: enumerate
left x right, keep pairs whose serialized token overlap clears a threshold,
reducing the quadratic candidate space while retaining recall.

For the dense (embedding-based) alternative that scales past token
postings, see :class:`repro.ann.DenseBlocker` and ``docs/BLOCKING.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..text.tokenizer import basic_tokenize
from .records import EntityRecord, Table
from .serialize import serialize

#: entries kept in the record_tokens memo below
_TOKEN_CACHE_CAP = 32768

_token_cache: "OrderedDict[tuple, FrozenSet[str]]" = OrderedDict()
_token_cache_lock = threading.Lock()


def record_tokens(record: EntityRecord) -> FrozenSet[str]:
    """Blocking token set of a record: serialized, markers and 1-char
    tokens dropped. Shared by :class:`OverlapBlocker` and the serving-side
    :class:`repro.serve.ServingIndex` so offline and online candidate
    generation agree on what counts as overlap.

    Memoized on record *content* (:meth:`EntityRecord.content_key`, like
    the engine's encoding cache): every ``OverlapBlocker.block`` sweep and
    every ``ServingIndex.add`` used to re-serialize and re-tokenize the
    same record.  Content addressing means a record replaced under an
    existing id can never be served the old version's token set.  The
    returned set is a shared frozenset -- callers must not mutate it.
    """
    key = record.content_key()
    with _token_cache_lock:
        tokens = _token_cache.get(key)
        if tokens is not None:
            _token_cache.move_to_end(key)
            return tokens
    tokens = frozenset(t for t in basic_tokenize(serialize(record))
                       if t not in ("[COL]", "[VAL]") and len(t) > 1)
    with _token_cache_lock:
        existing = _token_cache.get(key)
        if existing is not None:
            return existing
        _token_cache[key] = tokens
        if len(_token_cache) > _TOKEN_CACHE_CAP:
            _token_cache.popitem(last=False)
    return tokens


def clear_token_cache() -> None:
    """Drop the record_tokens memo (tests and memory-pressure hooks)."""
    with _token_cache_lock:
        _token_cache.clear()


@dataclass
class BlockingResult:
    """Candidate pairs surviving the blocker, plus bookkeeping for recall.

    ``recall_at_k`` is filled by blockers that can measure themselves
    against an exact reference (the dense blocker's ANN-vs-exact-top-k
    bookkeeping); token blockers leave it ``None``.
    """

    candidates: List[Tuple[EntityRecord, EntityRecord]]
    total_pairs: int
    recall_at_k: Optional[float] = None

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the cross product pruned.

        An empty cross product reports ``1.0`` by convention: with nothing
        to prune, "everything pruned" is vacuously true, and both the
        sparse and dense blockers agree on it (a ``0.0`` here used to make
        an empty sweep look like the blocker kept everything).
        """
        if self.total_pairs == 0:
            return 1.0
        return 1.0 - len(self.candidates) / self.total_pairs


class OverlapBlocker:
    """Inverted-index token blocker with an overlap-coefficient filter."""

    def __init__(self, threshold: float = 0.3, min_shared_tokens: int = 1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.min_shared_tokens = min_shared_tokens

    _tokens = staticmethod(record_tokens)

    def block(self, left: Table, right: Table) -> BlockingResult:
        """Return candidate pairs sharing enough tokens.

        The inverted-index walk already counts ``shared = |L intersect R|``
        per right record, so the overlap coefficient is computed directly
        as ``shared / min(|L|, |R|)`` -- re-intersecting the token sets per
        surviving candidate (the old :func:`overlap_coefficient` call)
        would redo exactly that work.
        """
        right_size: Dict[str, int] = {}
        index: Dict[str, List[str]] = defaultdict(list)
        for record in right:
            tokens = self._tokens(record)
            right_size[record.record_id] = len(tokens)
            for token in tokens:
                index[token].append(record.record_id)

        candidates: List[Tuple[EntityRecord, EntityRecord]] = []
        right_by_id = {r.record_id: r for r in right}
        for left_record in left:
            tokens = self._tokens(left_record)
            counts: Dict[str, int] = defaultdict(int)
            for token in tokens:
                for rid in index.get(token, ()):
                    counts[rid] += 1
            for rid, shared in counts.items():
                if shared < self.min_shared_tokens:
                    continue
                smaller = min(len(tokens), right_size[rid])
                score = shared / smaller if smaller else 0.0
                if score >= self.threshold:
                    candidates.append((left_record, right_by_id[rid]))
        return BlockingResult(candidates=candidates,
                              total_pairs=len(left) * len(right))


def blocking_recall(result: BlockingResult,
                    true_matches: List[Tuple[str, str]]) -> float:
    """Fraction of known matched (left_id, right_id) pairs the blocker kept."""
    if not true_matches:
        return 1.0
    kept = {(l.record_id, r.record_id) for l, r in result.candidates}
    hit = sum(1 for pair in true_matches if pair in kept)
    return hit / len(true_matches)
