"""Token-overlap blocking (the first stage of the classic EM workflow).

The paper focuses on *matching* and assumes candidate pairs already exist
(Section 2.1), but a complete system needs the blocking step: enumerate
left x right, keep pairs whose serialized token overlap clears a threshold,
reducing the quadratic candidate space while retaining recall.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..text.tokenizer import basic_tokenize
from .records import EntityRecord, Table
from .serialize import serialize


def record_tokens(record: EntityRecord) -> Set[str]:
    """Blocking token set of a record: serialized, markers and 1-char
    tokens dropped. Shared by :class:`OverlapBlocker` and the serving-side
    :class:`repro.serve.ServingIndex` so offline and online candidate
    generation agree on what counts as overlap."""
    return {t for t in basic_tokenize(serialize(record))
            if t not in ("[COL]", "[VAL]") and len(t) > 1}


@dataclass
class BlockingResult:
    """Candidate pairs surviving the blocker, plus bookkeeping for recall."""

    candidates: List[Tuple[EntityRecord, EntityRecord]]
    total_pairs: int

    @property
    def reduction_ratio(self) -> float:
        if self.total_pairs == 0:
            return 0.0
        return 1.0 - len(self.candidates) / self.total_pairs


class OverlapBlocker:
    """Inverted-index token blocker with an overlap-coefficient filter."""

    def __init__(self, threshold: float = 0.3, min_shared_tokens: int = 1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.min_shared_tokens = min_shared_tokens

    _tokens = staticmethod(record_tokens)

    def block(self, left: Table, right: Table) -> BlockingResult:
        """Return candidate pairs sharing enough tokens.

        The inverted-index walk already counts ``shared = |L intersect R|``
        per right record, so the overlap coefficient is computed directly
        as ``shared / min(|L|, |R|)`` -- re-intersecting the token sets per
        surviving candidate (the old :func:`overlap_coefficient` call)
        would redo exactly that work.
        """
        right_size: Dict[str, int] = {}
        index: Dict[str, List[str]] = defaultdict(list)
        for record in right:
            tokens = self._tokens(record)
            right_size[record.record_id] = len(tokens)
            for token in tokens:
                index[token].append(record.record_id)

        candidates: List[Tuple[EntityRecord, EntityRecord]] = []
        right_by_id = {r.record_id: r for r in right}
        for left_record in left:
            tokens = self._tokens(left_record)
            counts: Dict[str, int] = defaultdict(int)
            for token in tokens:
                for rid in index.get(token, ()):
                    counts[rid] += 1
            for rid, shared in counts.items():
                if shared < self.min_shared_tokens:
                    continue
                smaller = min(len(tokens), right_size[rid])
                score = shared / smaller if smaller else 0.0
                if score >= self.threshold:
                    candidates.append((left_record, right_by_id[rid]))
        return BlockingResult(candidates=candidates,
                              total_pairs=len(left) * len(right))


def blocking_recall(result: BlockingResult,
                    true_matches: List[Tuple[str, str]]) -> float:
    """Fraction of known matched (left_id, right_id) pairs the blocker kept."""
    if not true_matches:
        return 1.0
    kept = {(l.record_id, r.record_id) for l, r in result.candidates}
    hit = sum(1 for pair in true_matches if pair in kept)
    return hit / len(true_matches)
