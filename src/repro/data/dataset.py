"""GEM dataset container: candidate pairs, splits, low-resource sampling."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .records import EntityRecord, Table


@dataclass
class CandidatePair:
    """A candidate (left, right) pair with an optional binary label."""

    left: EntityRecord
    right: EntityRecord
    label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.label is not None and self.label not in (0, 1):
            raise ValueError(f"label must be 0, 1 or None, got {self.label!r}")

    def with_label(self, label: Optional[int]) -> "CandidatePair":
        return CandidatePair(self.left, self.right, label)


@dataclass
class DatasetStatistics:
    """The per-dataset numbers reported in the paper's Table 1."""

    name: str
    domain: str
    left_rows: int
    left_attrs: float
    right_rows: int
    right_attrs: float
    labeled: int
    rate: float
    train_low_resource: int


@dataclass
class GEMDataset:
    """A GEM benchmark: two tables plus labeled candidate-pair splits.

    ``train`` / ``valid`` / ``test`` are fully labeled. Low-resource
    experiments call :meth:`low_resource`, which keeps ``rate`` of the train
    pairs as labeled data and exposes the rest as the unlabeled pool that
    self-training consumes.
    """

    name: str
    domain: str
    left_table: Table
    right_table: Table
    train: List[CandidatePair] = field(default_factory=list)
    valid: List[CandidatePair] = field(default_factory=list)
    test: List[CandidatePair] = field(default_factory=list)
    default_rate: float = 0.10

    def __post_init__(self) -> None:
        for split_name, split in (("train", self.train), ("valid", self.valid),
                                  ("test", self.test)):
            for pair in split:
                if pair.label is None:
                    raise ValueError(f"{split_name} pair without a label in {self.name}")

    # ------------------------------------------------------------------
    @property
    def all_labeled(self) -> int:
        return len(self.train) + len(self.valid) + len(self.test)

    def positive_rate(self, split: str = "train") -> float:
        pairs = getattr(self, split)
        if not pairs:
            return 0.0
        return sum(p.label for p in pairs) / len(pairs)

    def statistics(self) -> DatasetStatistics:
        return DatasetStatistics(
            name=self.name,
            domain=self.domain,
            left_rows=len(self.left_table),
            left_attrs=round(self.left_table.avg_attributes(), 2),
            right_rows=len(self.right_table),
            right_attrs=round(self.right_table.avg_attributes(), 2),
            labeled=self.all_labeled,
            rate=self.default_rate,
            train_low_resource=self.low_resource_size(),
        )

    def low_resource_size(self, rate: Optional[float] = None) -> int:
        rate = rate if rate is not None else self.default_rate
        return max(2, int(round(len(self.train) * rate)))

    # ------------------------------------------------------------------
    def low_resource(self, rate: Optional[float] = None,
                     seed: int = 0) -> "LowResourceView":
        """Stratified subsample of the train split.

        Returns a view with ``labeled`` (size = rate * |train|, at least one
        pair per class when available) and ``unlabeled`` (the remaining train
        pairs with labels hidden; their true labels are retained separately
        for pseudo-label quality evaluation, Table 5).
        """
        rate = rate if rate is not None else self.default_rate
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        return self.low_resource_count(self.low_resource_size(rate), seed=seed)

    def low_resource_count(self, count: int, seed: int = 0) -> "LowResourceView":
        """Low-resource view with an explicit labeled-budget (paper Table 3)."""
        count = min(count, len(self.train))
        if count < 2:
            raise ValueError("need at least 2 labeled pairs")
        rng = np.random.default_rng(seed)
        positives = [i for i, p in enumerate(self.train) if p.label == 1]
        negatives = [i for i, p in enumerate(self.train) if p.label == 0]
        rng.shuffle(positives)
        rng.shuffle(negatives)

        # Stratified allocation, guaranteeing >= 1 of each class if present.
        n_pos = int(round(count * len(positives) / max(len(self.train), 1)))
        n_pos = min(max(n_pos, 1 if positives else 0), len(positives))
        n_neg = min(count - n_pos, len(negatives))
        chosen = sorted(positives[:n_pos] + negatives[:n_neg])
        chosen_set = set(chosen)
        labeled = [self.train[i] for i in chosen]
        hidden = [self.train[i] for i in range(len(self.train))
                  if i not in chosen_set]
        unlabeled = [p.with_label(None) for p in hidden]
        true_labels = [p.label for p in hidden]
        return LowResourceView(
            dataset=self, rate=count / max(len(self.train), 1), seed=seed,
            labeled=labeled, unlabeled=unlabeled,
            unlabeled_true_labels=true_labels)


@dataclass
class LowResourceView:
    """A low-resource training configuration over a parent dataset."""

    dataset: GEMDataset
    rate: float
    seed: int
    labeled: List[CandidatePair]
    unlabeled: List[CandidatePair]
    unlabeled_true_labels: List[int]

    @property
    def valid(self) -> List[CandidatePair]:
        return self.dataset.valid

    @property
    def test(self) -> List[CandidatePair]:
        return self.dataset.test

    @property
    def name(self) -> str:
        return self.dataset.name


def split_pairs(pairs: Sequence[CandidatePair], seed: int = 0,
                fractions: Tuple[float, float, float] = (0.6, 0.2, 0.2)):
    """Shuffle and split labeled pairs into (train, valid, test).

    Stratified by label so every split sees both classes.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to 1")
    rng = np.random.default_rng(seed)
    by_label: Dict[int, List[CandidatePair]] = {0: [], 1: []}
    for pair in pairs:
        if pair.label is None:
            raise ValueError("cannot split unlabeled pairs")
        by_label[pair.label].append(pair)
    train: List[CandidatePair] = []
    valid: List[CandidatePair] = []
    test: List[CandidatePair] = []
    for label_pairs in by_label.values():
        idx = rng.permutation(len(label_pairs))
        n = len(label_pairs)
        n_train = int(round(n * fractions[0]))
        n_valid = int(round(n * fractions[1]))
        for j, i in enumerate(idx):
            if j < n_train:
                train.append(label_pairs[i])
            elif j < n_train + n_valid:
                valid.append(label_pairs[i])
            else:
                test.append(label_pairs[i])
    rng.shuffle(train)
    rng.shuffle(valid)
    rng.shuffle(test)
    return train, valid, test
