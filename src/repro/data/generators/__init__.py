"""The eight paper benchmarks as deterministic synthetic generators."""

from .base import BenchmarkGenerator, GeneratorConfig
from .books import SemiHeterGenerator
from .citations import RelTextGenerator, SemiHomoGenerator
from .geo import GeoHeterGenerator
from .movies import SemiRelGenerator
from .products import SemiTextCGenerator, SemiTextWGenerator
from .registry import DATASET_NAMES, load_all, load_dataset, make_generator
from .restaurants import RelHeterGenerator

__all__ = [
    "BenchmarkGenerator", "GeneratorConfig",
    "RelHeterGenerator", "SemiHomoGenerator", "SemiHeterGenerator",
    "SemiRelGenerator", "SemiTextWGenerator", "SemiTextCGenerator",
    "RelTextGenerator", "GeoHeterGenerator",
    "DATASET_NAMES", "load_dataset", "load_all", "make_generator",
]
