"""Shared benchmark-generation machinery.

Every synthetic benchmark follows the same recipe, mirroring how the Machamp
datasets were assembled:

1. sample ``num_entities`` base entities from the domain;
2. for a fraction of them, synthesize a *sibling*: a different real-world
   entity that shares most surface text (book editions, restaurant chains,
   paper revisions) -- these become the hard negatives that make matching
   non-trivial;
3. emit the left table (one record per entity, left format) and the right
   table (a corrupted variant per entity, right format, plus unmatched
   distractor rows so the two tables differ in size);
4. label candidate pairs: (i, i) positives, (i, sibling(i)) hard negatives,
   plus random negatives;
5. split 60/20/20 stratified by label.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..dataset import CandidatePair, GEMDataset, split_pairs
from ..records import EntityRecord, Table


@dataclass(frozen=True)
class GeneratorConfig:
    """Size / difficulty knobs shared by all benchmark generators."""

    num_entities: int = 120
    sibling_fraction: float = 0.5
    hard_negatives_per_entity: int = 1
    random_negatives_per_entity: int = 2
    extra_right_rows: int = 40
    corruption_strength: float = 0.5
    seed: int = 0


class BenchmarkGenerator(ABC):
    """Base class: subclasses define the domain and the two record formats."""

    name: str = ""
    domain: str = ""
    default_rate: float = 0.10
    left_kind: str = "relational"
    right_kind: str = "relational"

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config if config is not None else GeneratorConfig()

    # ------------------------------------------------------------------
    # Domain hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        """Sample the canonical attribute dict of one real-world entity."""

    @abstractmethod
    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        """A *different* entity that looks confusingly similar to ``base``."""

    @abstractmethod
    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        """Render an entity in the left table's format (clean)."""

    @abstractmethod
    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        """Render an entity in the right table's format.

        ``corrupt=True`` for matched counterparts (dirty duplicates);
        ``corrupt=False`` for distractor rows.
        """

    # ------------------------------------------------------------------
    def build(self, seed: Optional[int] = None) -> GEMDataset:
        """Generate the full benchmark deterministically."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed if seed is None else seed)

        entities = [self.make_entity(rng, i) for i in range(cfg.num_entities)]
        sibling_of: Dict[int, int] = {}
        for i in range(cfg.num_entities):
            if rng.random() < cfg.sibling_fraction:
                sibling = self.make_sibling(rng, entities[i])
                sibling_of[i] = len(entities)
                entities.append(sibling)

        n = len(entities)
        left_records = [self.left_record(rng, e, f"l{i}") for i, e in enumerate(entities)]
        right_records = [self.right_record(rng, e, f"r{i}", corrupt=True)
                         for i, e in enumerate(entities)]
        # Distractor rows make the right table larger, as in every Machamp
        # dataset (Table 1 row counts differ between sides).
        offset = len(right_records)
        for j in range(cfg.extra_right_rows):
            extra = self.make_entity(rng, cfg.num_entities + j)
            right_records.append(
                self.right_record(rng, extra, f"r{offset + j}", corrupt=False))

        left_table = Table(name=f"{self.name}-left", kind=self.left_kind,
                           records=left_records)
        right_table = Table(name=f"{self.name}-right", kind=self.right_kind,
                            records=right_records)

        pairs: List[CandidatePair] = []
        seen: set = set()

        def add(li: int, ri: int, label: int) -> None:
            key = (li, ri)
            if key in seen:
                return
            seen.add(key)
            pairs.append(CandidatePair(left_records[li], right_records[ri], label))

        for i in range(n):
            add(i, i, 1)
            for _ in range(cfg.hard_negatives_per_entity):
                if i in sibling_of:
                    # Both directions: the base paired with the sibling's
                    # right-side rendering, and vice versa.
                    add(i, sibling_of[i], 0)
                    add(sibling_of[i], i, 0)
                elif i > 0:
                    add(i, int(rng.integers(i)), 0)
            for _ in range(cfg.random_negatives_per_entity):
                j = int(rng.integers(len(right_records)))
                if j != i:
                    add(i, j, 0)

        train, valid, test = split_pairs(pairs, seed=rng.integers(2**31))
        return GEMDataset(
            name=self.name, domain=self.domain,
            left_table=left_table, right_table=right_table,
            train=train, valid=valid, test=test,
            default_rate=self.default_rate)
