"""SEMI-HETER: book matching with digit-dominated attributes.

The paper singles this dataset out (Section 5.2 and Appendix C): ~53% of
attribute values are digits (ISBN, dates, page counts, prices), and the
discriminative attribute between editions is the ISBN -- exactly the kind of
signal language models are bad at. We reproduce that structure: sibling
entities are *editions* sharing title and author, distinguished only by
digit-valued fields, so token-overlap methods (TDmatch) beat LM methods here.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, digit_string, jitter_int, phrase, pick


class SemiHeterGenerator(BenchmarkGenerator):
    """Books across two heterogeneous semi-structured schemas."""

    name = "SEMI-HETER"
    domain = "book"
    default_rate = 0.10
    left_kind = "semi"
    right_kind = "semi"

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return {
            "title": phrase(rng, lexicon.BOOK_TITLE_WORDS, 3, 6),
            "author": " ".join(pick(rng, lexicon.AUTHOR_NAMES,
                                    n=int(rng.integers(1, 3)))),
            "isbn": "978" + digit_string(rng, 10),
            "publisher": str(rng.choice(lexicon.PUBLISHERS)),
            "pub_date": (f"{int(rng.integers(1, 13)):02d} "
                         f"{int(rng.integers(1, 29)):02d} "
                         f"{int(rng.integers(1995, 2022))}"),
            "pages": int(rng.integers(120, 900)),
            "price": f"{int(rng.integers(10, 90))} 99",
            "product_type": str(rng.choice(["paperback", "hardcover", "ebook"])),
            "edition": int(rng.integers(1, 5)),
            "product_id": digit_string(rng, 8),
            "weight": int(rng.integers(200, 1500)),
        }

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        # Another *edition*: identical title/author/publisher, but a distinct
        # ISBN, date, page count -- only digits separate the two entities.
        sibling = dict(base)
        sibling["isbn"] = "978" + digit_string(rng, 10)
        sibling["pub_date"] = (f"{int(rng.integers(1, 13)):02d} "
                               f"{int(rng.integers(1, 29)):02d} "
                               f"{int(rng.integers(1995, 2022))}")
        sibling["pages"] = jitter_int(rng, base["pages"], spread=80)
        sibling["edition"] = base["edition"] + 1
        sibling["price"] = f"{int(rng.integers(10, 90))} 99"
        sibling["product_id"] = digit_string(rng, 8)
        sibling["weight"] = jitter_int(rng, base["weight"], spread=150)
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        return EntityRecord(record_id=record_id, kind="semi", values={
            "Title": entity["title"],
            "Author": entity["author"],
            "ISBN": entity["isbn"],
            "Publisher": entity["publisher"],
            "PublicationDate": entity["pub_date"],
            "Pages": entity["pages"],
            "price": entity["price"],
            "ProductType": entity["product_type"],
            "Edition": entity["edition"],
            "ProductID": entity["product_id"],
            "WeightGrams": entity["weight"],
        })

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        strength = self.config.corruption_strength if corrupt else 0.0
        title = corrupt_text(rng, entity["title"], strength * 0.6) if corrupt else entity["title"]
        # Heterogeneous schema with nested publication metadata.
        return EntityRecord(record_id=record_id, kind="semi", values={
            "name": title,
            "writers": entity["author"],
            "identifiers": {
                "isbn13": entity["isbn"],
                "edition_number": entity["edition"],
            },
            "publication": {
                "house": entity["publisher"],
                "date": entity["pub_date"],
            },
            "pagecount": entity["pages"],
            "cost": entity["price"],
            "format": entity["product_type"],
            "item_number": entity["product_id"],
            "shipping_weight": entity["weight"],
        })
