"""Citation-domain benchmarks: SEMI-HOMO and REL-TEXT.

* SEMI-HOMO -- both tables semi-structured with the *same* schema (title,
  authors list, venue, year, pages); the classic bibliography-deduplication
  task with nested list attributes.
* REL-TEXT -- the paper's Figure 1 motivating scenario: one side is a free
  text abstract, the other is relational paper metadata; a format-crossing
  match no schema alignment can bridge.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, jitter_int, phrase, pick


def _paper_entity(rng: np.random.Generator) -> Dict[str, Any]:
    return {
        "title": phrase(rng, lexicon.RESEARCH_TOPICS, 3, 6),
        "authors": pick(rng, lexicon.AUTHOR_NAMES, n=int(rng.integers(1, 4))),
        "venue": str(rng.choice(lexicon.VENUES)),
        "year": int(rng.integers(1995, 2022)),
        "pages": int(rng.integers(6, 30)),
    }


def _paper_sibling(rng: np.random.Generator, base: Dict[str, Any]) -> Dict[str, Any]:
    # The extended/journal version of a paper: same authors, overlapping
    # title, different venue and year -- a different publication record.
    sibling = dict(base)
    sibling["title"] = base["title"] + " " + phrase(rng, lexicon.RESEARCH_TOPICS, 1, 2)
    venues = [v for v in lexicon.VENUES if v != base["venue"]]
    sibling["venue"] = str(rng.choice(venues))
    sibling["year"] = jitter_int(rng, base["year"], spread=2)
    sibling["pages"] = int(rng.integers(6, 30))
    return sibling


class SemiHomoGenerator(BenchmarkGenerator):
    """Citation records with homogeneous semi-structured schemas."""

    name = "SEMI-HOMO"
    domain = "citation"
    default_rate = 0.05
    left_kind = "semi"
    right_kind = "semi"

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return _paper_entity(rng)

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        return _paper_sibling(rng, base)

    def _record(self, rng: np.random.Generator, entity: Dict[str, Any],
                record_id: str, strength: float) -> EntityRecord:
        title = corrupt_text(rng, entity["title"], strength) if strength else entity["title"]
        authors: List[str] = list(entity["authors"])
        if strength and len(authors) > 1 and rng.random() < 0.3:
            authors = authors[:-1]  # et-al truncation
        return EntityRecord(record_id=record_id, kind="semi", values={
            "title": title,
            "authors": authors,
            "venue": entity["venue"],
            "year": entity["year"],
            "pages": entity["pages"],
        })

    def left_record(self, rng, entity, record_id):
        return self._record(rng, entity, record_id, strength=0.0)

    def right_record(self, rng, entity, record_id, corrupt):
        strength = self.config.corruption_strength if corrupt else 0.0
        return self._record(rng, entity, record_id, strength)


class RelTextGenerator(BenchmarkGenerator):
    """Textual abstracts (left) vs relational metadata (right)."""

    name = "REL-TEXT"
    domain = "citation"
    default_rate = 0.10
    left_kind = "text"
    right_kind = "relational"

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        entity = _paper_entity(rng)
        entity["topic_words"] = pick(rng, lexicon.RESEARCH_TOPICS,
                                     n=int(rng.integers(4, 8)))
        return entity

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        sibling = _paper_sibling(rng, base)
        # Related-work abstract: shares topic vocabulary with the base paper.
        overlap = list(base["topic_words"])[: int(rng.integers(1, 4))]
        sibling["topic_words"] = overlap + pick(
            rng, lexicon.RESEARCH_TOPICS, n=int(rng.integers(2, 5)))
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        # The abstract paraphrases the title and sprinkles topic words --
        # relevance, not string equality, links it to the metadata row.
        glue = lexicon.GLUE_WORDS
        words = []
        title_words = entity["title"].split()
        for word in title_words:
            words.append(word)
            if rng.random() < 0.4:
                words.append(str(rng.choice(glue)))
        words += ["about"] + list(entity["topic_words"])
        words += ["by", entity["authors"][0]]
        return EntityRecord.text_record(record_id, " ".join(words))

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        strength = self.config.corruption_strength if corrupt else 0.0
        title = corrupt_text(rng, entity["title"], strength) if corrupt else entity["title"]
        return EntityRecord(record_id=record_id, kind="relational", values={
            "title": title,
            "authors": " ".join(entity["authors"]),
            "venue": entity["venue"],
            "year": entity["year"],
            "pages": entity["pages"],
            "type": "conference paper",
        })
