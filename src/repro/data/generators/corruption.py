"""Textual corruption operators used to create realistic duplicate variants.

Matching datasets are hard because the same real-world entity is written
differently in each source: words dropped, typos, abbreviations, reordered
fields, jittered numbers. These operators synthesize exactly those artifacts.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def drop_words(rng: np.random.Generator, text: str, p: float = 0.2) -> str:
    """Randomly drop words (never all of them)."""
    words = text.split()
    if len(words) <= 1:
        return text
    kept = [w for w in words if rng.random() >= p]
    if not kept:
        kept = [words[int(rng.integers(len(words)))]]
    return " ".join(kept)


def swap_adjacent_words(rng: np.random.Generator, text: str) -> str:
    words = text.split()
    if len(words) < 2:
        return text
    i = int(rng.integers(len(words) - 1))
    words[i], words[i + 1] = words[i + 1], words[i]
    return " ".join(words)


def typo(rng: np.random.Generator, text: str) -> str:
    """One character-level edit: substitution, deletion, or transposition."""
    if len(text) < 2:
        return text
    chars = list(text)
    i = int(rng.integers(len(chars) - 1))
    kind = rng.random()
    if kind < 0.34:
        chars[i] = chr(ord("a") + int(rng.integers(26)))
    elif kind < 0.67:
        del chars[i]
    else:
        chars[i], chars[i + 1] = chars[i + 1], chars[i]
    return "".join(chars)


def abbreviate(rng: np.random.Generator, text: str) -> str:
    """Abbreviate one multi-letter word to its initial."""
    words = text.split()
    candidates = [i for i, w in enumerate(words) if len(w) > 3]
    if not candidates:
        return text
    i = candidates[int(rng.integers(len(candidates)))]
    words[i] = words[i][0]
    return " ".join(words)


def corrupt_text(rng: np.random.Generator, text: str,
                 strength: float = 0.5) -> str:
    """Compose a random subset of the operators, scaled by ``strength``."""
    out = text
    if rng.random() < strength:
        out = drop_words(rng, out, p=0.15 * strength + 0.05)
    if rng.random() < strength * 0.6:
        out = swap_adjacent_words(rng, out)
    if rng.random() < strength * 0.5:
        out = typo(rng, out)
    if rng.random() < strength * 0.3:
        out = abbreviate(rng, out)
    return out if out.strip() else text


def jitter_int(rng: np.random.Generator, value: int, spread: int = 1) -> int:
    """Shift an integer by up to ±spread (e.g. off-by-one years, page counts)."""
    return int(value + rng.integers(-spread, spread + 1))


def digit_string(rng: np.random.Generator, length: int) -> str:
    """A random fixed-length digit string (ISBNs, phone numbers, ids)."""
    return "".join(str(d) for d in rng.integers(0, 10, size=length))


def pick(rng: np.random.Generator, pool: Sequence[str], n: int = 1,
         distinct: bool = True) -> List[str]:
    """Sample ``n`` words from a pool."""
    n = min(n, len(pool)) if distinct else n
    chosen = rng.choice(pool, size=n, replace=not distinct)
    return [str(c) for c in chosen]


def phrase(rng: np.random.Generator, pool: Sequence[str], low: int, high: int) -> str:
    """A space-joined phrase of ``low``..``high`` distinct pool words."""
    n = int(rng.integers(low, high + 1))
    return " ".join(pick(rng, pool, n=n))
