"""GEO-HETER: geospatial points of interest with heterogeneous schemas.

Derived from the OSM-FSQ style of [Balsebre et al. 2022]: the left source
keeps latitude/longitude as separate attributes while the right source
merges them into a single "position" attribute (the paper's Appendix E
construction), making the schemas heterogeneous.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, phrase


class GeoHeterGenerator(BenchmarkGenerator):
    """Points of interest across two gazetteers."""

    name = "GEO-HETER"
    domain = "geo-spatial"
    default_rate = 0.10
    left_kind = "relational"
    right_kind = "relational"

    #: City-block scale in degrees -- matched POIs jitter within this range,
    #: sibling POIs sit a few blocks away.
    JITTER = 0.002

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return {
            "name": phrase(rng, lexicon.POI_NAMES + lexicon.STREETS, 2, 3),
            "lat": round(float(rng.uniform(40.35, 40.50)), 4),
            "lon": round(float(rng.uniform(-80.05, -79.90)), 4),
            "category": str(rng.choice(lexicon.POI_CATEGORIES)),
            "street": f"{int(rng.integers(1, 999))} {rng.choice(lexicon.STREETS)} street",
        }

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        # A different venue on the same street with a related name -- close
        # in space and in text, but not the same place.
        sibling = dict(base)
        sibling["name"] = base["name"].split()[0] + " " + str(
            rng.choice(lexicon.POI_NAMES))
        sibling["lat"] = round(base["lat"] + float(rng.uniform(3, 10)) * self.JITTER, 4)
        sibling["lon"] = round(base["lon"] + float(rng.uniform(3, 10)) * self.JITTER, 4)
        sibling["category"] = str(rng.choice(lexicon.POI_CATEGORIES))
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        return EntityRecord(record_id=record_id, kind="relational", values={
            "name": entity["name"],
            "latitude": entity["lat"],
            "longitude": entity["lon"],
            "category": entity["category"],
            "address": entity["street"],
        })

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        strength = self.config.corruption_strength if corrupt else 0.0
        name = corrupt_text(rng, entity["name"], strength) if corrupt else entity["name"]
        lat, lon = entity["lat"], entity["lon"]
        if corrupt:
            # GPS noise between the two gazetteers.
            lat = round(lat + float(rng.uniform(-1, 1)) * self.JITTER, 4)
            lon = round(lon + float(rng.uniform(-1, 1)) * self.JITTER, 4)
        return EntityRecord(record_id=record_id, kind="relational", values={
            "title": name,
            "position": f"{lat} {lon}",
            "type": entity["category"],
            "where": entity["street"],
        })
