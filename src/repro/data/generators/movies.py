"""SEMI-REL: movies, semi-structured (nested) left vs relational right."""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, jitter_int, phrase, pick


class SemiRelGenerator(BenchmarkGenerator):
    """Movie matching: nested JSON records against a wide flat table."""

    name = "SEMI-REL"
    domain = "movie"
    default_rate = 0.10
    left_kind = "semi"
    right_kind = "relational"

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return {
            "title": phrase(rng, lexicon.MOVIE_TITLE_WORDS, 2, 4),
            "year": int(rng.integers(1970, 2022)),
            "director": str(rng.choice(lexicon.DIRECTOR_NAMES)),
            "lead": str(rng.choice(lexicon.DIRECTOR_NAMES)),
            "support": pick(rng, lexicon.DIRECTOR_NAMES, n=2),
            "genres": pick(rng, lexicon.GENRES, n=int(rng.integers(1, 3))),
            "runtime": int(rng.integers(80, 190)),
            "country": str(rng.choice(["usa", "uk", "france", "japan", "india"])),
            "rating": round(float(rng.uniform(3.0, 9.5)), 1),
        }

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        # The remake: same title, different decade and crew.
        sibling = dict(base)
        sibling["year"] = jitter_int(rng, base["year"], spread=15)
        sibling["director"] = str(rng.choice(lexicon.DIRECTOR_NAMES))
        sibling["lead"] = str(rng.choice(lexicon.DIRECTOR_NAMES))
        sibling["runtime"] = int(rng.integers(80, 190))
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        # Nested cast structure exercises the recursive serializer
        # (Section 2.2: "[f]or nested attributes, we recursively add the
        # [COL] and [VAL] tags").
        return EntityRecord(record_id=record_id, kind="semi", values={
            "title": entity["title"],
            "year": entity["year"],
            "cast": {
                "director": entity["director"],
                "lead": entity["lead"],
                "supporting": entity["support"],
            },
            "genres": entity["genres"],
        })

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        strength = self.config.corruption_strength if corrupt else 0.0
        title = corrupt_text(rng, entity["title"], strength) if corrupt else entity["title"]
        return EntityRecord(record_id=record_id, kind="relational", values={
            "name": title,
            "release_year": entity["year"],
            "directed_by": entity["director"],
            "starring": entity["lead"],
            "co_stars": " ".join(entity["support"]),
            "genre": " ".join(entity["genres"]),
            "runtime_minutes": entity["runtime"],
            "country": entity["country"],
            "score": entity["rating"],
            "source": "imdb",
        })
