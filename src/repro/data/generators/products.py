"""SEMI-TEXT-w / SEMI-TEXT-c: product specs vs free-text descriptions.

Both variants pair a semi-structured spec sheet with an unstructured
marketing description. These are the hardest datasets in the paper (F1 in
the 20s-70s): the description mentions only a noisy subset of the spec, and
sibling entities are model-number variants of the same product line. The two
variants differ in size and description noise ("w"atches is smaller and
noisier than "c"omputers in Machamp; we keep the size/hardness relationship).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, digit_string, pick


class _SemiTextBase(BenchmarkGenerator):
    """Shared machinery for both SEMI-TEXT variants."""

    domain = "product"
    left_kind = "semi"
    right_kind = "text"
    description_noise: float = 0.5
    attr_mention_prob: float = 0.7

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return {
            "brand": str(rng.choice(lexicon.PRODUCT_BRANDS)),
            "category": str(rng.choice(lexicon.PRODUCT_TYPES)),
            "model": (str(rng.choice(lexicon.PRODUCT_ADJECTIVES))
                      + " " + digit_string(rng, 3)),
            "features": pick(rng, lexicon.PRODUCT_ADJECTIVES,
                             n=int(rng.integers(2, 5))),
            "color": str(rng.choice(["black", "white", "silver", "blue", "red"])),
            "weight": f"{int(rng.integers(1, 40))} ounces",
            "price": f"{int(rng.integers(15, 900))} dollars",
            "warranty": f"{int(rng.integers(1, 4))} years",
            "stock": str(rng.choice(["available", "limited", "preorder"])),
            "sku": digit_string(rng, 6),
        }

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        # The next model in the same product line: everything matches except
        # the model number and a feature or two.
        sibling = dict(base)
        sibling["model"] = base["model"].rsplit(" ", 1)[0] + " " + digit_string(rng, 3)
        sibling["features"] = pick(rng, lexicon.PRODUCT_ADJECTIVES,
                                   n=int(rng.integers(2, 5)))
        sibling["sku"] = digit_string(rng, 6)
        sibling["price"] = f"{int(rng.integers(15, 900))} dollars"
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        return EntityRecord(record_id=record_id, kind="semi", values={
            "brand": entity["brand"],
            "category": entity["category"],
            "model": entity["model"],
            "features": list(entity["features"]),
            "color": entity["color"],
            "weight": entity["weight"],
            "price": entity["price"],
            "warranty": entity["warranty"],
            "availability": entity["stock"],
            "sku": entity["sku"],
        })

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        words: List[str] = []
        mention = self.attr_mention_prob

        def maybe(text: str, p: float = None) -> None:
            if rng.random() < (mention if p is None else p):
                words.extend(text.split())

        maybe(f"the {entity['brand']} {entity['model']}", p=0.95)
        maybe(f"is a {entity['color']} {entity['category']}")
        maybe(" ".join(entity["features"]))
        maybe(f"weighs {entity['weight']}")
        maybe(f"priced at {entity['price']}")
        maybe(f"with {entity['warranty']} warranty", p=0.4)
        maybe("great for everyday use and travel", p=0.5)
        text = " ".join(words) if words else f"{entity['brand']} {entity['category']}"
        if corrupt:
            text = corrupt_text(rng, text, self.description_noise)
        return EntityRecord.text_record(record_id, text)


class SemiTextWGenerator(_SemiTextBase):
    """The smaller, noisier variant (paper: watches)."""

    name = "SEMI-TEXT-w"
    default_rate = 0.10
    description_noise = 0.85
    attr_mention_prob = 0.5


class SemiTextCGenerator(_SemiTextBase):
    """The larger, cleaner variant (paper: computers)."""

    name = "SEMI-TEXT-c"
    default_rate = 0.05
    description_noise = 0.55
    attr_mention_prob = 0.7
