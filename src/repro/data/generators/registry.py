"""Registry of the eight paper benchmarks with their default sizes.

Sizes are scaled down from Machamp (Table 1) so the full evaluation runs on
a CPU, preserving the *relative* proportions: SEMI-HOMO and SEMI-TEXT-c are
the largest and use a 5% rate; REL-HETER is the smallest; the right table is
always larger than the left.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..dataset import GEMDataset
from .base import BenchmarkGenerator, GeneratorConfig
from .books import SemiHeterGenerator
from .citations import RelTextGenerator, SemiHomoGenerator
from .geo import GeoHeterGenerator
from .movies import SemiRelGenerator
from .products import SemiTextCGenerator, SemiTextWGenerator
from .restaurants import RelHeterGenerator

_REGISTRY: Dict[str, Tuple[type, GeneratorConfig]] = {
    "REL-HETER": (RelHeterGenerator, GeneratorConfig(
        num_entities=40, extra_right_rows=16, seed=101)),
    "SEMI-HOMO": (SemiHomoGenerator, GeneratorConfig(
        num_entities=110, extra_right_rows=60, seed=102)),
    "SEMI-HETER": (SemiHeterGenerator, GeneratorConfig(
        num_entities=80, extra_right_rows=30, seed=103,
        sibling_fraction=0.7, random_negatives_per_entity=1)),
    "SEMI-REL": (SemiRelGenerator, GeneratorConfig(
        num_entities=85, extra_right_rows=35, seed=104)),
    "SEMI-TEXT-w": (SemiTextWGenerator, GeneratorConfig(
        num_entities=90, extra_right_rows=30, seed=105,
        corruption_strength=0.8)),
    "SEMI-TEXT-c": (SemiTextCGenerator, GeneratorConfig(
        num_entities=120, extra_right_rows=45, seed=106,
        corruption_strength=0.6)),
    "REL-TEXT": (RelTextGenerator, GeneratorConfig(
        num_entities=95, extra_right_rows=35, seed=107,
        corruption_strength=0.6)),
    "GEO-HETER": (GeoHeterGenerator, GeneratorConfig(
        num_entities=65, extra_right_rows=25, seed=108)),
}

#: Order used by every table in the paper.
DATASET_NAMES: List[str] = list(_REGISTRY)

_CACHE: Dict[str, GEMDataset] = {}


def make_generator(name: str) -> BenchmarkGenerator:
    """Instantiate the generator for a named benchmark."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {DATASET_NAMES}")
    cls, config = _REGISTRY[name]
    return cls(config)


def load_dataset(name: str, cache: bool = True) -> GEMDataset:
    """Build (or fetch from the in-process cache) a named benchmark."""
    if cache and name in _CACHE:
        return _CACHE[name]
    dataset = make_generator(name).build()
    if cache:
        _CACHE[name] = dataset
    return dataset


def load_all(cache: bool = True) -> Dict[str, GEMDataset]:
    return {name: load_dataset(name, cache=cache) for name in DATASET_NAMES}
