"""REL-HETER: restaurant matching across two relational schemas.

Left and right tables are both relational but *heterogeneous*: attribute
names differ entirely (name/cuisine/city vs title/food_type/location), so
schema alignment is impossible without understanding values -- the scenario
traditional EM cannot handle (paper Section 1).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ...text import lexicon
from ..records import EntityRecord
from .base import BenchmarkGenerator
from .corruption import corrupt_text, digit_string, phrase, pick


class RelHeterGenerator(BenchmarkGenerator):
    """Restaurant dataset with heterogeneous relational schemas."""

    name = "REL-HETER"
    domain = "restaurant"
    default_rate = 0.10
    left_kind = "relational"
    right_kind = "relational"

    def make_entity(self, rng: np.random.Generator, index: int) -> Dict[str, Any]:
        return {
            "name": phrase(rng, lexicon.RESTAURANT_NAMES, 2, 3),
            "cuisine": str(rng.choice(lexicon.CUISINES)),
            "city": str(rng.choice(lexicon.CITIES)),
            "street": f"{int(rng.integers(1, 999))} {rng.choice(lexicon.STREETS)} street",
            "phone": digit_string(rng, 7),
            "price": f"{int(rng.integers(1, 9)) * 10} dollars",
        }

    def make_sibling(self, rng: np.random.Generator,
                     base: Dict[str, Any]) -> Dict[str, Any]:
        # Same chain in another city: identical name + cuisine, everything
        # location-specific differs.
        sibling = dict(base)
        cities = [c for c in lexicon.CITIES if c != base["city"]]
        sibling["city"] = str(rng.choice(cities))
        sibling["street"] = f"{int(rng.integers(1, 999))} {rng.choice(lexicon.STREETS)} street"
        sibling["phone"] = digit_string(rng, 7)
        return sibling

    def left_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                    record_id: str) -> EntityRecord:
        return EntityRecord(record_id=record_id, kind="relational", values={
            "name": entity["name"],
            "cuisine": entity["cuisine"],
            "city": entity["city"],
            "street": entity["street"],
            "phone": entity["phone"],
            "price": entity["price"],
        })

    def right_record(self, rng: np.random.Generator, entity: Dict[str, Any],
                     record_id: str, corrupt: bool) -> EntityRecord:
        strength = self.config.corruption_strength if corrupt else 0.0
        name = corrupt_text(rng, entity["name"], strength) if corrupt else entity["name"]
        return EntityRecord(record_id=record_id, kind="relational", values={
            "title": name,
            "food_type": entity["cuisine"],
            "location": entity["city"],
            "address": entity["street"],
            "contact": entity["phone"],
            "cost": entity["price"],
            "rating": f"{int(rng.integers(1, 6))} stars",
        })
