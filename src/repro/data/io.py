"""Dataset persistence and interchange.

Two formats:

* **Bundle JSON** -- one self-contained file per dataset (tables + labeled
  splits). This is how the synthetic benchmarks can be exported, diffed,
  and shared, and how users can hand-author small datasets.
* **Machamp-style directory** -- the layout the paper's benchmarks ship
  in: ``left.json`` / ``right.json`` (one record per line) plus
  ``train.csv`` / ``valid.csv`` / ``test.csv`` with ``ltable_id,rtable_id,
  label`` rows. Users holding the real Machamp data can load it directly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .dataset import CandidatePair, GEMDataset
from .records import KINDS, TEXT, EntityRecord, Table

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _record_to_dict(record: EntityRecord) -> Dict[str, Any]:
    return {"id": record.record_id, "kind": record.kind,
            "values": record.values}


def _record_from_dict(data: Dict[str, Any]) -> EntityRecord:
    return EntityRecord(record_id=str(data["id"]), kind=data["kind"],
                        values=data["values"])


def _pair_to_dict(pair: CandidatePair) -> Dict[str, Any]:
    return {"left": pair.left.record_id, "right": pair.right.record_id,
            "label": pair.label}


def save_dataset(dataset: GEMDataset, path: PathLike) -> None:
    """Write a dataset as one self-contained JSON bundle."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "domain": dataset.domain,
        "default_rate": dataset.default_rate,
        "left_table": {
            "name": dataset.left_table.name,
            "kind": dataset.left_table.kind,
            "records": [_record_to_dict(r) for r in dataset.left_table],
        },
        "right_table": {
            "name": dataset.right_table.name,
            "kind": dataset.right_table.kind,
            "records": [_record_to_dict(r) for r in dataset.right_table],
        },
        "splits": {
            split: [_pair_to_dict(p) for p in getattr(dataset, split)]
            for split in ("train", "valid", "test")
        },
    }
    with open(path, "w") as f:
        json.dump(payload, f)


def load_dataset_file(path: PathLike) -> GEMDataset:
    """Load a dataset bundle written by :func:`save_dataset`."""
    with open(path) as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")

    tables = {}
    for side in ("left_table", "right_table"):
        spec = payload[side]
        tables[side] = Table(
            name=spec["name"], kind=spec["kind"],
            records=[_record_from_dict(r) for r in spec["records"]])

    left_by_id = {r.record_id: r for r in tables["left_table"]}
    right_by_id = {r.record_id: r for r in tables["right_table"]}

    def build_pairs(rows: List[Dict[str, Any]]) -> List[CandidatePair]:
        pairs = []
        for row in rows:
            try:
                left = left_by_id[row["left"]]
                right = right_by_id[row["right"]]
            except KeyError as exc:
                raise ValueError(f"pair references unknown record {exc}") from exc
            pairs.append(CandidatePair(left, right, row["label"]))
        return pairs

    return GEMDataset(
        name=payload["name"], domain=payload["domain"],
        left_table=tables["left_table"], right_table=tables["right_table"],
        train=build_pairs(payload["splits"]["train"]),
        valid=build_pairs(payload["splits"]["valid"]),
        test=build_pairs(payload["splits"]["test"]),
        default_rate=payload.get("default_rate", 0.10))


# ----------------------------------------------------------------------
# Machamp-style directory format
# ----------------------------------------------------------------------
def _infer_kind(values: Dict[str, Any]) -> str:
    if set(values) == {"text"}:
        return TEXT
    if any(isinstance(v, (dict, list)) for v in values.values()):
        return "semi"
    return "relational"


def _load_jsonl_table(path: Path, name: str) -> Table:
    """One JSON object per line; ``id`` column optional (line index used)."""
    records: List[EntityRecord] = []
    kinds = set()
    with open(path) as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            values = json.loads(line)
            if not isinstance(values, dict):
                raise ValueError(f"{path}:{i}: expected a JSON object per line")
            record_id = str(values.pop("id", i))
            if set(values) == {"text"} or "content" in values and len(values) == 1:
                if "content" in values:
                    values = {"text": values["content"]}
                record = EntityRecord(record_id, TEXT, values)
            else:
                record = EntityRecord(record_id, _infer_kind(values), values)
            kinds.add(record.kind)
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty table")
    if len(kinds) > 1:
        # Promote to the most general kind present.
        kind = "semi" if "semi" in kinds else next(iter(kinds))
        records = [EntityRecord(r.record_id, kind, r.values)
                   if r.kind != kind and kind == "semi" else r
                   for r in records]
        kinds = {r.kind for r in records}
        if len(kinds) > 1:
            raise ValueError(f"{path}: mixed record kinds {sorted(kinds)}")
    return Table(name=name, kind=records[0].kind, records=records)


def _load_pairs_csv(path: Path, left: Table, right: Table) -> List[CandidatePair]:
    left_by_id = {r.record_id: r for r in left}
    right_by_id = {r.record_id: r for r in right}
    pairs: List[CandidatePair] = []
    with open(path) as f:
        reader = csv.DictReader(f)
        required = {"ltable_id", "rtable_id", "label"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: expected columns {sorted(required)}, "
                f"got {reader.fieldnames}")
        for row in reader:
            try:
                pair = CandidatePair(left_by_id[str(row["ltable_id"])],
                                     right_by_id[str(row["rtable_id"])],
                                     int(row["label"]))
            except KeyError as exc:
                raise ValueError(f"{path}: unknown record id {exc}") from exc
            pairs.append(pair)
    return pairs


def load_machamp_dir(directory: PathLike, name: Optional[str] = None,
                     domain: str = "unknown",
                     default_rate: float = 0.10) -> GEMDataset:
    """Load a Machamp-layout directory.

    Expected files: ``left.json``, ``right.json`` (JSON-lines tables) and
    ``train.csv`` / ``valid.csv`` / ``test.csv`` pair files.
    """
    directory = Path(directory)
    left = _load_jsonl_table(directory / "left.json", name="left")
    right = _load_jsonl_table(directory / "right.json", name="right")
    splits = {}
    for split in ("train", "valid", "test"):
        splits[split] = _load_pairs_csv(directory / f"{split}.csv", left, right)
    return GEMDataset(
        name=name or directory.name, domain=domain,
        left_table=left, right_table=right,
        train=splits["train"], valid=splits["valid"], test=splits["test"],
        default_rate=default_rate)


def save_machamp_dir(dataset: GEMDataset, directory: PathLike) -> None:
    """Write a dataset in the Machamp directory layout."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for side, table in (("left", dataset.left_table),
                        ("right", dataset.right_table)):
        with open(directory / f"{side}.json", "w") as f:
            for record in table:
                f.write(json.dumps({"id": record.record_id, **record.values}))
                f.write("\n")
    for split in ("train", "valid", "test"):
        with open(directory / f"{split}.csv", "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["ltable_id", "rtable_id", "label"])
            for pair in getattr(dataset, split):
                writer.writerow([pair.left.record_id, pair.right.record_id,
                                 pair.label])
