"""MinHash + LSH blocking.

The overlap blocker (:mod:`repro.data.blocking`) scores every left record
against its inverted-index candidates -- fine at benchmark scale, but the
classic scalable approach is locality-sensitive hashing over MinHash
signatures [Broder 1997]: records whose token sets have high Jaccard
similarity collide in at least one LSH band with high probability, giving
candidate generation that never enumerates non-colliding pairs.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..text.tokenizer import basic_tokenize
from .blocking import BlockingResult
from .records import EntityRecord, Table
from .serialize import serialize

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


class MinHasher:
    """Produces fixed-length MinHash signatures of token sets."""

    def __init__(self, num_hashes: int = 64, seed: int = 0) -> None:
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        rng = np.random.default_rng(seed)
        self.num_hashes = num_hashes
        # Universal hashing: h_i(x) = (a_i * x + b_i) mod p mod 2^32
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes,
                               dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes,
                               dtype=np.uint64)

    def signature(self, tokens: Set[str]) -> np.ndarray:
        """(num_hashes,) uint64 signature; all-max for an empty set."""
        if not tokens:
            return np.full(self.num_hashes, _MAX_HASH, dtype=np.uint64)
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        raw = np.array([zlib.crc32(t.encode("utf-8")) for t in tokens],
                       dtype=np.uint64)
        # (H, T) matrix of permuted hashes, min over tokens.
        permuted = (self._a[:, None] * raw[None, :] + self._b[:, None]) \
            % _MERSENNE_PRIME % np.uint64(_MAX_HASH + 1)
        return permuted.min(axis=1)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing signature slots approximates Jaccard."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signature length mismatch")
        return float((sig_a == sig_b).mean())


@dataclass
class MinHashBlocker:
    """LSH banding over MinHash signatures.

    ``num_hashes`` is split into ``bands`` bands of equal width; two
    records become candidates when any band matches exactly. The implied
    similarity threshold is roughly ``(1 / bands) ** (1 / rows_per_band)``.
    """

    num_hashes: int = 64
    bands: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_hashes % self.bands != 0:
            raise ValueError("num_hashes must be divisible by bands")
        self._hasher = MinHasher(self.num_hashes, seed=self.seed)
        self.rows_per_band = self.num_hashes // self.bands

    @staticmethod
    def _tokens(record: EntityRecord) -> Set[str]:
        return {t for t in basic_tokenize(serialize(record))
                if t not in ("[COL]", "[VAL]") and len(t) > 1}

    def block(self, left: Table, right: Table) -> BlockingResult:
        """Candidate pairs that collide in at least one LSH band."""
        buckets: Dict[Tuple[int, bytes], List[str]] = defaultdict(list)
        right_by_id = {r.record_id: r for r in right}
        for record in right:
            sig = self._hasher.signature(self._tokens(record))
            for band in range(self.bands):
                lo = band * self.rows_per_band
                key = (band, sig[lo:lo + self.rows_per_band].tobytes())
                buckets[key].append(record.record_id)

        candidates = []
        for record in left:
            sig = self._hasher.signature(self._tokens(record))
            seen: Set[str] = set()
            for band in range(self.bands):
                lo = band * self.rows_per_band
                key = (band, sig[lo:lo + self.rows_per_band].tobytes())
                for rid in buckets.get(key, ()):
                    if rid not in seen:
                        seen.add(rid)
                        candidates.append((record, right_by_id[rid]))
        return BlockingResult(candidates=candidates,
                              total_pairs=len(left) * len(right))
