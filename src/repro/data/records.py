"""Entity record and table model for Generalized Entity Matching.

GEM (paper Problem 1) matches entities across *formats*: relational rows,
semi-structured (nested JSON-like) objects, and unstructured text. A single
:class:`EntityRecord` type covers all three via its ``kind`` tag, which the
serializer dispatches on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

RELATIONAL = "relational"
SEMI = "semi"
TEXT = "text"
KINDS = (RELATIONAL, SEMI, TEXT)


def _freeze(value: Any) -> Any:
    """Recursively convert a values payload into a hashable equivalent."""
    if isinstance(value, dict):
        return tuple((k, _freeze(v)) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class EntityRecord:
    """One entity in one of the three GEM formats.

    * ``relational`` -- ``values`` is a flat attr -> scalar mapping;
    * ``semi`` -- ``values`` may nest dicts and lists;
    * ``text`` -- ``values`` holds a single ``{"text": <str>}`` entry.
    """

    record_id: str
    kind: str
    values: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown record kind {self.kind!r}; expected one of {KINDS}")
        if self.kind == TEXT:
            if set(self.values) != {"text"}:
                raise ValueError("text records must have exactly one 'text' value")
        if self.kind == RELATIONAL:
            for attr, value in self.values.items():
                if isinstance(value, (dict, list)):
                    raise ValueError(
                        f"relational attribute {attr!r} holds nested value {value!r}; "
                        "use kind='semi' for nested data")

    @classmethod
    def text_record(cls, record_id: str, text: str) -> "EntityRecord":
        return cls(record_id=record_id, kind=TEXT, values={"text": text})

    def content_key(self) -> tuple:
        """Hashable identity of the record *content*, not just its id.

        Long-lived caches must key on this rather than ``record_id``: a
        serving catalog may replace a record under the same id, and HTTP
        clients reuse ids like ``"left"`` across requests with different
        values, so the key embeds the kind and every value. The key is
        memoized on the instance — records are treated as immutable after
        construction (replacement always builds a new object).
        """
        key = self.__dict__.get("_content_key")
        if key is None:
            key = (self.record_id, self.kind, _freeze(self.values))
            self.__dict__["_content_key"] = key
        return key

    @property
    def text(self) -> str:
        if self.kind != TEXT:
            raise AttributeError("only text records expose .text")
        return str(self.values["text"])

    def num_attributes(self) -> int:
        """Leaf-attribute count (nested attrs each count once)."""
        if self.kind == TEXT:
            return 1

        def count(value: Any) -> int:
            if isinstance(value, dict):
                return sum(count(v) for v in value.values())
            return 1

        return sum(count(v) for v in self.values.values())

    def flat_values(self) -> List[Any]:
        """All leaf values in definition order (lists kept as one leaf)."""
        out: List[Any] = []

        def walk(value: Any) -> None:
            if isinstance(value, dict):
                for v in value.values():
                    walk(v)
            else:
                out.append(value)

        for v in self.values.values():
            walk(v)
        return out


@dataclass
class Table:
    """A named collection of same-kind entity records."""

    name: str
    kind: str
    records: List[EntityRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown table kind {self.kind!r}")
        for record in self.records:
            if record.kind != self.kind:
                raise ValueError(
                    f"record {record.record_id} has kind {record.kind}, "
                    f"table expects {self.kind}")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EntityRecord]:
        return iter(self.records)

    def add(self, record: EntityRecord) -> None:
        if record.kind != self.kind:
            raise ValueError(f"cannot add {record.kind} record to {self.kind} table")
        self.records.append(record)

    def by_id(self, record_id: str) -> EntityRecord:
        for record in self.records:
            if record.record_id == record_id:
                return record
        raise KeyError(record_id)

    def avg_attributes(self) -> float:
        """Average leaf-attribute count (the '#attr' column of Table 1)."""
        if not self.records:
            return 0.0
        return sum(r.num_attributes() for r in self.records) / len(self.records)
