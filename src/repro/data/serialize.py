"""Entity serialization (paper Section 2.2).

Structured entities become ``[COL] attr [VAL] value`` sequences; nested
attributes recursively repeat the tags at each level; list attributes are
flattened by concatenating their elements into one string; text entities are
already sequences.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..text.tfidf import TfIdfSummarizer
from .records import RELATIONAL, SEMI, TEXT, EntityRecord


def _value_to_string(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, list):
        return " ".join(_value_to_string(v) for v in value)
    return str(value)


def _serialize_mapping(values: dict, parts: List[str]) -> None:
    for attr, value in values.items():
        if isinstance(value, dict):
            # Nested attribute: emit the parent tag, then recurse one level
            # deeper (paper: "recursively add the [COL] and [VAL] tags ...
            # in each level of nests").
            parts.append(f"[COL] {attr}")
            _serialize_mapping(value, parts)
        else:
            parts.append(f"[COL] {attr} [VAL] {_value_to_string(value)}".rstrip())


def serialize(record: EntityRecord,
              summarizer: Optional[TfIdfSummarizer] = None) -> str:
    """Serialize a record of any kind to a flat token sequence.

    ``summarizer`` optionally applies the Appendix F TF-IDF summarization to
    long textual entities (and to textual attribute values is unnecessary --
    structured values are short by construction).
    """
    if record.kind == TEXT:
        text = record.text
        if summarizer is not None:
            text = summarizer.summarize(text)
        return text
    parts: List[str] = []
    _serialize_mapping(record.values, parts)
    return " ".join(parts)


def serialize_pair(left: EntityRecord, right: EntityRecord,
                   summarizer: Optional[TfIdfSummarizer] = None) -> tuple:
    """Serialize both sides of a candidate pair."""
    return serialize(left, summarizer), serialize(right, summarizer)
