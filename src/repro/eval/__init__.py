"""Evaluation substrate: metrics, resources, reporting, protocol."""

from .calibration import (
    CalibrationBin, CalibrationReport, calibration_report, overconfidence_rate,
)
from .metrics import (
    PRF, ConfusionMatrix, precision_recall_f1, pseudo_label_quality,
)
from .protocol import BenchScale, ExperimentRunner, RunResult, bench_scale
from .significance import (
    BootstrapInterval, bootstrap_f1, paired_bootstrap_delta,
)
from .reporting import render_prf_table, render_series, render_table
from .resources import ResourceMeter, ResourceReport, format_bytes, format_seconds

__all__ = [
    "ConfusionMatrix", "PRF", "precision_recall_f1", "pseudo_label_quality",
    "CalibrationBin", "CalibrationReport", "calibration_report",
    "overconfidence_rate",
    "ResourceMeter", "ResourceReport", "format_seconds", "format_bytes",
    "render_table", "render_prf_table", "render_series",
    "BootstrapInterval", "bootstrap_f1", "paired_bootstrap_delta",
    "ExperimentRunner", "RunResult", "BenchScale", "bench_scale",
]
