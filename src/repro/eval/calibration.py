"""Confidence-calibration diagnostics.

Challenge II of the paper rests on a claim: *"incorrect predictions can
have high confidence scores in poorly calibrated networks"*. This module
quantifies that claim for any matcher -- expected calibration error (ECE),
maximum calibration error, and a reliability table -- so the choice of
uncertainty over confidence for pseudo-label selection can be justified
empirically rather than by citation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class CalibrationBin:
    """One confidence bucket of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    accuracy: float

    @property
    def gap(self) -> float:
        """|confidence - accuracy|; zero for a perfectly calibrated bin."""
        return abs(self.mean_confidence - self.accuracy)


@dataclass(frozen=True)
class CalibrationReport:
    """ECE / MCE plus the per-bin breakdown."""

    ece: float
    mce: float
    bins: List[CalibrationBin]

    def as_rows(self) -> List[list]:
        """Rows for :func:`repro.eval.render_table`."""
        return [[f"({b.lower:.2f}, {b.upper:.2f}]", b.count,
                 round(b.mean_confidence, 3), round(b.accuracy, 3),
                 round(b.gap, 3)] for b in self.bins if b.count]


def calibration_report(probs: np.ndarray, labels: Sequence[int],
                       num_bins: int = 10) -> CalibrationReport:
    """Measure calibration of (N, 2) class probabilities against labels.

    ECE = sum_b (n_b / N) * |acc_b - conf_b| over equal-width confidence
    bins; MCE is the worst bin gap.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2 or probs.shape[1] != 2:
        raise ValueError(f"expected (N, 2) probabilities, got {probs.shape}")
    if len(probs) != len(labels):
        raise ValueError("probs / labels length mismatch")
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")

    confidence = probs.max(axis=1)
    predictions = probs.argmax(axis=1)
    correct = (predictions == labels).astype(np.float64)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: List[CalibrationBin] = []
    ece = 0.0
    mce = 0.0
    total = len(labels)
    for lower, upper in zip(edges[:-1], edges[1:]):
        if upper == 1.0:
            mask = (confidence > lower) & (confidence <= upper + 1e-12)
        else:
            mask = (confidence > lower) & (confidence <= upper)
        count = int(mask.sum())
        if count:
            mean_conf = float(confidence[mask].mean())
            accuracy = float(correct[mask].mean())
            gap = abs(mean_conf - accuracy)
            ece += (count / total) * gap
            mce = max(mce, gap)
        else:
            mean_conf = accuracy = 0.0
        bins.append(CalibrationBin(lower=float(lower), upper=float(upper),
                                   count=count, mean_confidence=mean_conf,
                                   accuracy=accuracy))
    return CalibrationReport(ece=float(ece), mce=float(mce), bins=bins)


def overconfidence_rate(probs: np.ndarray, labels: Sequence[int],
                        threshold: float = 0.9) -> float:
    """Fraction of *high-confidence* predictions that are wrong.

    This is the paper's Challenge II failure mode in one number: if a
    teacher selects pseudo-labels by confidence > ``threshold``, this is
    the noise rate it imports into the student's training set.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    confidence = probs.max(axis=1)
    predictions = probs.argmax(axis=1)
    high = confidence >= threshold
    if not high.any():
        return 0.0
    return float((predictions[high] != labels[high]).mean())
