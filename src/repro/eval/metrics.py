"""Classification metrics: P/R/F1 (Tables 2/3/6) and TPR/TNR (Table 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @classmethod
    def from_labels(cls, y_true: Sequence[int],
                    y_pred: Sequence[int]) -> "ConfusionMatrix":
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        if y_true.shape != y_pred.shape:
            raise ValueError(
                f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
        bad = set(np.unique(y_true)) | set(np.unique(y_pred))
        if not bad <= {0, 1}:
            raise ValueError(f"labels must be binary, got values {sorted(bad)}")
        return cls(
            tp=int(((y_true == 1) & (y_pred == 1)).sum()),
            fp=int(((y_true == 0) & (y_pred == 1)).sum()),
            tn=int(((y_true == 0) & (y_pred == 0)).sum()),
            fn=int(((y_true == 1) & (y_pred == 0)).sum()),
        )

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def tpr(self) -> float:
        """True-positive rate (same as recall; Table 5 terminology)."""
        return self.recall

    @property
    def tnr(self) -> float:
        """True-negative rate: TN / (TN + FP)."""
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple as percentages (paper table format)."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def from_confusion(cls, cm: ConfusionMatrix) -> "PRF":
        return cls(precision=100 * cm.precision, recall=100 * cm.recall,
                   f1=100 * cm.f1)

    @classmethod
    def from_labels(cls, y_true: Sequence[int], y_pred: Sequence[int]) -> "PRF":
        return cls.from_confusion(ConfusionMatrix.from_labels(y_true, y_pred))

    def as_row(self) -> tuple:
        return (round(self.precision, 1), round(self.recall, 1), round(self.f1, 1))


def precision_recall_f1(y_true: Sequence[int],
                        y_pred: Sequence[int]) -> tuple:
    """Convenience: (P, R, F1) as fractions in [0, 1]."""
    cm = ConfusionMatrix.from_labels(y_true, y_pred)
    return cm.precision, cm.recall, cm.f1


def pseudo_label_quality(y_true: Sequence[int],
                         y_pseudo: Sequence[int]) -> tuple:
    """(TPR, TNR) of pseudo-labels against ground truth (paper Table 5)."""
    cm = ConfusionMatrix.from_labels(y_true, y_pseudo)
    return cm.tpr, cm.tnr
