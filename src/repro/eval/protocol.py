"""Experiment protocol: run matchers over datasets and collect paper rows.

Each benchmark builds on :class:`ExperimentRunner`, which owns the loop
"make a low-resource view -> fit the matcher -> report test P/R/F1 (+
resources)". The scale of a run (epochs, unlabeled cap, datasets) is set by
:func:`bench_scale`, controlled via the ``REPRO_BENCH_SCALE`` environment
variable: ``smoke`` for CI-speed runs, ``paper`` for the full evaluation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # avoid a circular import; Matcher is annotation-only here
    from ..baselines.base import Matcher

from ..data.dataset import GEMDataset, LowResourceView
from ..data.generators.registry import DATASET_NAMES, load_dataset
from .metrics import PRF
from .resources import ResourceMeter, ResourceReport


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    datasets: Sequence[str]
    lm_epochs: int              # epochs for single-stage LM baselines
    teacher_epochs: int
    student_epochs: int
    mc_passes: int
    unlabeled_cap: int
    #: reduced epochs for the sufficient-resource table (the full train
    #: split has ~20x more steps per epoch than the low-resource one)
    sufficient_epochs: int = 4
    seeds: Sequence[int] = (0,)


_SCALES = {
    "smoke": BenchScale(
        name="smoke",
        datasets=("REL-HETER", "SEMI-HETER"),
        lm_epochs=6, teacher_epochs=5, student_epochs=6,
        mc_passes=4, unlabeled_cap=40, sufficient_epochs=2),
    "paper": BenchScale(
        name="paper",
        datasets=tuple(DATASET_NAMES),
        lm_epochs=8, teacher_epochs=8, student_epochs=10,
        mc_passes=6, unlabeled_cap=60, sufficient_epochs=3),
}


def bench_scale(default: str = "paper") -> BenchScale:
    """The active scale, from ``REPRO_BENCH_SCALE`` (smoke | paper)."""
    name = os.environ.get("REPRO_BENCH_SCALE", default)
    if name not in _SCALES:
        raise KeyError(f"unknown bench scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[name]


@dataclass
class RunResult:
    """One (matcher, dataset) cell: quality plus resource usage."""

    method: str
    dataset: str
    prf: PRF
    resources: Optional[ResourceReport] = None


class ExperimentRunner:
    """Runs matcher factories over datasets under a common protocol."""

    def __init__(self, scale: Optional[BenchScale] = None) -> None:
        self.scale = scale if scale is not None else bench_scale()
        self.results: List[RunResult] = []

    def view_for(self, dataset_name: str, rate: Optional[float] = None,
                 count: Optional[int] = None, seed: int = 0) -> LowResourceView:
        dataset = load_dataset(dataset_name)
        if count is not None:
            return dataset.low_resource_count(count, seed=seed)
        return dataset.low_resource(rate=rate, seed=seed)

    def run(self, method_name: str,
            matcher_factory: Callable[[], "Matcher"],
            dataset_name: str,
            rate: Optional[float] = None,
            count: Optional[int] = None,
            seed: int = 0,
            measure_resources: bool = False) -> RunResult:
        """Fit one matcher on one dataset's low-resource view."""
        view = self.view_for(dataset_name, rate=rate, count=count, seed=seed)
        matcher = matcher_factory()
        if measure_resources:
            with ResourceMeter() as meter:
                matcher.fit(view)
                estimate = getattr(matcher, "memory_bytes", None)
                if estimate is not None:
                    meter.add_bytes(estimate())
            report = meter.report
        else:
            matcher.fit(view)
            report = None
        prf = matcher.evaluate(view.test)
        result = RunResult(method=method_name, dataset=dataset_name,
                           prf=prf, resources=report)
        self.results.append(result)
        return result

    def as_prf_grid(self) -> Dict[str, Dict[str, tuple]]:
        """results -> {method: {dataset: (P, R, F)}} for reporting."""
        grid: Dict[str, Dict[str, tuple]] = {}
        for result in self.results:
            grid.setdefault(result.method, {})[result.dataset] = result.prf.as_row()
        return grid
