"""Aligned-text table rendering used by every benchmark harness.

Each bench regenerates one paper table/figure and prints it via these
helpers, so the console output visually mirrors the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def _format_cell(value: Cell, decimals: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None, decimals: int = 1) -> str:
    """Render a monospace table with a header rule."""
    cells = [[_format_cell(c, decimals) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_prf_table(title: str, dataset_names: Sequence[str],
                     results: Dict[str, Dict[str, tuple]],
                     decimals: int = 1) -> str:
    """Render a paper-style methods x datasets P/R/F table.

    ``results[method][dataset]`` is a (P, R, F) tuple in percent.
    """
    headers = ["Method"]
    for name in dataset_names:
        headers += [f"{name}:P", f"{name}:R", f"{name}:F"]
    rows = []
    for method, per_dataset in results.items():
        row: List[Cell] = [method]
        for name in dataset_names:
            prf = per_dataset.get(name)
            row += list(prf) if prf is not None else [None, None, None]
        rows.append(row)
    return render_table(headers, rows, title=title, decimals=decimals)


def render_series(title: str, x_label: str, x_values: Sequence,
                  series: Dict[str, Sequence[float]],
                  decimals: int = 1) -> str:
    """Render a figure as a table: one row per x value, one column per line."""
    headers = [x_label, *series]
    rows = []
    for i, x in enumerate(x_values):
        row: List[Cell] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return render_table(headers, rows, title=title, decimals=decimals)
