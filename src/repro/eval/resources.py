"""Backward-compatibility shim: resource accounting moved to
:mod:`repro.obs.resources`, the observability subsystem's single
timing/memory utility. Import from ``repro.obs`` in new code.
"""

from ..obs.resources import (  # noqa: F401
    ResourceMeter, ResourceReport, format_bytes, format_seconds,
)

__all__ = ["ResourceMeter", "ResourceReport", "format_seconds",
           "format_bytes"]
