"""Bootstrap confidence intervals for matcher comparisons.

Single-seed F1 values on test splits of 50-150 pairs carry several points
of noise; these helpers quantify it. ``bootstrap_f1`` resamples the test
set with replacement; ``paired_bootstrap_delta`` answers "is matcher A
really better than matcher B on this test set?" with a paired resampling
test (the standard protocol for comparing classifiers on one split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .metrics import ConfusionMatrix


@dataclass(frozen=True)
class BootstrapInterval:
    """Point estimate and (lower, upper) percentile interval, in percent."""

    point: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def _f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return ConfusionMatrix.from_labels(y_true, y_pred).f1


def bootstrap_f1(y_true: Sequence[int], y_pred: Sequence[int],
                 num_samples: int = 1000, confidence: float = 0.95,
                 seed: int = 0) -> BootstrapInterval:
    """Percentile-bootstrap interval of F1 (values in percent)."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if len(y_true) != len(y_pred) or len(y_true) == 0:
        raise ValueError("need equal-length, non-empty label arrays")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(y_true)
    scores = np.empty(num_samples)
    for i in range(num_samples):
        idx = rng.integers(0, n, size=n)
        scores[i] = _f1(y_true[idx], y_pred[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=100 * _f1(y_true, y_pred),
        lower=100 * float(np.quantile(scores, alpha)),
        upper=100 * float(np.quantile(scores, 1.0 - alpha)),
        confidence=confidence)


def paired_bootstrap_delta(y_true: Sequence[int],
                           pred_a: Sequence[int],
                           pred_b: Sequence[int],
                           num_samples: int = 1000,
                           seed: int = 0) -> Tuple[float, float]:
    """Paired bootstrap of F1(A) - F1(B).

    Returns ``(delta_in_percent, p_value)`` where the (one-sided) p-value
    is the fraction of resamples on which A does *not* beat B.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    pred_a = np.asarray(pred_a, dtype=np.int64)
    pred_b = np.asarray(pred_b, dtype=np.int64)
    if not (len(y_true) == len(pred_a) == len(pred_b)) or len(y_true) == 0:
        raise ValueError("need three equal-length, non-empty label arrays")
    rng = np.random.default_rng(seed)
    n = len(y_true)
    wins = 0
    for _ in range(num_samples):
        idx = rng.integers(0, n, size=n)
        if _f1(y_true[idx], pred_a[idx]) > _f1(y_true[idx], pred_b[idx]):
            wins += 1
    delta = 100 * (_f1(y_true, pred_a) - _f1(y_true, pred_b))
    p_value = 1.0 - wins / num_samples
    return delta, p_value
