"""High-throughput batched inference: encoding cache, length-bucketed
batching, vectorized MC-Dropout. See :mod:`repro.infer.engine`."""

from .cache import EncodingCache
from .engine import (
    EngineConfig, EngineStats, InferenceEngine, PairEncoding, pack_buckets,
)

__all__ = [
    "EncodingCache", "EngineConfig", "EngineStats", "InferenceEngine",
    "PairEncoding", "pack_buckets",
]
