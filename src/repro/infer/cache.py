"""LRU cache over the serialize -> tokenize -> template-render pipeline.

Rendering a candidate pair into token ids is pure Python string work and by
far the most expensive part of an inference step at MiniLM scale. The seed
pipeline repeated it for every epoch, every MC-Dropout pass and every
self-training iteration; memoizing per (pair, encoder fingerprint) makes all
of those re-reads O(1) dictionary hits.

The cache is thread-safe: the serving scheduler and HTTP handler threads
share one :class:`EncodingCache` through the engine, so bookkeeping
(entries, hits/misses/evictions) is guarded by a lock. ``encode()`` runs
*outside* the lock -- it is the expensive part and is pure, so concurrent
misses on the same key may encode twice but only one result is kept.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional


class EncodingCache:
    """Bounded LRU mapping cache keys to :class:`PairEncoding` objects.

    ``capacity <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which keeps the call sites branch-free.

    Invariant (also under concurrent use): ``hits + misses`` equals the
    number of :meth:`get_or_encode` calls, and ``evictions <= misses``.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """All cache accounting in one dict (engine stats / telemetry)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "hit_rate": self.hit_rate,
            }

    def get_or_encode(self, key: Hashable, encode: Callable[[], object]):
        """Return the cached value for ``key``, computing it on a miss."""
        if self.capacity <= 0:
            with self._lock:
                self.misses += 1
            return encode()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
        entry = encode()
        with self._lock:
            # a racing miss may have inserted already; keep the first value
            # so every caller of this key sees one object
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0
