"""Batched inference engine: cached encodings, length-bucketed batches,
single-pass vectorized MC-Dropout.

The paper's hottest loop -- MC-Dropout pseudo-label selection over the
unlabeled pool (Section 4.2), re-run every self-training iteration --
serialized and re-tokenized every candidate pair on every stochastic pass in
the seed implementation. The engine removes four sources of waste:

1. an :class:`~repro.infer.cache.EncodingCache` memoizes the
   serialize -> template-render -> token-id pipeline per pair;
2. *length-bucketed dynamic batching* sorts encodings by token length and
   packs batches under a **token budget** (forwarded rows x
   longest-in-batch; a tiled MC sweep therefore packs ``passes``x fewer
   pairs per bucket), so a short pair never pays for padding up to an
   unrelated long one and batches stay in the size range where numpy's
   memory-bound attention is fastest;
3. *vectorized MC-Dropout* runs all ``passes`` stochastic forwards of a
   batch as one tiled call (ids tiled ``passes``x along the batch axis)
   under a :class:`~repro.autograd.DropoutPlan`, which seeds each tile with
   its pass index so the result is bit-identical to ``passes`` sequential
   forwards over the same buckets;
4. under ``no_grad`` the models' ``forward_encoded`` dispatches to the
   raw-numpy kernels in :mod:`repro.infer.fastpath` -- same math, same
   dropout draws, none of the autograd graph bookkeeping.

Models opt in by implementing ``encode_pair(pair) -> PairEncoding`` and
``forward_encoded(encodings, tile=1) -> Tensor``; anything else (e.g. the
toy test models or DeepMatcher) falls back to plain ``model(batch)`` calls,
still gaining tiled MC-Dropout by repeating the pair list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import DropoutPlan, Module, dropout_plan, no_grad
from ..autograd.tensor import get_default_dtype
from ..data.dataset import CandidatePair
from ..obs import get_telemetry
from ..parallel import WorkerPool, effective_workers, shard_indices
from .cache import EncodingCache


@dataclass
class PairEncoding:
    """One rendered pair: token ids (placeholders allowed) + mask index."""

    ids: np.ndarray
    mask_position: int = 0
    #: memoized duplicate-token flags (filled by the fast path on first use)
    dup_flags: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.ids)


@dataclass
class EngineConfig:
    """Throughput knobs; quality-neutral by construction."""

    #: max forwarded rows x longest-sequence tokens per batch; a tiled
    #: MC-Dropout sweep divides this across its ``passes`` tiles
    token_budget: int = 2048
    #: hard cap on rows per batch regardless of how short the sequences are
    max_batch_pairs: int = 64
    #: LRU entries kept in the encoding cache; 0 disables caching
    cache_capacity: int = 8192
    #: entropy mixed into every DropoutPlan the engine installs
    base_seed: int = 0
    #: fork this many workers for encoding and for *deterministic* scoring
    #: (eval mode or seeded MC-Dropout); ``<=1`` runs everything in-process.
    #: The worker count never changes results -- buckets keep their global
    #: index (hence their DropoutPlan) wherever they run.
    workers: int = 1
    #: minimum uncached pairs before parallel encode bothers forking a pool
    parallel_encode_min: int = 64

    def __post_init__(self) -> None:
        if self.token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if self.max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")


@dataclass
class EngineStats:
    """Cumulative counters; see :meth:`InferenceEngine.stats_dict`."""

    pairs: int = 0            # logical input pairs scored
    rows: int = 0             # forwarded rows (pairs x passes)
    batches: int = 0
    tokens_real: int = 0      # sum of true sequence lengths over rows
    tokens_padded: int = 0    # rows x longest-in-batch, summed
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def pairs_per_sec(self) -> float:
        return self.pairs / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def padding_fraction(self) -> float:
        if self.tokens_padded == 0:
            return 0.0
        return 1.0 - self.tokens_real / self.tokens_padded

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def pack_buckets(lengths: Sequence[int], token_budget: int,
                 max_batch_pairs: int) -> List[np.ndarray]:
    """Length-sorted greedy packing under ``rows x longest <= token_budget``.

    Returns index arrays into the *original* order; every input index
    appears in exactly one bucket. A batch always holds at least one row, so
    a single sequence longer than the budget still runs (alone).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.argsort(lengths, kind="stable")
    buckets: List[np.ndarray] = []
    start = 0
    while start < len(order):
        end = start + 1
        # sorted ascending, so order[end - 1] is the longest so far
        while (end < len(order)
               and end - start < max_batch_pairs
               and (end - start + 1) * lengths[order[end]] <= token_budget):
            end += 1
        buckets.append(order[start:end])
        start = end
    return buckets


class InferenceEngine:
    """Shared batched scorer for PromptEM, fine-tuning and the LM baselines.

    Stateless with respect to model weights: every public method takes the
    model as an argument, so one engine (and its encoding cache) can serve
    the teacher, the student and final prediction within a run, as long as
    all of them share the same tokenizer/template/serialization (which
    ``encoding_fingerprint`` keys guard).
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.cache = EncodingCache(self.config.cache_capacity)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _supports_encoding(model: Module) -> bool:
        return (hasattr(model, "encode_pair")
                and hasattr(model, "forward_encoded"))

    def _encodings(self, model: Module,
                   pairs: Sequence[CandidatePair]) -> List[PairEncoding]:
        fingerprint = model.encoding_fingerprint() \
            if hasattr(model, "encoding_fingerprint") else id(model)
        # keys are content-addressed (id + kind + values), not id-only: the
        # serving path shares this cache across requests and may replace a
        # catalog record under an existing id, which must not hit the old
        # entry
        keys = [(fingerprint, pair.left.content_key(),
                 pair.right.content_key())
                for pair in pairs]
        prefetched = self._parallel_encode(model, pairs, keys)
        out = []
        for pair, key in zip(pairs, keys):
            def encode(p=pair, k=key):
                ready = prefetched.get(k)
                return ready if ready is not None else model.encode_pair(p)
            out.append(self.cache.get_or_encode(key, encode))
        return out

    def _parallel_encode(self, model: Module,
                         pairs: Sequence[CandidatePair],
                         keys: Sequence[tuple]) -> dict:
        """Pre-encode the uncached pairs on a forked pool; {key: encoding}.

        ``encode_pair`` is deterministic, so where it runs cannot matter;
        results are fed back through the cache's normal ``get_or_encode``
        accounting so hit/miss counters match the serial path.
        """
        workers = effective_workers(self.config.workers)
        if workers <= 1:
            return {}
        seen = set()
        missing = []
        for i, key in enumerate(keys):
            if key not in self.cache and key not in seen:
                seen.add(key)
                missing.append(i)
        if len(missing) < max(self.config.parallel_encode_min, workers):
            return {}

        def encode_chunk(chunk):
            return [model.encode_pair(pairs[missing[j]]) for j in chunk]

        chunks = shard_indices(len(missing), workers)
        with WorkerPool(workers, encode_chunk) as pool:
            encoded_chunks = pool.map(chunks)
        prefetched = {}
        for chunk, encoded in zip(chunks, encoded_chunks):
            for j, encoding in zip(chunk, encoded):
                prefetched[keys[missing[int(j)]]] = encoding
        return prefetched

    def encodings(self, model: Module,
                  pairs: Sequence[CandidatePair]) -> List[PairEncoding]:
        """Cached per-pair encodings (``model.encode_pair`` memoized).

        Public so the trainer's token-budget batching can reuse the same
        cache entries that per-epoch validation and final prediction hit.
        The model must support the encoding protocol (``encode_pair``).
        """
        return self._encodings(model, pairs)

    # ------------------------------------------------------------------
    # Core batched runner
    # ------------------------------------------------------------------
    def _run(self, model: Module, pairs: Sequence[CandidatePair],
             training: bool,
             pass_seeds: Optional[Tuple[int, ...]] = None,
             pack_tiles: Optional[int] = None) -> np.ndarray:
        """Score ``pairs``; returns (P, N, 2) with P = len(pass_seeds) or 1.

        ``pass_seeds=None`` leaves the model's own dropout rngs in charge
        (legacy stochastic behaviour); a tuple installs a
        :class:`DropoutPlan` per batch, tiling the batch ``len(pass_seeds)``
        times so all passes run in one forward. ``pack_tiles`` overrides the
        tile count used for *bucket packing* only -- the sequential
        MC-Dropout reference passes the full pass count here so it partitions
        pairs exactly like the vectorized sweep (same buckets -> same
        ``batch_index`` -> same dropout masks).
        """
        tiles = len(pass_seeds) if pass_seeds else 1
        if pack_tiles is None:
            pack_tiles = tiles
        dtype = get_default_dtype()
        if not pairs:
            return np.zeros((tiles, 0, 2), dtype=dtype)

        started = time.perf_counter()
        hits0, misses0 = self.cache.hits, self.cache.misses
        evictions0, batches0 = self.cache.evictions, self.stats.batches
        was_training = model.training
        model.train(training)
        out = np.zeros((tiles, len(pairs), 2), dtype=dtype)
        try:
            with no_grad():
                if self._supports_encoding(model):
                    self._run_encoded(model, pairs, out, pass_seeds,
                                      pack_tiles)
                else:
                    self._run_fallback(model, pairs, out, pass_seeds)
        finally:
            model.train(was_training)
        elapsed = time.perf_counter() - started
        self.stats.pairs += len(pairs)
        self.stats.rows += tiles * len(pairs)
        self.stats.elapsed += elapsed
        self.stats.cache_hits += self.cache.hits - hits0
        self.stats.cache_misses += self.cache.misses - misses0
        self.stats.cache_evictions += self.cache.evictions - evictions0
        tel = get_telemetry()
        if tel.enabled:
            metrics = tel.metrics
            metrics.counter("engine.pairs").inc(len(pairs))
            metrics.counter("engine.rows").inc(tiles * len(pairs))
            metrics.counter("engine.batches").inc(
                self.stats.batches - batches0)
            metrics.counter("engine.cache.hits").inc(
                self.cache.hits - hits0)
            metrics.counter("engine.cache.misses").inc(
                self.cache.misses - misses0)
            metrics.counter("engine.cache.evictions").inc(
                self.cache.evictions - evictions0)
            metrics.gauge("engine.cache.hit_rate").set(self.cache.hit_rate)
            metrics.gauge("engine.cache.entries").set(len(self.cache))
            metrics.timer("engine.run_seconds").observe(elapsed)
        return out

    def _run_encoded(self, model: Module, pairs: Sequence[CandidatePair],
                     out: np.ndarray,
                     pass_seeds: Optional[Tuple[int, ...]],
                     pack_tiles: int) -> None:
        tiles = out.shape[0]
        encodings = self._encodings(model, pairs)
        lengths = [len(e) for e in encodings]
        # The budget bounds the rows actually forwarded, so a tiled
        # MC-Dropout sweep packs `pack_tiles`x fewer pairs per bucket -- big
        # flat batches are slower here (numpy attention is memory-bound).
        buckets = pack_buckets(lengths,
                               max(self.config.token_budget // pack_tiles, 1),
                               self.config.max_batch_pairs)
        workers = effective_workers(self.config.workers)
        # Parallel only when every bucket's result is pinned by explicit
        # seeds (or dropout is off entirely): an unseeded training-mode pass
        # consumes the Dropout modules' own rng state, which only exists in
        # one process.
        deterministic = pass_seeds is not None or not model.training
        if workers > 1 and deterministic and len(buckets) > 1:
            probs_per_bucket = self._run_buckets_parallel(
                model, encodings, buckets, tiles, pass_seeds, workers)
        else:
            probs_per_bucket = None
        for batch_index, idx in enumerate(buckets):
            batch = [encodings[i] for i in idx]
            longest = max(len(e) for e in batch)
            if probs_per_bucket is None:
                plan = self._plan(pass_seeds, batch_index)
                with dropout_plan(plan):
                    probs = model.forward_encoded(batch, tile=tiles).numpy()
            else:
                probs = probs_per_bucket[batch_index]
            out[:, idx, :] = probs.reshape(tiles, len(idx), 2)
            self.stats.batches += 1
            self.stats.tokens_real += tiles * sum(len(e) for e in batch)
            self.stats.tokens_padded += tiles * len(batch) * longest

    def _run_buckets_parallel(self, model: Module,
                              encodings: Sequence[PairEncoding],
                              buckets: Sequence[np.ndarray], tiles: int,
                              pass_seeds: Optional[Tuple[int, ...]],
                              workers: int) -> List[np.ndarray]:
        """Forward the packed buckets on a forked pool, one task per bucket.

        Bucket ``b`` runs on worker ``b % workers`` but keeps its *global*
        index in the DropoutPlan, so every stochastic draw matches the
        serial loop exactly -- the parallel sweep is a re-stitching of the
        identical per-bucket results.
        """

        def run_bucket(batch_index):
            idx = buckets[batch_index]
            batch = [encodings[i] for i in idx]
            plan = self._plan(pass_seeds, batch_index)
            with dropout_plan(plan):
                return model.forward_encoded(batch, tile=tiles).numpy()

        with WorkerPool(workers, run_bucket) as pool:
            return pool.map(range(len(buckets)))

    def _run_fallback(self, model: Module, pairs: Sequence[CandidatePair],
                      out: np.ndarray,
                      pass_seeds: Optional[Tuple[int, ...]]) -> None:
        tiles = out.shape[0]
        step = self.config.max_batch_pairs
        for batch_index, start in enumerate(range(0, len(pairs), step)):
            batch = list(pairs[start:start + step])
            plan = self._plan(pass_seeds, batch_index)
            with dropout_plan(plan):
                probs = model(batch * tiles if tiles > 1 else batch).numpy()
            out[:, start:start + len(batch), :] = \
                probs.reshape(tiles, len(batch), 2)
            self.stats.batches += 1

    def _plan(self, pass_seeds: Optional[Tuple[int, ...]],
              batch_index: int) -> Optional[DropoutPlan]:
        if pass_seeds is None:
            return None
        return DropoutPlan(base_seed=self.config.base_seed,
                           pass_seeds=tuple(int(s) for s in pass_seeds),
                           batch_index=batch_index)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def predict_proba(self, model: Module,
                      pairs: Sequence[CandidatePair]) -> np.ndarray:
        """(N, 2) class probabilities in eval mode, original input order."""
        return self._run(model, pairs, training=False)[0]

    def stochastic_proba(self, model: Module, pairs: Sequence[CandidatePair],
                         pass_seed: Optional[int] = None) -> np.ndarray:
        """One stochastic forward (dropout active).

        ``pass_seed`` pins the dropout masks of this pass (replayable);
        ``None`` draws from each Dropout module's own rng as the seed
        implementation did.
        """
        seeds = (int(pass_seed),) if pass_seed is not None else None
        return self._run(model, pairs, training=True, pass_seeds=seeds)[0]

    def mc_dropout_proba(self, model: Module, pairs: Sequence[CandidatePair],
                         passes: int, seed: int = 0,
                         vectorized: bool = True) -> np.ndarray:
        """(passes, N, 2) stochastic probabilities, one tiled forward per
        bucket when ``vectorized`` (the fast path); the sequential reference
        path uses the same per-pass seeds and is bit-identical."""
        if passes < 1:
            raise ValueError("need at least one stochastic pass")
        pass_seeds = tuple(int(seed) * 1_000_003 + k for k in range(passes))
        if vectorized:
            return self._run(model, pairs, training=True,
                             pass_seeds=pass_seeds)
        rows = [self._run(model, pairs, training=True, pass_seeds=(s,),
                          pack_tiles=passes)[0]
                for s in pass_seeds]
        dtype = get_default_dtype()
        if not pairs:
            return np.zeros((passes, 0, 2), dtype=dtype)
        return np.stack(rows).astype(dtype, copy=False)

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = EngineStats()
        self.cache.reset_counters()

    def stats_dict(self) -> dict:
        s = self.stats
        return {
            "pairs": s.pairs, "rows": s.rows, "batches": s.batches,
            "elapsed": s.elapsed,
            "pairs_per_sec": s.pairs_per_sec,
            "padding_fraction": s.padding_fraction,
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
            "cache_evictions": s.cache_evictions,
            "cache_hit_rate": s.cache_hit_rate,
            "cache_entries": len(self.cache),
        }
