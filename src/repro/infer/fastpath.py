"""Raw-numpy inference kernels behind ``forward_encoded``.

The autograd :class:`~repro.autograd.Tensor` pays for generality: every op
allocates a wrapper, scalar ``x ** 3`` walks ``np.power``'s slow path, and
``masked_fill`` materializes a full ``-1e9`` array. None of that is needed
under ``no_grad``, so the engine-facing ``forward_encoded`` methods run
this module instead: a plain-numpy replication of the exact same math, op
for op, in the same order. Guarantees:

* **same numbers** -- each kernel mirrors its Tensor twin (including
  float32 coercion of scalar constants and ``sum * (1/n)`` means), so
  results agree with the reference path to float32 round-off;
* **same randomness** -- dropout masks come from the very same
  :class:`~repro.autograd.Dropout` modules (plan-aware seeded masks, or
  the module's own rng as a fallback), so MC-Dropout draws are unchanged;
* **less work** -- the MLM head runs only at the [MASK] positions
  ((B, D) instead of (B, T, D) -> 1/T of the decoder matmul), and
  duplicate-token flags are memoized per encoding;
* **less memory traffic** -- kernels run in place on owned temporaries
  (same operation order, so bit-identical results), q/k/v come from one
  fused (D, 3D) projection, the big attention matmuls write into
  recycled per-thread scratch buffers, and a no-padding batch skips the
  attention mask fill entirely.

Training never comes through here: with gradients enabled the models use
the recorded Tensor path, which remains the reference implementation.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from ..autograd.layers import active_dropout_plan

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))

_scratch = threading.local()


def _scratch_buf(key: str, shape, dtype) -> np.ndarray:
    """Reusable per-thread output buffer for the large attention matmuls.

    Allocating the (B, H, T, T) score array anew on every forward means a
    multi-megabyte mmap plus first-touch page faults per batch; recycling
    one buffer per (key, thread) removes that cost. GEMM with ``out=``
    overwrites every element, so reuse is bit-transparent.
    """
    store = getattr(_scratch, "bufs", None)
    if store is None:
        store = _scratch.bufs = {}
    buf = store.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
        buf = store[key] = np.empty(shape, dtype)
    return buf


def _apply_dropout(module, x: np.ndarray) -> np.ndarray:
    """Numpy twin of ``Dropout.forward`` (no per-call seed variant)."""
    if not module.training or module.p <= 0.0:
        return x
    plan = active_dropout_plan()
    if plan is not None:
        mask = module._seeded_mask(x.shape, plan.pass_seeds,
                                   plan.batch_index, plan.base_seed)
        if mask is not None:
            return x * mask.astype(x.dtype)
    mask = (module.rng.random(x.shape) >= module.p) / (1.0 - module.p)
    return x * mask.astype(x.dtype)


def _linear(fc, x: np.ndarray) -> np.ndarray:
    out = x @ fc.weight.data
    if fc.bias is not None:
        out += fc.bias.data
    return out


def _layer_norm(ln, x: np.ndarray) -> np.ndarray:
    # Mutates ``x`` (every caller passes an owned temporary); the arithmetic
    # runs in the reference order, so results stay bit-identical while the
    # (B, T, D) intermediates reuse one buffer instead of allocating four.
    dt = x.dtype.type
    inv = dt(1.0 / x.shape[-1])
    mu = x.sum(axis=-1, keepdims=True) * inv
    x -= mu
    var = (x * x).sum(axis=-1, keepdims=True) * inv
    var += dt(ln.eps)
    np.sqrt(var, out=var)
    x /= var
    x *= ln.gamma.data
    x += ln.beta.data
    return x


def _gelu(x: np.ndarray) -> np.ndarray:
    # tanh approximation, evaluated in the reference operation order but
    # with one scratch buffer for the (B, T, 4D) FFN activations.
    dt = x.dtype.type
    inner = x * x
    inner *= x
    inner *= dt(0.044715)
    inner += x
    inner *= dt(_SQRT_2_OVER_PI)
    np.tanh(inner, out=inner)
    inner += dt(1.0)
    inner *= x
    inner *= dt(0.5)
    return inner


def _softmax(x: np.ndarray) -> np.ndarray:
    # In place: attention scores are (B, H, T, T), by far the largest
    # arrays in a forward; callers always hand over a fresh temporary.
    x -= x.max(axis=-1, keepdims=True)
    np.exp(x, out=x)
    x /= x.sum(axis=-1, keepdims=True)
    return x


def _attention(attn, x: np.ndarray,
               score_mask: Optional[np.ndarray]) -> np.ndarray:
    batch, seq, _ = x.shape

    # One fused (D, 3D) projection instead of three (D, D) GEMMs. The
    # column-blocked GEMM reduces over the same K axis in the same order,
    # so each q/k/v element is bit-identical to its separate projection.
    qkv_weight = np.concatenate(
        (attn.q_proj.weight.data, attn.k_proj.weight.data,
         attn.v_proj.weight.data), axis=1)
    qkv = x @ qkv_weight
    if attn.q_proj.bias is not None:
        qkv += np.concatenate(
            (attn.q_proj.bias.data, attn.k_proj.bias.data,
             attn.v_proj.bias.data))

    # (B, T, 3D) -> (B, T, 3, H, d_head): a pure view of the fused output,
    # so q/k/v never get copied out
    qkv = qkv.reshape(batch, seq, 3, attn.num_heads, attn.d_head)
    q = qkv[:, :, 0].transpose(0, 2, 1, 3)
    k = qkv[:, :, 1].transpose(0, 2, 1, 3)
    v = qkv[:, :, 2].transpose(0, 2, 1, 3)
    scores = _scratch_buf("scores", (batch, attn.num_heads, seq, seq), x.dtype)
    np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
    scores *= x.dtype.type(attn.scale)
    if score_mask is not None:
        np.copyto(scores, x.dtype.type(-1e9), where=score_mask)
    weights = _apply_dropout(attn.attn_dropout, _softmax(scores))
    context = _scratch_buf(
        "context", (batch, attn.num_heads, seq, attn.d_head), x.dtype)
    np.matmul(weights, v, out=context)
    context = context.transpose(0, 2, 1, 3)
    return _linear(attn.out_proj, context.reshape(batch, seq, attn.d_model))


def encoder_hidden(lm, embeds: np.ndarray,
                   pad_mask: Optional[np.ndarray]) -> np.ndarray:
    """The TransformerEncoder stack on raw arrays: (B, T, D) -> (B, T, D)."""
    # A no-padding batch (length-homogeneous bucket) masks nothing; skip
    # the (B, H, T, T) masked fill entirely in that case.
    score_mask = (pad_mask[:, None, None, :]
                  if pad_mask is not None and pad_mask.any() else None)
    x = embeds
    for layer in lm.encoder.layers:
        attn_out = _apply_dropout(
            layer.dropout, _attention(layer.attention, x, score_mask))
        adapter = getattr(layer, "adapter_attn", None)
        if adapter is not None:
            _adapter(adapter, attn_out)
        attn_out += x  # residual, in place on the fresh projection output
        x = _layer_norm(layer.norm1, attn_out)
        ffn = layer.ffn
        ffn_out = _apply_dropout(
            ffn.dropout, _linear(ffn.fc2, _gelu(_linear(ffn.fc1, x))))
        adapter = getattr(layer, "adapter_ffn", None)
        if adapter is not None:
            _adapter(adapter, ffn_out)
        ffn_out += x
        x = _layer_norm(layer.norm2, ffn_out)
    return x


def _adapter(adapter, x: np.ndarray) -> np.ndarray:
    """PEFT bottleneck residual, in place on the owned sublayer output.

    Matches ``repro.core.peft.Adapter.forward`` elementwise: the delta is
    computed from the unmutated input, then added (``_gelu`` mutates only
    the owned down-projection temporary).
    """
    x += _linear(adapter.up, _gelu(_linear(adapter.down, x)))
    return x


def _cached_dup_flags(lm, encodings, ids: np.ndarray) -> np.ndarray:
    """Duplicate-token flags, memoized on each encoding.

    Pad tokens are special ids and never count as duplicates, so per-row
    flags are padding-invariant and safe to cache with the encoding.
    """
    flags = np.zeros_like(ids)
    for i, enc in enumerate(encodings):
        if enc.dup_flags is None:
            n = len(enc.ids)
            enc.dup_flags = lm.duplicate_flags(ids[i:i + 1, :n])[0]
        flags[i, :len(enc.dup_flags)] = enc.dup_flags
    return flags


def _embed(lm, token_vecs: np.ndarray, flags: np.ndarray) -> np.ndarray:
    seq = token_vecs.shape[1]
    x = token_vecs  # fresh gather (or np.where result) owned by the caller
    x += lm.position_embedding.weight.data[:seq]
    x += lm.duplicate_embedding.weight.data[flags]
    return _apply_dropout(lm.embedding_dropout, _layer_norm(lm.embedding_norm, x))


def _tile(arr: np.ndarray, tile: int) -> np.ndarray:
    return np.tile(arr, (tile,) + (1,) * (arr.ndim - 1)) if tile > 1 else arr


def prompt_forward_encoded(model, encodings: Sequence, tile: int = 1) -> np.ndarray:
    """Fast twin of ``PromptModel.forward_encoded``: (tile * B, 2) probs."""
    lm = model.lm
    ids, pad_mask, is_prompt, prompt_idx, mask_positions = \
        model._assemble(encodings)
    flags = _cached_dup_flags(lm, encodings, ids)
    ids, pad_mask, flags = _tile(ids, tile), _tile(pad_mask, tile), _tile(flags, tile)
    is_prompt, prompt_idx = _tile(is_prompt, tile), _tile(prompt_idx, tile)
    mask_positions = np.tile(mask_positions, tile) if tile > 1 else mask_positions

    token_vecs = lm.token_embedding.weight.data[ids]
    if model.prompt_encoder is not None and is_prompt.any():
        prompt_vecs = model.prompt_encoder().data  # tiny (P, D) Tensor forward
        gathered = prompt_vecs[prompt_idx.reshape(-1)].reshape(token_vecs.shape)
        token_vecs = np.where(is_prompt[:, :, None], gathered, token_vecs)

    hidden = encoder_hidden(lm, _embed(lm, token_vecs, flags), pad_mask)
    at_mask = hidden[np.arange(hidden.shape[0]), mask_positions]  # (B, D)
    h = _layer_norm(lm.mlm_norm, _gelu(_linear(lm.mlm_transform, at_mask)))
    logits = h @ lm.token_embedding.weight.data.T + lm.mlm_bias.data

    probs = _softmax(logits)
    dt = probs.dtype.type
    cols = []
    for label in (0, 1):  # Eq. 1, mirroring Verbalizer.class_probs
        word_ids = model.verbalizer.ids[label]
        cols.append(probs[:, word_ids].sum(axis=1) * dt(1.0 / len(word_ids)))
    scores = np.stack(cols, axis=1)
    return scores / (scores.sum(axis=1, keepdims=True) + dt(1e-12))


def cls_forward_encoded(model, ids: np.ndarray, pad_mask: np.ndarray,
                        encodings: Sequence, tile: int = 1) -> np.ndarray:
    """Fast twin of ``SequenceClassifier.forward_encoded``."""
    lm = model.lm
    flags = _cached_dup_flags(lm, encodings, ids)
    ids, pad_mask, flags = _tile(ids, tile), _tile(pad_mask, tile), _tile(flags, tile)

    token_vecs = lm.token_embedding.weight.data[ids]
    hidden = encoder_hidden(lm, _embed(lm, token_vecs, flags), pad_mask)
    pooled = np.tanh(_linear(lm.pooler, hidden[:, 0, :]))
    pooled = _apply_dropout(model.head_dropout, pooled)
    return _softmax(_linear(model.head, pooled))
