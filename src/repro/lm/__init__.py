"""MiniLM: the pre-trained masked language model substrate.

Lazily exported (PEP 562): serving processes import :class:`MiniLM` and
:class:`LMConfig` from their defining modules without touching the
pre-training loop in :mod:`repro.lm.pretrain` (which :mod:`repro.lm.zoo`
pulls in for cache-miss training).
"""

#: public name -> defining submodule, resolved on first attribute access
_EXPORTS = {
    "LMConfig": "repro.lm.config",
    "MiniLM": "repro.lm.model",
    "pad_batch": "repro.lm.model",
    "IGNORE_INDEX": "repro.lm.pretrain",
    "PretrainConfig": "repro.lm.pretrain",
    "PretrainResult": "repro.lm.pretrain",
    "mask_tokens": "repro.lm.pretrain",
    "pretrain": "repro.lm.pretrain",
    "available_models": "repro.lm.zoo",
    "default_cache_dir": "repro.lm.zoo",
    "load_pretrained": "repro.lm.zoo",
}

_SUBMODULES = frozenset({"config", "model", "pretrain", "zoo"})

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    import importlib

    # exports first: ``pretrain`` names both the function and its module
    target = _EXPORTS.get(name)
    if target is not None:
        return getattr(importlib.import_module(target), name)
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class _Package(__import__("types").ModuleType):
    """Keeps ``repro.lm.pretrain`` bound to the *function*.

    When any code imports the :mod:`repro.lm.pretrain` submodule (zoo does,
    on a cache miss), the import system binds that module object onto this
    package, which would permanently shadow the lazily exported ``pretrain``
    function -- ``__getattr__`` never fires for attributes that exist. Skip
    exactly that one binding (the import machinery setting the real
    submodule object); the module stays reachable through ``sys.modules``,
    and any *other* assignment -- a test monkeypatching a stub module, a
    future colliding submodule -- goes through normally.
    """

    def __setattr__(self, name, value):
        import sys

        if name == "pretrain" \
                and value is sys.modules.get(f"{__name__}.pretrain"):
            return
        super().__setattr__(name, value)


__import__("sys").modules[__name__].__class__ = _Package


def __dir__():
    return sorted(__all__)
