"""MiniLM: the pre-trained masked language model substrate."""

from .config import LMConfig
from .model import MiniLM, pad_batch
from .pretrain import IGNORE_INDEX, PretrainConfig, PretrainResult, mask_tokens, pretrain
from .zoo import available_models, default_cache_dir, load_pretrained

__all__ = [
    "LMConfig", "MiniLM", "pad_batch",
    "PretrainConfig", "PretrainResult", "pretrain", "mask_tokens", "IGNORE_INDEX",
    "load_pretrained", "available_models", "default_cache_dir",
]
