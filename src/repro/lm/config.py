"""MiniLM configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class LMConfig:
    """Architecture hyperparameters of the MiniLM encoder.

    The defaults are a scaled-down RoBERTa: the layer structure (learned
    positional embeddings, post-norm encoder blocks, GELU FFN, tied MLM
    decoder) matches the paper's backbone; only the widths are small enough
    to train on a CPU in seconds.
    """

    vocab_size: int = 1000
    d_model: int = 64
    num_layers: int = 2
    num_heads: int = 4
    d_ff: int = 128
    max_len: int = 128
    dropout: float = 0.1
    #: number of attention heads per layer initialized as content-matching
    #: (identical Q/K projections) -- seeds the duplicate-detection circuit
    matched_heads: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.vocab_size <= 0 or self.max_len <= 0:
            raise ValueError("vocab_size and max_len must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LMConfig":
        return cls(**data)
