"""MiniLM: a small transformer masked language model.

This is the reproduction's stand-in for RoBERTa-base. It exposes exactly the
three surfaces the PromptEM pipeline and the baselines need:

* :meth:`MiniLM.encode` -- contextual hidden states for a padded batch;
* :meth:`MiniLM.mlm_logits` -- vocabulary logits at every position, with the
  decoder tied to the input embedding (the MLM head whose pre-trained
  knowledge prompt-tuning exploits);
* :meth:`MiniLM.pooled` -- tanh-pooled [CLS] representation used by
  fine-tuning classification heads (vanilla fine-tuning, Section 2.3).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import (
    Dropout, Embedding, LayerNorm, Linear, Module, Parameter, Tensor,
    TransformerEncoder, functional as F,
)
from .config import LMConfig


class MiniLM(Module):
    """Transformer encoder with tied-embedding MLM head."""

    def __init__(self, config: LMConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)

        self.token_embedding = Embedding(config.vocab_size, config.d_model,
                                         rng=rng, padding_idx=0)
        self.position_embedding = Embedding(config.max_len, config.d_model, rng=rng)
        # Lexical-matching indicator (ESIM-style): tokens that occur more
        # than once in the sequence -- i.e. shared between the two entity
        # segments of a pair -- receive a learned "duplicate" embedding.
        # Large pre-trained LMs develop this duplicate-detection circuit
        # during pre-training; at MiniLM scale we supply it architecturally
        # so the *rest* of the pipeline (MLM head vs classification head,
        # self-training, pruning) is exercised faithfully.
        self.duplicate_embedding = Embedding(2, config.d_model, rng=rng)
        self.embedding_norm = LayerNorm(config.d_model)
        self.embedding_dropout = Dropout(
            config.dropout, rng=np.random.default_rng(rng.integers(2**31)))
        self.encoder = TransformerEncoder(
            config.num_layers, config.d_model, config.num_heads, config.d_ff,
            rng=rng, dropout=config.dropout,
            matched_heads=config.matched_heads)

        # MLM head: transform + tied decoder (logits share the embedding table).
        self.mlm_transform = Linear(config.d_model, config.d_model, rng=rng)
        self.mlm_norm = LayerNorm(config.d_model)
        self.mlm_bias = Parameter(np.zeros(config.vocab_size))

        # Pooler for classification-style heads.
        self.pooler = Linear(config.d_model, config.d_model, rng=rng)

    # ------------------------------------------------------------------
    @staticmethod
    def duplicate_flags(token_ids: np.ndarray,
                        num_special: int = 7) -> np.ndarray:
        """(B, T) -> (B, T) int flags: 1 where a non-special token id occurs
        more than once within its sequence."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        flags = np.zeros_like(token_ids)
        for i, row in enumerate(token_ids):
            values, counts = np.unique(row, return_counts=True)
            repeated = set(values[(counts > 1) & (values >= num_special)])
            if repeated:
                flags[i] = np.isin(row, list(repeated)).astype(np.int64)
        return flags

    def embed(self, token_ids: np.ndarray) -> Tensor:
        """(B, T) int ids -> (B, T, D) embeddings with positions."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) ids, got shape {token_ids.shape}")
        seq_len = token_ids.shape[1]
        if seq_len > self.config.max_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_len {self.config.max_len}")
        positions = np.broadcast_to(np.arange(seq_len), token_ids.shape)
        x = (self.token_embedding(token_ids)
             + self.position_embedding(positions)
             + self.duplicate_embedding(self.duplicate_flags(token_ids)))
        return self.embedding_dropout(self.embedding_norm(x))

    def encode(self, token_ids: np.ndarray,
               pad_mask: Optional[np.ndarray] = None,
               inputs_embeds: Optional[Tensor] = None) -> Tensor:
        """Contextual hidden states (B, T, D).

        ``inputs_embeds`` lets P-tuning splice trainable continuous prompt
        vectors directly into the embedding stream (paper Section 3.1).
        """
        if inputs_embeds is None:
            inputs_embeds = self.embed(token_ids)
        else:
            token_ids = np.asarray(token_ids, dtype=np.int64)
        if pad_mask is None:
            pad_mask = token_ids == 0
        return self.encoder(inputs_embeds, pad_mask=pad_mask)

    def embed_from_vectors(self, vectors: Tensor, positions: np.ndarray,
                           token_ids: Optional[np.ndarray] = None) -> Tensor:
        """Apply positional (and duplicate, when ids are given) embeddings +
        norm + dropout to raw token vectors (the P-tuning injection path)."""
        x = vectors + self.position_embedding(positions)
        if token_ids is not None:
            x = x + self.duplicate_embedding(self.duplicate_flags(token_ids))
        return self.embedding_dropout(self.embedding_norm(x))

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        """(B, T, D) hidden -> (B, T, V) vocabulary logits (tied decoder)."""
        h = self.mlm_norm(F.gelu(self.mlm_transform(hidden)))
        return h @ self.token_embedding.weight.T + self.mlm_bias

    def pooled(self, hidden: Tensor) -> Tensor:
        """Tanh-pooled [CLS] vector: (B, T, D) -> (B, D)."""
        return self.pooler(hidden[:, 0, :]).tanh()

    # ------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray,
                pad_mask: Optional[np.ndarray] = None) -> Tensor:
        return self.encode(token_ids, pad_mask=pad_mask)


def pad_batch(sequences, pad_id: int = 0,
              max_len: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Pad a list of id lists to a rectangular (B, T) batch.

    Returns (ids, pad_mask) where pad_mask is True at padding positions.
    """
    if not sequences:
        raise ValueError("cannot pad an empty batch")
    longest = max(len(s) for s in sequences)
    if max_len is not None:
        longest = min(longest, max_len)
    ids = np.full((len(sequences), longest), pad_id, dtype=np.int64)
    mask = np.ones((len(sequences), longest), dtype=bool)
    for i, seq in enumerate(sequences):
        seq = list(seq)[:longest]
        ids[i, : len(seq)] = seq
        mask[i, : len(seq)] = False
    return ids, mask
