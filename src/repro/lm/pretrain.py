"""Masked-language-model pre-training (the RoBERTa recipe, scaled down).

Dynamic masking: each epoch re-samples which 15% of (non-special) positions
are masked; of those, 80% become [MASK], 10% a random token, 10% stay
unchanged. The loss is cross-entropy on masked positions only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import AdamW, functional as F, gather_rows
from ..infer.engine import pack_buckets
from ..obs import get_telemetry
from ..parallel import WorkerPool, effective_workers, shard_indices
from ..text import Tokenizer
from .model import MiniLM, pad_batch

IGNORE_INDEX = -100


@dataclass
class PretrainConfig:
    """Hyperparameters of the MLM pre-training run."""

    epochs: int = 3
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.01
    mask_prob: float = 0.15
    #: extra masking probability for ``focus_tokens`` (label words): the
    #: corpus's relation statements are only useful if the decisive word is
    #: actually masked often enough to be learned as a cloze target.
    focus_mask_prob: float = 0.6
    focus_tokens: tuple = ()
    max_len: int = 64
    grad_clip: float = 1.0
    seed: int = 0
    #: pack mini-batches of similar-length sequences under ``rows x longest
    #: <= token_budget`` (capped at ``batch_size`` rows) so short sentences
    #: do not pay padded-position FLOPs up to the corpus maximum. ``None``
    #: falls back to fixed ``batch_size`` slices of the shuffled order.
    token_budget: Optional[int] = 4096
    #: visit sequences in exactly the seed loop's shuffled order (fixed
    #: ``batch_size`` slices), keeping the masking rng stream bit-identical
    #: to the original implementation -- the parity mode used by checkpoint
    #: zoo builds and the training benchmark.
    order_preserving: bool = False
    #: fork this many workers to tokenize the corpus (deterministic, so
    #: results never depend on it); ``<=1`` encodes in-process
    workers: int = 1


@dataclass
class PretrainResult:
    """Loss trajectory of a pre-training run."""

    epoch_losses: List[float] = field(default_factory=list)
    #: optimizer steps taken (mini-batches that had >= 1 masked position)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def mask_tokens(ids: np.ndarray, pad_mask: np.ndarray, vocab_size: int,
                mask_id: int, special_ids: Sequence[int],
                rng: np.random.Generator, mask_prob: float = 0.15,
                focus_ids: Sequence[int] = (),
                focus_mask_prob: float = 0.6):
    """Apply BERT-style dynamic masking.

    Returns (masked_ids, labels) where labels hold the original token at
    masked positions and IGNORE_INDEX elsewhere. Tokens in ``focus_ids``
    are masked with ``focus_mask_prob`` instead of ``mask_prob``.
    """
    ids = ids.copy()
    labels = np.full_like(ids, IGNORE_INDEX)

    eligible = ~pad_mask
    for sid in special_ids:
        eligible &= ids != sid

    threshold = np.full(ids.shape, mask_prob)
    if len(focus_ids):
        focused = np.isin(ids, np.asarray(list(focus_ids), dtype=np.int64))
        threshold[focused] = focus_mask_prob
    lottery = rng.random(ids.shape) < threshold
    chosen = eligible & lottery
    labels[chosen] = ids[chosen]

    action = rng.random(ids.shape)
    to_mask = chosen & (action < 0.8)
    to_random = chosen & (action >= 0.8) & (action < 0.9)
    ids[to_mask] = mask_id
    n_random = int(to_random.sum())
    if n_random:
        ids[to_random] = rng.integers(len(special_ids), vocab_size, size=n_random)
    return ids, labels


def _encode_corpus(tokenizer: Tokenizer, corpus: Sequence[str],
                   max_len: int, workers: int) -> List[np.ndarray]:
    """Tokenize ``corpus`` (optionally on a forked pool), preserving order.

    Chunks are contiguous, so concatenating the per-chunk results
    reproduces the serial order; encoding is deterministic, so the worker
    count cannot change a single id.
    """
    workers = effective_workers(workers)
    if workers <= 1 or len(corpus) < 4 * workers:
        return [tokenizer.encode(text, max_len=max_len).ids
                for text in corpus]

    def encode_chunk(chunk):
        return [tokenizer.encode(corpus[int(i)], max_len=max_len).ids
                for i in chunk]

    with WorkerPool(workers, encode_chunk) as pool:
        parts = pool.map(shard_indices(len(corpus), workers))
    return [ids for part in parts for ids in part]


def _epoch_batches(order: np.ndarray, lengths: Sequence[int],
                   config: PretrainConfig, rng: np.random.Generator):
    """Yield corpus-index arrays for one epoch's mini-batches.

    Parity mode (``order_preserving`` or no ``token_budget``): fixed
    ``batch_size`` slices of the shuffled ``order``, exactly the seed loop.
    Fastpath: length-bucketed packing under the token budget, visiting
    buckets in random order so training sees no short-to-long curriculum.
    """
    if config.order_preserving or config.token_budget is None:
        for start in range(0, len(order), config.batch_size):
            yield order[start:start + config.batch_size]
        return
    shuffled_lengths = [lengths[i] for i in order]
    buckets = pack_buckets(shuffled_lengths, config.token_budget,
                           config.batch_size)
    for b in rng.permutation(len(buckets)):
        yield order[buckets[b]]


def pretrain(model: MiniLM, tokenizer: Tokenizer, corpus: Sequence[str],
             config: Optional[PretrainConfig] = None,
             verbose: bool = False) -> PretrainResult:
    """Pre-train ``model`` in place on ``corpus``; returns the loss trace."""
    config = config if config is not None else PretrainConfig()
    rng = np.random.default_rng(config.seed)
    vocab = tokenizer.vocab

    encoded = _encode_corpus(
        tokenizer, list(corpus),
        max_len=min(config.max_len, model.config.max_len),
        workers=config.workers)
    encoded = [ids for ids in encoded if len(ids) > 2]
    if not encoded:
        raise ValueError("corpus produced no usable sequences")

    optimizer = AdamW(model.parameters(), lr=config.lr,
                      weight_decay=config.weight_decay)
    result = PretrainResult()
    model.train()

    focus_ids = [vocab.id_of(t) for t in config.focus_tokens if t in vocab]
    lengths = [len(ids) for ids in encoded]

    tel = get_telemetry()
    with tel.span("lm.pretrain", epochs=config.epochs,
                  sequences=len(encoded)):
        for epoch in range(config.epochs):
            order = rng.permutation(len(encoded))
            losses: List[float] = []
            epoch_tokens = 0
            masked_positions = 0
            epoch_started = time.perf_counter()
            for index in _epoch_batches(order, lengths, config, rng):
                batch = [encoded[i] for i in index]
                ids, pad_mask = pad_batch(batch, pad_id=vocab.pad_id)
                masked, labels = mask_tokens(
                    ids, pad_mask, vocab_size=len(vocab), mask_id=vocab.mask_id,
                    special_ids=vocab.special_ids, rng=rng,
                    mask_prob=config.mask_prob,
                    focus_ids=focus_ids,
                    focus_mask_prob=config.focus_mask_prob)
                rows, cols = np.nonzero(labels != IGNORE_INDEX)
                if not len(rows):
                    continue
                hidden = model.encode(masked, pad_mask=pad_mask)
                # project only masked positions through the (d, V) vocab head:
                # (n_masked, d) x (d, V) instead of (B*T, d) x (d, V).
                at_mask = gather_rows(hidden, rows, cols)
                loss = F.cross_entropy(model.mlm_logits(at_mask),
                                       labels[rows, cols])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step(grad_clip=config.grad_clip)
                losses.append(loss.item())
                result.steps += 1
                if tel.enabled:
                    epoch_tokens += int(sum(lengths[i] for i in index))
                    masked_positions += len(rows)
                    tel.metrics.counter("pretrain.steps").inc()
            epoch_loss = float(np.mean(losses)) if losses else float("nan")
            result.epoch_losses.append(epoch_loss)
            if tel.enabled:
                epoch_elapsed = time.perf_counter() - epoch_started
                tel.event("pretrain.epoch", epoch=epoch,
                          mlm_loss=epoch_loss, steps=len(losses),
                          tokens=epoch_tokens,
                          masked_positions=masked_positions,
                          tokens_per_sec=epoch_tokens / epoch_elapsed
                          if epoch_elapsed > 0 else 0.0)
            if verbose:
                print(f"[pretrain] epoch {epoch + 1}/{config.epochs} mlm_loss={epoch_loss:.4f}")

    model.eval()
    return result
