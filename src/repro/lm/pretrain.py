"""Masked-language-model pre-training (the RoBERTa recipe, scaled down).

Dynamic masking: each epoch re-samples which 15% of (non-special) positions
are masked; of those, 80% become [MASK], 10% a random token, 10% stay
unchanged. The loss is cross-entropy on masked positions only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import AdamW, clip_grad_norm, functional as F
from ..text import Tokenizer
from .model import MiniLM, pad_batch

IGNORE_INDEX = -100


@dataclass
class PretrainConfig:
    """Hyperparameters of the MLM pre-training run."""

    epochs: int = 3
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.01
    mask_prob: float = 0.15
    #: extra masking probability for ``focus_tokens`` (label words): the
    #: corpus's relation statements are only useful if the decisive word is
    #: actually masked often enough to be learned as a cloze target.
    focus_mask_prob: float = 0.6
    focus_tokens: tuple = ()
    max_len: int = 64
    grad_clip: float = 1.0
    seed: int = 0


@dataclass
class PretrainResult:
    """Loss trajectory of a pre-training run."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def mask_tokens(ids: np.ndarray, pad_mask: np.ndarray, vocab_size: int,
                mask_id: int, special_ids: Sequence[int],
                rng: np.random.Generator, mask_prob: float = 0.15,
                focus_ids: Sequence[int] = (),
                focus_mask_prob: float = 0.6):
    """Apply BERT-style dynamic masking.

    Returns (masked_ids, labels) where labels hold the original token at
    masked positions and IGNORE_INDEX elsewhere. Tokens in ``focus_ids``
    are masked with ``focus_mask_prob`` instead of ``mask_prob``.
    """
    ids = ids.copy()
    labels = np.full_like(ids, IGNORE_INDEX)

    eligible = ~pad_mask
    for sid in special_ids:
        eligible &= ids != sid

    threshold = np.full(ids.shape, mask_prob)
    if len(focus_ids):
        focused = np.isin(ids, np.asarray(list(focus_ids), dtype=np.int64))
        threshold[focused] = focus_mask_prob
    lottery = rng.random(ids.shape) < threshold
    chosen = eligible & lottery
    labels[chosen] = ids[chosen]

    action = rng.random(ids.shape)
    to_mask = chosen & (action < 0.8)
    to_random = chosen & (action >= 0.8) & (action < 0.9)
    ids[to_mask] = mask_id
    n_random = int(to_random.sum())
    if n_random:
        ids[to_random] = rng.integers(len(special_ids), vocab_size, size=n_random)
    return ids, labels


def pretrain(model: MiniLM, tokenizer: Tokenizer, corpus: Sequence[str],
             config: Optional[PretrainConfig] = None,
             verbose: bool = False) -> PretrainResult:
    """Pre-train ``model`` in place on ``corpus``; returns the loss trace."""
    config = config if config is not None else PretrainConfig()
    rng = np.random.default_rng(config.seed)
    vocab = tokenizer.vocab

    encoded = [
        tokenizer.encode(text, max_len=min(config.max_len, model.config.max_len)).ids
        for text in corpus
    ]
    encoded = [ids for ids in encoded if len(ids) > 2]
    if not encoded:
        raise ValueError("corpus produced no usable sequences")

    optimizer = AdamW(model.parameters(), lr=config.lr,
                      weight_decay=config.weight_decay)
    result = PretrainResult()
    model.train()

    for epoch in range(config.epochs):
        order = rng.permutation(len(encoded))
        losses: List[float] = []
        for start in range(0, len(order), config.batch_size):
            batch = [encoded[i] for i in order[start:start + config.batch_size]]
            ids, pad_mask = pad_batch(batch, pad_id=vocab.pad_id)
            masked, labels = mask_tokens(
                ids, pad_mask, vocab_size=len(vocab), mask_id=vocab.mask_id,
                special_ids=vocab.special_ids, rng=rng,
                mask_prob=config.mask_prob,
                focus_ids=[vocab.id_of(t) for t in config.focus_tokens
                           if t in vocab],
                focus_mask_prob=config.focus_mask_prob)
            if (labels == IGNORE_INDEX).all():
                continue
            hidden = model.encode(masked, pad_mask=pad_mask)
            logits = model.mlm_logits(hidden)
            flat_logits = logits.reshape(-1, len(vocab))
            loss = F.cross_entropy(flat_logits, labels.reshape(-1),
                                   ignore_index=IGNORE_INDEX)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        epoch_loss = float(np.mean(losses)) if losses else float("nan")
        result.epoch_losses.append(epoch_loss)
        if verbose:
            print(f"[pretrain] epoch {epoch + 1}/{config.epochs} mlm_loss={epoch_loss:.4f}")

    model.eval()
    return result
