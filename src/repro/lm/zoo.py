"""Named pre-trained checkpoints with a disk cache.

``load_pretrained("minilm-base")`` plays the role of
``AutoModel.from_pretrained("roberta-base")`` in the paper's stack: the first
call builds the synthetic corpus, trains the MLM, and caches the checkpoint;
later calls (and other processes) reload it in milliseconds.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..text import Tokenizer, Vocabulary, build_corpus, build_vocab
from ..text.lexicon import (
    NEGATIVE_LABEL_WORDS, POSITIVE_LABEL_WORDS, all_domain_words,
)
from .config import LMConfig
from .model import MiniLM
from .pretrain import PretrainConfig, pretrain
from ..autograd import load_checkpoint, save_checkpoint


_LABEL_WORDS = tuple(POSITIVE_LABEL_WORDS + NEGATIVE_LABEL_WORDS)


@dataclass(frozen=True)
class ZooSpec:
    """Recipe for a named checkpoint: architecture + pre-training budget."""

    lm: LMConfig
    pretrain: PretrainConfig
    corpus_sentences: int
    corpus_seed: int = 0


def _specs() -> Dict[str, ZooSpec]:
    # vocab_size=1 is a placeholder; the real size is substituted once the
    # vocabulary has been built from the corpus.
    return {
        # The workhorse checkpoint used by benches and examples.
        "minilm-base": ZooSpec(
            lm=LMConfig(vocab_size=1, d_model=64, num_layers=2, num_heads=4,
                        d_ff=128, max_len=160, dropout=0.1, seed=0),
            # order_preserving keeps freshly built checkpoints on the same
            # masking-rng trajectory as the seed implementation, so cached
            # and rebuilt checkpoints stay interchangeable.
            pretrain=PretrainConfig(epochs=6, batch_size=32, lr=1e-3,
                                    max_len=96, seed=0,
                                    focus_tokens=_LABEL_WORDS,
                                    order_preserving=True),
            corpus_sentences=6000,
        ),
        # A very small checkpoint for fast unit tests.
        "minilm-tiny": ZooSpec(
            lm=LMConfig(vocab_size=1, d_model=32, num_layers=1, num_heads=2,
                        d_ff=64, max_len=128, dropout=0.1, seed=0),
            pretrain=PretrainConfig(epochs=3, batch_size=32, lr=1.5e-3,
                                    max_len=64, seed=0,
                                    focus_tokens=_LABEL_WORDS,
                                    order_preserving=True),
            corpus_sentences=2000,
        ),
    }


def available_models() -> Tuple[str, ...]:
    return tuple(_specs())


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-promptem"


def _build_vocabulary(spec: ZooSpec) -> Vocabulary:
    corpus = build_corpus(spec.corpus_sentences, seed=spec.corpus_seed)
    # Seed the vocab with every domain word so downstream datasets never
    # depend on corpus sampling luck.
    return build_vocab(corpus + [" ".join(all_domain_words())], max_words=3000)


def load_pretrained(name: str = "minilm-base",
                    cache_dir: Optional[Path] = None,
                    force_retrain: bool = False,
                    verbose: bool = False) -> Tuple[MiniLM, Tokenizer]:
    """Return a pre-trained (model, tokenizer) pair, training if not cached."""
    specs = _specs()
    if name not in specs:
        raise KeyError(f"unknown model {name!r}; available: {sorted(specs)}")
    spec = specs[name]
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    model_path = cache_dir / f"{name}.npz"
    vocab_path = cache_dir / f"{name}.vocab.json"

    if not force_retrain and model_path.exists() and vocab_path.exists():
        with open(vocab_path) as f:
            payload = json.load(f)
        vocab = Vocabulary()
        from ..text.vocab import SPECIAL_TOKENS

        for token in payload["tokens"][len(SPECIAL_TOKENS):]:
            vocab.add(token)
        config = LMConfig.from_dict(payload["lm_config"])
        model = MiniLM(config)
        load_checkpoint(model, model_path)
        model.eval()
        return model, Tokenizer(vocab)

    vocab = _build_vocabulary(spec)
    config = LMConfig(**{**spec.lm.to_dict(), "vocab_size": len(vocab)})
    model = MiniLM(config)
    tokenizer = Tokenizer(vocab)
    corpus = build_corpus(spec.corpus_sentences, seed=spec.corpus_seed)
    result = pretrain(model, tokenizer, corpus, config=spec.pretrain, verbose=verbose)

    cache_dir.mkdir(parents=True, exist_ok=True)
    save_checkpoint(model, model_path, metadata={
        "name": name, "final_loss": result.final_loss,
    })
    with open(vocab_path, "w") as f:
        json.dump({"tokens": vocab.tokens(), "lm_config": config.to_dict()}, f)
    model.eval()
    return model, tokenizer
