"""Observability: metrics, tracing, and structured run telemetry.

Three layers behind one process-global switch:

* :class:`MetricsRegistry` -- counters, gauges, fixed-bucket histograms,
  streaming quantile sketches and EWMA timers, with a strict no-op fast
  path when telemetry is off (<2% overhead on a training loop, bounded by
  ``benchmarks/bench_observability.py``);
* hierarchical tracing -- ``span("trainer.fit")`` context managers
  measuring wall + CPU time with nesting, exportable as JSONL events;
* :class:`RunLog` -- a schema-versioned JSONL event writer covering
  trainer steps, self-training rounds, engine/cache stats and worker-pool
  task latencies.

Enable with :func:`telemetry_session` (the CLI's ``--telemetry out.jsonl``
/ ``--trace`` flags do) and render a run afterwards with
``scripts/report_run.py``. See ``docs/OBSERVABILITY.md``.
"""

from .merge import merge_metric, merge_snapshots
from .registry import (
    DEFAULT_BUCKETS, NULL_REGISTRY, Counter, EwmaTimer, Gauge, Histogram,
    MetricsRegistry, NullMetric, NullRegistry, QuantileSketch,
)
from .resources import (
    ResourceMeter, ResourceReport, format_bytes, format_seconds,
)
from .serving import (
    TRACE_STAGES, DriftConfig, DriftMonitor, RequestTracer, SloObjectives,
    SloTracker, TraceContext, format_trace, stitch_trace,
)
from .runlog import (
    EVENT_FIELDS, SCHEMA_VERSION, VOLATILE_FIELDS, RunLog, is_volatile_field,
    iter_events, read_events, strip_volatile, validate_record,
)
from .telemetry import (
    DISABLED, DisabledTelemetry, Telemetry, fingerprint_digest,
    get_telemetry, install_telemetry, span, telemetry_session,
    uninstall_telemetry,
)
from .tracing import NULL_SPAN, Span, Tracer

__all__ = [
    # registry
    "MetricsRegistry", "NullRegistry", "NullMetric", "NULL_REGISTRY",
    "Counter", "Gauge", "Histogram", "QuantileSketch", "EwmaTimer",
    "DEFAULT_BUCKETS",
    # tracing
    "Tracer", "Span", "NULL_SPAN",
    # run log
    "RunLog", "SCHEMA_VERSION", "EVENT_FIELDS", "VOLATILE_FIELDS",
    "read_events", "iter_events", "validate_record", "strip_volatile",
    "is_volatile_field",
    # telemetry session
    "Telemetry", "DisabledTelemetry", "DISABLED", "get_telemetry",
    "install_telemetry", "uninstall_telemetry", "telemetry_session", "span",
    "fingerprint_digest",
    # resources (moved from repro.eval.resources)
    "ResourceMeter", "ResourceReport", "format_seconds", "format_bytes",
    # snapshot merging (pool-wide /metrics)
    "merge_snapshots", "merge_metric",
    # serving observability
    "TraceContext", "RequestTracer", "stitch_trace", "format_trace",
    "TRACE_STAGES", "SloObjectives", "SloTracker", "DriftConfig",
    "DriftMonitor",
]
