"""Pool-wide metrics aggregation: merging registry snapshots.

A :class:`~repro.serve.pool.ServingPool` runs one
:class:`~repro.obs.MetricsRegistry` per process -- the router's plus one
inside every forked replica.  Each process's snapshot is correct for its
own slice of the traffic; ``GET /metrics`` must reflect the whole pool.
Replicas therefore ship their snapshots over the existing result pipes
(periodic pushes plus an on-demand pull) and the parent merges them here.

Merging is defined *per metric kind* on the plain snapshot dicts the
registry already produces, so no live metric objects ever cross a process
boundary:

* **counter** -- values sum (each process's counter is its own monotonic
  total, so summing full snapshots is exact; no delta bookkeeping);
* **gauge** -- last-write-wins: the source with the most ``writes`` owns
  the value (ties break on source label order); ``writes`` sum.  Gauges
  that must stay per-process (queue depths, per-replica outstanding)
  should encode the process in their *name* -- the pool's
  ``pool.replica<i>.outstanding`` gauges already do;
* **histogram** -- bucket-wise count addition over the union of bounds,
  plus count/sum/min/max combination (mean is recomputed);
* **quantiles** -- reservoirs merge: when sources carry their sample
  lists (``snapshot(include_samples=True)``), the merged quantiles are
  recomputed over the pooled samples; otherwise the estimate degrades
  gracefully to a count-weighted average of the per-source quantiles;
* **timer** -- count/sum add, ``ewma`` is the count-weighted mean of the
  source EWMAs, ``last`` comes from the source with the most
  observations.

A name bound to different kinds in different sources raises -- silently
aliasing a counter onto a histogram would corrupt both, exactly the rule
:class:`~repro.obs.MetricsRegistry` enforces within one process.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["merge_metric", "merge_snapshots"]


def _merge_counter(entries: List[Tuple[str, dict]]) -> dict:
    return {"kind": "counter",
            "value": sum(snap.get("value", 0.0) for _, snap in entries)}


def _merge_gauge(entries: List[Tuple[str, dict]]) -> dict:
    # last-write-wins by observed write count; label order breaks ties so
    # the merge is deterministic for a given source mapping
    owner = max(entries, key=lambda item: (item[1].get("writes", 0),
                                           item[0]))
    return {"kind": "gauge",
            "value": owner[1].get("value", 0.0),
            "writes": sum(snap.get("writes", 0) for _, snap in entries)}


def _merge_histogram(entries: List[Tuple[str, dict]]) -> dict:
    buckets: Dict[str, float] = {}
    count = 0
    total = 0.0
    overflow = 0
    lo = float("inf")
    hi = float("-inf")
    for _, snap in entries:
        for bound, bucket_count in snap.get("buckets", {}).items():
            buckets[bound] = buckets.get(bound, 0) + bucket_count
        count += snap.get("count", 0)
        total += snap.get("sum", 0.0)
        overflow += snap.get("overflow", 0)
        if snap.get("count", 0):
            lo = min(lo, snap.get("min", lo))
            hi = max(hi, snap.get("max", hi))
    ordered = {bound: buckets[bound]
               for bound in sorted(buckets, key=float)}
    return {"kind": "histogram", "count": count, "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if count else 0.0, "max": hi if count else 0.0,
            "buckets": ordered, "overflow": overflow}


def _merge_quantiles(entries: List[Tuple[str, dict]]) -> dict:
    count = 0
    total = 0.0
    lo = float("inf")
    hi = float("-inf")
    samples: List[float] = []
    sampled = True
    for _, snap in entries:
        count += snap.get("count", 0)
        total += snap.get("mean", 0.0) * snap.get("count", 0)
        if snap.get("count", 0):
            lo = min(lo, snap.get("min", lo))
            hi = max(hi, snap.get("max", hi))
        if "samples" in snap:
            samples.extend(snap["samples"])
        elif snap.get("count", 0):
            sampled = False
    merged = {"kind": "quantiles", "count": count,
              "mean": total / count if count else 0.0,
              "min": lo if count else 0.0, "max": hi if count else 0.0}
    if sampled and samples:
        ordered = sorted(samples)
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            rank = min(int(q * len(ordered)), len(ordered) - 1)
            merged[label] = ordered[rank]
    else:
        # no reservoirs shipped: degrade to a count-weighted average of
        # the per-source estimates (exact when the sources agree)
        for label in ("p50", "p90", "p99"):
            weighted = sum(snap.get(label, 0.0) * snap.get("count", 0)
                           for _, snap in entries)
            merged[label] = weighted / count if count else 0.0
    return merged


def _merge_timer(entries: List[Tuple[str, dict]]) -> dict:
    count = sum(snap.get("count", 0) for _, snap in entries)
    total = sum(snap.get("sum", 0.0) for _, snap in entries)
    ewma = (sum(snap.get("ewma", 0.0) * snap.get("count", 0)
                for _, snap in entries) / count) if count else 0.0
    owner = max(entries, key=lambda item: (item[1].get("count", 0),
                                           item[0]))
    return {"kind": "timer", "count": count, "sum": total,
            "ewma": ewma, "last": owner[1].get("last", 0.0)}


_MERGERS = {
    "counter": _merge_counter,
    "gauge": _merge_gauge,
    "histogram": _merge_histogram,
    "quantiles": _merge_quantiles,
    "timer": _merge_timer,
}


def merge_metric(name: str, entries: List[Tuple[str, dict]]) -> dict:
    """Merge one metric's per-source snapshots (``(label, snapshot)``)."""
    kinds = {snap.get("kind") for _, snap in entries}
    kinds.discard("null")
    if not kinds:
        return {"kind": "null"}
    if len(kinds) > 1:
        raise ValueError(f"metric {name!r} has conflicting kinds across "
                         f"sources: {sorted(kinds)}")
    kind = kinds.pop()
    merger = _MERGERS.get(kind)
    if merger is None:
        raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
    live = [(label, snap) for label, snap in entries
            if snap.get("kind") == kind]
    return merger(sorted(live, key=lambda item: item[0]))


def merge_snapshots(snapshots: Mapping[str, Dict[str, dict]],
                    strict: bool = True) -> Dict[str, dict]:
    """Merge per-source registry snapshots into one pool-wide snapshot.

    ``snapshots`` maps a source label (``"router"``, ``"replica0"`` ...)
    to that process's :meth:`~repro.obs.MetricsRegistry.snapshot` dict.
    With ``strict=False`` a cross-source kind conflict drops the metric
    (annotated as kind ``conflict``) instead of raising -- the transport
    path uses this so one misbehaving replica cannot take ``/metrics``
    down.
    """
    by_name: Dict[str, List[Tuple[str, dict]]] = {}
    for label, snapshot in snapshots.items():
        if not snapshot:
            continue
        for name, metric in snapshot.items():
            by_name.setdefault(name, []).append((label, metric))
    merged: Dict[str, dict] = {}
    for name in sorted(by_name):
        try:
            merged[name] = merge_metric(name, by_name[name])
        except ValueError:
            if strict:
                raise
            merged[name] = {"kind": "conflict",
                            "sources": sorted(label for label, _
                                              in by_name[name])}
    return merged


def sample_snapshot(registry, max_samples: Optional[int] = None) -> dict:
    """A snapshot suitable for cross-process shipping: includes each
    quantile sketch's reservoir so merged quantiles stay exact."""
    return registry.snapshot(include_samples=True)
