"""Metric primitives and the process-wide registry.

Five instrument kinds, all cheap enough for per-step use:

* :class:`Counter` -- monotonically increasing count (steps, cache hits,
  fingerprint mismatches);
* :class:`Gauge` -- last-written value (publish version, cache entries);
* :class:`Histogram` -- fixed-bucket distribution (task latencies in
  seconds, losses);
* :class:`QuantileSketch` -- streaming quantile estimates over an
  unbounded value stream via a bounded uniform reservoir (MC-Dropout
  uncertainty, EL2N scores). The subsample is driven by an internal LCG,
  so observing values never touches numpy's global rng state -- metrics
  cannot perturb training -- and the same observation sequence always
  keeps the same sample (the determinism tests rely on it);
* :class:`EwmaTimer` -- exponentially weighted moving average of observed
  durations plus count/total. By convention timer names end in
  ``_seconds`` so downstream tooling can strip them as timing data.

Disabled telemetry must cost nothing measurable (<2% on a training loop,
enforced by ``benchmarks/bench_observability.py``), so there is a strict
no-op fast path: :data:`NULL_REGISTRY` hands out one shared
:class:`NullMetric` whose methods do nothing. Call sites always write
``registry.counter("x").inc()`` unconditionally and the dispatch itself is
the only disabled-mode cost.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """Monotonic count; ``inc`` with a negative amount is rejected."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (plus the number of writes)."""

    __slots__ = ("name", "value", "writes")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.writes += 1

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self.writes += 1

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "writes": self.writes}


#: default histogram bucket upper bounds -- a wide log-ish spread that
#: covers sub-millisecond latencies up to minutes and unit-scale losses
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {str(b): c
                        for b, c in zip(self.bounds, self.counts)},
            "overflow": self.counts[-1],
        }


class QuantileSketch:
    """Streaming quantiles over a bounded uniform reservoir (Algorithm R).

    Exact until ``max_samples`` observations, an unbiased uniform
    subsample after. Replacement decisions come from a private 64-bit LCG
    seeded per sketch, so the sketch is deterministic for a given
    observation sequence and never consumes shared rng state.
    """

    __slots__ = ("name", "max_samples", "count", "total", "min", "max",
                 "_samples", "_state")
    kind = "quantiles"

    _LCG_MULT = 6364136223846793005
    _LCG_INC = 1442695040888963407
    _LCG_MOD = 1 << 64

    def __init__(self, name: str, max_samples: int = 512,
                 seed: int = 0x9E3779B9) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.max_samples = int(max_samples)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        # crc32, not hash(): string hashing is salted per process and the
        # reservoir must be reproducible across runs
        self._state = (int(seed) ^ zlib.crc32(name.encode())) % self._LCG_MOD

    def _next_index(self, bound: int) -> int:
        self._state = (self._state * self._LCG_MULT
                       + self._LCG_INC) % self._LCG_MOD
        return (self._state >> 16) % bound

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
            return
        slot = self._next_index(self.count)
        if slot < self.max_samples:
            self._samples[slot] = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (nearest-rank over the reservoir)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class EwmaTimer:
    """EWMA over observed durations, plus count/total.

    Name timers ``<something>_seconds``: every value a timer holds is
    wall-clock and must be excluded from determinism comparisons.
    """

    __slots__ = ("name", "alpha", "count", "total", "ewma", "last")
    kind = "timer"

    def __init__(self, name: str, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.name = name
        self.alpha = alpha
        self.count = 0
        self.total = 0.0
        self.ewma = 0.0
        self.last = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.last = seconds
        self.ewma = (seconds if self.count == 1
                     else self.alpha * seconds + (1 - self.alpha) * self.ewma)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count, "sum": self.total,
                "ewma": self.ewma, "last": self.last}


class NullMetric:
    """Accepts every instrument method and does nothing.

    One shared instance serves all disabled-telemetry call sites; every
    accessor of :class:`NullRegistry` returns it.
    """

    __slots__ = ()
    kind = "null"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"kind": self.kind}


_NULL_METRIC = NullMetric()


class NullRegistry:
    """The disabled-mode registry: every lookup is the shared no-op metric."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> NullMetric:
        return _NULL_METRIC

    def quantiles(self, name: str, max_samples: int = 512) -> NullMetric:
        return _NULL_METRIC

    def timer(self, name: str, alpha: float = 0.2) -> NullMetric:
        return _NULL_METRIC

    def snapshot(self, include_samples: bool = False) -> dict:
        return {}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Get-or-create metric store keyed by name.

    A name is bound to the kind that first created it; asking for the same
    name as a different kind raises (silent aliasing would corrupt both).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(f"metric {name!r} is a {metric.kind}, "
                             f"not a {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets), "histogram")

    def quantiles(self, name: str, max_samples: int = 512) -> QuantileSketch:
        return self._get(name, lambda: QuantileSketch(name, max_samples),
                         "quantiles")

    def timer(self, name: str, alpha: float = 0.2) -> EwmaTimer:
        return self._get(name, lambda: EwmaTimer(name, alpha), "timer")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self, include_samples: bool = False) -> Dict[str, dict]:
        """All metrics as plain JSON-able dicts, sorted by name.

        ``include_samples=True`` attaches each quantile sketch's raw
        reservoir (``"samples"``) so a pool parent can merge sketches
        from many processes exactly (see :mod:`repro.obs.merge`).
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            snap = metric.snapshot()
            if include_samples and metric.kind == "quantiles":
                snap["samples"] = list(metric._samples)
            out[name] = snap
        return out

    def reset(self) -> None:
        self._metrics.clear()
