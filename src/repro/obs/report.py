"""Render human-readable summaries of telemetry JSONL run logs.

One renderer per section, each returning ``""`` when the run recorded no
events that feed it, plus :func:`render_report` which joins the non-empty
ones. Shared by ``scripts/report_run.py`` and ``repro obs-report`` so
training runs and serving sessions read through the same lens.

A single log may interleave several event streams -- a serving process
emitting ``serve.*`` events while a training run writes ``trainer.*``
events, or two runs concatenated into one file. Renderers therefore never
assume a single-run schema: unknown kinds are ignored, span indexes may
repeat (each repeat starts a new stream segment in the phase breakdown),
and serving sections coexist with training sections.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from ..eval import render_series, render_table
from .serving import TRACE_STAGES, RequestTracer, format_trace

__all__ = [
    "group_events", "render_report",
    "render_header", "render_loss_curve", "render_throughput",
    "render_self_training", "render_engine", "render_pool",
    "render_traces", "render_slo", "render_drift", "render_phases",
]


def group_events(events: Iterable[dict]) -> Dict[str, List[dict]]:
    """Bucket parsed telemetry records by their ``kind``."""
    grouped: Dict[str, List[dict]] = defaultdict(list)
    for event in events:
        grouped[event["kind"]].append(event)
    return grouped


# ---------------------------------------------------------------------------
# training-run sections
# ---------------------------------------------------------------------------


def render_header(grouped) -> str:
    lines = []
    for start in grouped.get("run.start", []):
        lines.append(f"run: {start.get('method', '?')} on "
                     f"{start.get('dataset', '?')} "
                     f"(seed {start.get('seed', '?')}, "
                     f"{start.get('labeled', '?')} labeled / "
                     f"{start.get('unlabeled', '?')} unlabeled / "
                     f"{start.get('test', '?')} test)")
    for summary in grouped.get("run.summary", []):
        parts = [f"F1={summary['f1']:.1f}"]
        if "precision" in summary:
            parts.insert(0, f"P={summary['precision']:.1f}")
        if "recall" in summary:
            parts.insert(1, f"R={summary['recall']:.1f}")
        if "elapsed_seconds" in summary:
            parts.append(f"in {summary['elapsed_seconds']:.1f}s")
        lines.append("result: " + " ".join(parts))
    return "\n".join(lines)


def render_loss_curve(grouped) -> str:
    epochs = grouped.get("trainer.epoch", [])
    if not epochs:
        return ""
    labels = [f"{i}:{e['epoch']}" for i, e in enumerate(epochs)] \
        if len({e["epoch"] for e in epochs}) != len(epochs) \
        else [e["epoch"] for e in epochs]
    series = {"loss": [e["loss"] for e in epochs]}
    if any(e.get("valid_f1") is not None for e in epochs):
        series["valid F1"] = [e.get("valid_f1") for e in epochs]
    return render_series("Loss curve (all fits, in order)", "epoch",
                         labels, series, decimals=4)


def render_throughput(grouped) -> str:
    epochs = [e for e in grouped.get("trainer.epoch", [])
              if e.get("tokens_per_sec")]
    if not epochs:
        return ""
    rows = [[i, e["epoch"], e.get("tokens", 0),
             f"{e['tokens_per_sec']:.0f}",
             f"{e.get('examples_per_sec', 0.0):.0f}"]
            for i, e in enumerate(epochs)]
    return render_table(["#", "epoch", "tokens", "tok/s", "ex/s"], rows,
                        title="Throughput")


def render_self_training(grouped) -> str:
    rounds = grouped.get("selftrain.round", [])
    if not rounds:
        return ""
    rows = [[r["iteration"], f"{r['teacher_f1']:.3f}",
             f"{r.get('student_f1', 0.0):.3f}", r["pseudo_added"],
             r.get("pseudo_positive", "?"), r.get("pruned", 0),
             r.get("train_size", "?")]
            for r in rounds]
    return render_table(
        ["iter", "teacher F1", "student F1", "pseudo", "+", "pruned",
         "train"], rows, title="Self-training rounds")


def render_engine(grouped) -> str:
    stats = grouped.get("engine.stats", [])
    if not stats:
        return ""
    rows = [[s.get("scope", "?"), s.get("pairs", 0), s.get("batches", 0),
             f"{s.get('pairs_per_sec', 0.0):.0f}",
             f"{s.get('cache_hit_rate', 0.0):.1%}",
             f"{s.get('padding_fraction', 0.0):.1%}"]
            for s in stats]
    return render_table(
        ["scope", "pairs", "batches", "pairs/s", "cache hit", "padding"],
        rows, title="Inference engine")


def render_pool(grouped) -> str:
    maps = grouped.get("pool.map", [])
    if not maps:
        return ""
    tasks = defaultdict(int)
    busy = defaultdict(float)
    for record in maps:
        for row in record.get("per_worker", []):
            tasks[row["worker"]] += row["tasks"]
            busy[row["worker"]] += row["seconds"]
    rows = [[w, tasks[w], f"{busy[w]:.2f}s"] for w in sorted(tasks)]
    rows.append(["total", sum(tasks.values()),
                 f"{sum(busy.values()):.2f}s"])
    return render_table(["worker", "tasks", "busy"], rows,
                        title=f"Worker pool ({len(maps)} map calls)")


# ---------------------------------------------------------------------------
# serving sections
# ---------------------------------------------------------------------------


def render_traces(grouped, samples: int = 3) -> str:
    """Stage-mean table over every ``serve.trace`` event plus a few
    sample trace trees (the most recent requests)."""
    traces = grouped.get("serve.trace", [])
    if not traces:
        return ""
    tracer = RequestTracer(capacity=max(samples, 1))
    for tree in traces:
        tracer.record(tree)
    agg = tracer.aggregate()
    mean_wall = agg["mean_wall_seconds"]
    rows = []
    for name in TRACE_STAGES:
        mean = agg["stage_mean_seconds"][name]
        share = mean / mean_wall * 100.0 if mean_wall > 0 else 0.0
        rows.append([name, f"{mean * 1000:.3f}ms", f"{share:.1f}%"])
    rows.append(["total", f"{mean_wall * 1000:.3f}ms", "100.0%"])
    lines = [render_table(
        ["stage", "mean wall", "share"], rows,
        title=f"Request traces ({agg['requests']} requests)")]

    def counts(label: str, table: dict) -> str:
        parts = ", ".join(f"{key}: {value}"
                          for key, value in table.items())
        return f"{label}: {parts}" if parts else ""

    for line in (counts("by replica", agg["by_replica"]),
                 counts("by tenant", agg["by_tenant"])):
        if line:
            lines.append(line)
    recent = tracer.recent(samples)
    if recent:
        lines.append("sample traces:")
        for tree in recent:
            lines.extend(format_trace(tree))
    return "\n".join(lines)


def render_slo(grouped) -> str:
    """Per-tenant SLO table from the final ``serve.slo`` snapshot."""
    snapshots = grouped.get("serve.slo", [])
    if not snapshots:
        return ""
    final = snapshots[-1]
    tenants = final.get("tenants", {}) or {}
    objectives = final.get("objectives", {}) or {}
    quantile = objectives.get("latency_quantile", 0.95)
    rows = []
    for label in sorted(tenants):
        t = tenants[label]
        rows.append([
            label, t.get("requests", 0), t.get("errors", 0),
            t.get("sheds", 0),
            f"{t.get('latency_q_seconds', 0.0) * 1000:.2f}ms",
            f"{t.get('error_rate', 0.0):.2%}",
            f"{t.get('shed_rate', 0.0):.2%}",
            "ok" if t.get("ok") else "VIOLATED",
        ])
    title = "Per-tenant SLOs"
    if objectives:
        title += (f" (p{quantile * 100:.0f} <= "
                  f"{objectives.get('latency_s', 0.0) * 1000:.0f}ms, "
                  f"errors <= {objectives.get('max_error_rate', 0.0):.1%}, "
                  f"sheds <= {objectives.get('max_shed_rate', 0.0):.1%})")
    return render_table(
        ["tenant", "requests", "errors", "sheds",
         f"p{quantile * 100:.0f} latency", "error rate", "shed rate",
         "status"], rows, title=title)


def render_drift(grouped) -> str:
    """Chronological list of fired ``serve.drift`` events."""
    events = grouped.get("serve.drift", [])
    if not events:
        return ""
    rows = []
    for event in events:
        detail = f"psi={event.get('psi', 0.0):.3f}"
        if event.get("drift_kind") == "match_rate":
            detail = (f"ewma={event.get('match_rate_ewma', 0.0):.3f} "
                      f"ref={event.get('reference_match_rate', 0.0):.3f}")
        rows.append([event.get("tenant", "?"),
                     event.get("drift_kind", "?"), detail])
    return render_table(["tenant", "kind", "detail"], rows,
                        title=f"Drift events ({len(events)} fired)")


# ---------------------------------------------------------------------------
# span tree
# ---------------------------------------------------------------------------


def render_phases(grouped) -> str:
    """Span tree with *self* time (wall minus direct children).

    Interleaved logs make span indexes repeat or reset (each tracer
    numbers its own spans from zero). Spans are therefore split into
    stream segments -- a repeated index starts a new segment -- and
    parent/child wall attribution never crosses a segment boundary.
    """
    spans = grouped.get("span", [])
    if not spans:
        return ""
    segments: List[List[dict]] = []
    current: List[dict] = []
    seen: set = set()
    for span in spans:
        index = span.get("index")
        if index in seen:
            segments.append(current)
            current, seen = [], set()
        current.append(span)
        seen.add(index)
    if current:
        segments.append(current)
    rows = []
    for number, segment in enumerate(segments):
        if len(segments) > 1:
            rows.append([f"stream {number}", "", "", ""])
        child_wall = defaultdict(float)
        for span in segment:
            if span.get("parent") is not None:
                child_wall[span["parent"]] += span.get("wall", 0.0)
        indent = "  " if len(segments) > 1 else ""
        for span in sorted(segment, key=lambda s: s.get("index", 0)):
            wall = span.get("wall", 0.0)
            rows.append([
                indent + ("  " * span.get("depth", 0)) + span.get("name", "?"),
                f"{wall:.3f}s",
                f"{max(wall - child_wall[span.get('index')], 0.0):.3f}s",
                f"{span.get('cpu', 0.0):.3f}s"])
    return render_table(["Phase", "Wall", "Self", "CPU"], rows,
                        title="Per-phase time breakdown")


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


def render_report(events, trace_samples: int = 3) -> str:
    """Join every non-empty section for one parsed event stream."""
    grouped = group_events(events)
    sections = [render_header(grouped), render_loss_curve(grouped),
                render_throughput(grouped), render_self_training(grouped),
                render_engine(grouped), render_pool(grouped),
                render_traces(grouped, samples=trace_samples),
                render_slo(grouped), render_drift(grouped),
                render_phases(grouped)]
    return "\n\n".join(s for s in sections if s)
