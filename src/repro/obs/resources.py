"""Resource accounting and human-readable time/memory formatting.

Home of the single timing/memory formatting utility the whole repo uses
(benches, the efficiency study, the telemetry report renderer). Originally
lived at :mod:`repro.eval.resources` -- that module now re-exports from
here for backward compatibility.

The paper's efficiency study (Table 4) reports wall-clock training time
and peak GPU/CPU memory on an A100 testbed. We measure real wall-clock
time, plus a deterministic *model memory* figure reported by each matcher
(parameters + AdamW moments + TDmatch's dense co-occurrence matrix, etc.),
so the memory column has the same comparative shape without host-specific
measurement. tracemalloc-based peak tracking is available but off by
default -- tracing every numpy allocation slows training several-fold,
which would poison the time column.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Optional


@dataclass
class ResourceReport:
    """Measured footprint of one training run."""

    wall_seconds: float
    model_bytes: int = 0
    peak_python_bytes: int = 0

    @property
    def formatted_time(self) -> str:
        return format_seconds(self.wall_seconds)

    @property
    def formatted_memory(self) -> str:
        return format_bytes(max(self.model_bytes, self.peak_python_bytes))


class ResourceMeter:
    """Context manager measuring wall time (+ optional allocation peaks).

    ``add_model_bytes`` / ``add_bytes`` register deterministic
    model-proportional memory (parameters, optimizer moments, big work
    matrices) that stands in for accelerator memory.
    """

    def __init__(self, trace_allocations: bool = False) -> None:
        self.trace_allocations = trace_allocations
        self._start: Optional[float] = None
        self._was_tracing = False
        self.report: Optional[ResourceReport] = None
        self._extra_bytes = 0

    def add_model_bytes(self, num_parameters: int,
                        optimizer_copies: int = 3,
                        activation_bytes: int = 0,
                        bytes_per_value: int = 4) -> None:
        """Register parameter-derived memory (float32 = 4 bytes each)."""
        self._extra_bytes += (num_parameters * bytes_per_value * optimizer_copies
                              + activation_bytes)

    def add_bytes(self, n: int) -> None:
        self._extra_bytes += int(n)

    def __enter__(self) -> "ResourceMeter":
        if self.trace_allocations:
            self._was_tracing = tracemalloc.is_tracing()
            if not self._was_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        peak = 0
        if self.trace_allocations:
            _, peak = tracemalloc.get_traced_memory()
            if not self._was_tracing:
                tracemalloc.stop()
        self.report = ResourceReport(
            wall_seconds=elapsed,
            model_bytes=self._extra_bytes,
            peak_python_bytes=peak,
        )


def format_seconds(seconds: float) -> str:
    """Render seconds the way Table 4 does: '26.6s', '7.4m', '51.0h'."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 90:
        return f"{seconds:.1f}s"
    minutes = seconds / 60
    if minutes < 90:
        return f"{minutes:.1f}m"
    return f"{minutes / 60:.1f}h"


def format_bytes(n: int) -> str:
    """Render bytes as '6.2G' / '105.3M' style strings."""
    if n < 0:
        raise ValueError("negative size")
    for unit, scale in (("G", 1024 ** 3), ("M", 1024 ** 2), ("K", 1024)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n}B"
