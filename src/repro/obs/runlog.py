"""Structured run telemetry: schema-versioned JSONL event log.

Every record is one JSON object per line with three envelope fields --
``schema`` (the integer :data:`SCHEMA_VERSION`), ``kind`` (event type) and
``ts`` (unix wall-clock) -- plus the event's own payload. Known kinds and
their required payload fields live in :data:`EVENT_FIELDS`; unknown kinds
are legal (the envelope alone is enforced) so call sites can add events
without touching this table, but everything the core pipeline emits is
registered and therefore validated.

Determinism contract: two seeded runs of the same workload must produce
identical event streams *except* for wall-clock-derived and
process-identity-derived fields. :func:`strip_volatile` removes those
(recursively, by exact name or ``_seconds``/``_per_sec`` suffix) so tests
and diff tooling can compare runs field-for-field.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

#: bump when a record's meaning changes incompatibly; readers check it
SCHEMA_VERSION = 1

#: required payload fields per known event kind (envelope fields excluded)
EVENT_FIELDS: Dict[str, tuple] = {
    # lifecycle
    "run.start": ("method",),
    "run.summary": ("f1",),
    "metrics.snapshot": ("metrics",),
    "span": ("name", "path", "depth", "wall", "cpu"),
    # training
    "trainer.fit.start": ("n_train", "epochs"),
    "trainer.step": ("step", "epoch", "loss"),
    "trainer.epoch": ("epoch", "loss", "steps"),
    "trainer.fingerprint": ("fingerprint",),
    "pretrain.epoch": ("epoch", "mlm_loss", "steps"),
    # self-training loop
    "selftrain.round": ("iteration", "teacher_f1", "pseudo_added"),
    "mc_dropout.stats": ("pairs", "passes", "uncertainty_mean"),
    "el2n.prune": ("before", "after", "dropped"),
    # inference engine
    "engine.stats": ("pairs", "batches", "cache_hit_rate"),
    # worker pool
    "pool.map": ("tasks", "workers", "per_worker"),
    # serving
    "serve.trace": ("request_id", "spans"),
    "serve.drift": ("tenant", "drift_kind"),
    "serve.slo": ("tenants",),
}

#: field names whose values are wall-clock or process-identity derived and
#: therefore legitimately differ between two otherwise identical runs
VOLATILE_FIELDS = frozenset({
    "ts", "wall", "cpu", "elapsed", "seconds", "ewma", "last",
    "fingerprint", "pid",
})

_VOLATILE_SUFFIXES = ("_seconds", "_per_sec")


def is_volatile_field(name: str) -> bool:
    """True for fields excluded from run-to-run determinism comparisons."""
    return name in VOLATILE_FIELDS or name.endswith(_VOLATILE_SUFFIXES)


def strip_volatile(record: dict) -> dict:
    """A deep copy of ``record`` with every volatile field removed."""
    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items()
                    if not is_volatile_field(k)}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value
    return strip(record)


def validate_record(record: dict) -> dict:
    """Check the envelope (and payload fields of known kinds); returns it.

    Raises ``ValueError`` describing exactly what is malformed.
    """
    if not isinstance(record, dict):
        raise ValueError(f"telemetry record must be an object, "
                         f"got {type(record).__name__}")
    if record.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema {record.get('schema')!r} "
                         f"(expected {SCHEMA_VERSION})")
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError("record has no 'kind'")
    if not isinstance(record.get("ts"), (int, float)):
        raise ValueError(f"record kind={kind!r} has no numeric 'ts'")
    required = EVENT_FIELDS.get(kind, ())
    missing = [f for f in required if f not in record]
    if missing:
        raise ValueError(f"record kind={kind!r} missing fields {missing}")
    return record


def _jsonable(value):
    """Coerce numpy scalars/arrays, tuples and Paths for json.dumps."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, Path):
        return str(value)
    return value


class RunLog:
    """Append-only JSONL event writer.

    Accepts a path (opened for writing, overwriting any previous log) or
    any text file-like object. Records are flushed per event -- telemetry
    must survive a crashed run, that being when it is most needed.
    """

    def __init__(self, target: Union[str, Path, io.TextIOBase],
                 clock=time.time) -> None:
        if isinstance(target, (str, Path)):
            self.path: Optional[Path] = Path(target)
            self._file = open(self.path, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self.path = None
            self._file = target
            self._owns_file = False
        self._clock = clock
        self.records_written = 0

    def event(self, kind: str, **fields) -> dict:
        """Write one record; returns the dict that was serialized."""
        record = {"schema": SCHEMA_VERSION, "kind": str(kind),
                  "ts": round(float(self._clock()), 6)}
        record.update(_jsonable(fields))
        validate_record(record)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.records_written += 1
        return record

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
        self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(source: Union[str, Path, Iterable[str]],
                kind: Optional[str] = None,
                validate: bool = True) -> List[dict]:
    """Parse a telemetry JSONL file (or iterable of lines) into records.

    ``kind`` filters to one event type; ``validate`` runs
    :func:`validate_record` on every parsed line.
    """
    return list(iter_events(source, kind=kind, validate=validate))


def iter_events(source: Union[str, Path, Iterable[str]],
                kind: Optional[str] = None,
                validate: bool = True) -> Iterator[dict]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            yield from iter_events(fh, kind=kind, validate=validate)
        return
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if validate:
            validate_record(record)
        if kind is None or record.get("kind") == kind:
            yield record
