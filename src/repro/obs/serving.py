"""Serving-side observability: request traces, SLO tracking, score drift.

Three layers, all designed around the serving stack's process split (the
router and its forked replicas) and its determinism contract (telemetry
must never touch rng or change served outputs):

* **request tracing** -- a :class:`TraceContext` is attached at admission
  and carried with the in-flight request; replica-side stage timings ride
  back on the existing result pipes and :func:`stitch_trace` assembles the
  parent-side trace tree (admission -> queue -> batch -> forward ->
  respond). :class:`RequestTracer` keeps a bounded ring of finished trees
  plus running per-stage aggregates for ``repro obs-report``;
* **SLO tracking** -- :class:`SloTracker` maintains per-tenant rolling
  latency windows and error/shed totals against a configurable
  :class:`SloObjectives`, cheap enough to stay always-on;
* **drift monitoring** -- :class:`DriftMonitor` captures a fixed-bucket
  reference histogram of served match probabilities per tenant (bootstrapped
  from the first scores after a bundle/delta load, or set explicitly),
  compares a rolling window against it via PSI (population stability
  index) and tracks a match-rate EWMA. Crossing a threshold fires a
  rising-edge ``serve.drift`` event -- the hook ROADMAP's continual-
  learning gate will read.

Everything here is pure bookkeeping over values the serving path already
computed: no randomness, no mutation of inputs, so enabling it cannot
change a single served probability.
"""

from __future__ import annotations

import itertools
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TraceContext", "RequestTracer", "stitch_trace", "format_trace",
    "TRACE_STAGES",
    "SloObjectives", "SloTracker",
    "DriftConfig", "DriftMonitor",
]

#: a tenant key of ``None`` (base-model traffic) tracks under this label
BASE_TENANT = "_base"

#: the fixed stage order of a stitched request trace
TRACE_STAGES = ("admission", "queue", "batch", "forward", "respond")


def _tenant_label(tenant: Optional[str]) -> str:
    return tenant if tenant is not None else BASE_TENANT


# ---------------------------------------------------------------------------
# request tracing
# ---------------------------------------------------------------------------

_REQUEST_IDS = itertools.count(1)


@dataclass
class TraceContext:
    """Identity + router-side timestamps of one in-flight request.

    Created at admission (before dispatch) and carried alongside the
    request's pending slot; replicas never see it -- their stage timings
    travel back on the result pipe and are stitched in by the parent.
    """

    request_id: str
    tenant: Optional[str] = None
    t_admit: float = 0.0
    t_dispatch: float = 0.0
    replica: Optional[int] = None

    @classmethod
    def admit(cls, tenant: Optional[str] = None,
              now: Optional[float] = None) -> "TraceContext":
        return cls(request_id=f"r{next(_REQUEST_IDS):06d}", tenant=tenant,
                   t_admit=time.perf_counter() if now is None else now)

    def dispatched(self, replica: Optional[int] = None,
                   now: Optional[float] = None) -> None:
        self.t_dispatch = time.perf_counter() if now is None else now
        self.replica = replica


def stitch_trace(ctx: TraceContext, *,
                 t_done: Optional[float] = None,
                 queue_seconds: float = 0.0,
                 batch_seconds: float = 0.0,
                 forward_seconds: float = 0.0,
                 forward_cpu_seconds: Optional[float] = None,
                 batch_id: Optional[int] = None,
                 batch_size: Optional[int] = None,
                 replica: Optional[int] = None) -> dict:
    """Assemble the parent-side trace tree for one finished request.

    The tree is a root ``request`` span with one child per stage in
    :data:`TRACE_STAGES`. ``admission`` is router-side time between admit
    and dispatch; ``queue``/``batch``/``forward`` are replica-reported;
    ``respond`` absorbs the remainder (pipe transit + merge), clamped at
    zero so replica/parent clock skew cannot produce negative spans.
    """
    if t_done is None:
        t_done = time.perf_counter()
    dispatch = ctx.t_dispatch if ctx.t_dispatch else ctx.t_admit
    admission = max(dispatch - ctx.t_admit, 0.0)
    total = max(t_done - ctx.t_admit, 0.0)
    accounted = admission + queue_seconds + batch_seconds + forward_seconds
    respond = max(total - accounted, 0.0)
    stage_wall = {
        "admission": admission,
        "queue": max(queue_seconds, 0.0),
        "batch": max(batch_seconds, 0.0),
        "forward": max(forward_seconds, 0.0),
        "respond": respond,
    }
    spans = []
    for name in TRACE_STAGES:
        span = {"name": name, "wall": stage_wall[name]}
        if name == "forward" and forward_cpu_seconds is not None:
            span["cpu"] = max(forward_cpu_seconds, 0.0)
        spans.append(span)
    tree = {
        "request_id": ctx.request_id,
        "tenant": _tenant_label(ctx.tenant),
        "replica": replica if replica is not None else ctx.replica,
        "wall": total,
        "spans": spans,
    }
    if batch_id is not None:
        tree["batch_id"] = batch_id
    if batch_size is not None:
        tree["batch_size"] = batch_size
    return tree


def format_trace(tree: dict) -> List[str]:
    """Render one stitched trace tree as indented text lines."""
    head = (f"request {tree.get('request_id', '?')}"
            f"  tenant={tree.get('tenant', BASE_TENANT)}")
    replica = tree.get("replica")
    if replica is not None:
        head += f"  replica={replica}"
    if tree.get("batch_id") is not None:
        head += (f"  batch={tree['batch_id']}"
                 f"(n={tree.get('batch_size', '?')})")
    head += f"  wall={tree.get('wall', 0.0) * 1000:.2f}ms"
    lines = [head]
    total = tree.get("wall", 0.0) or 0.0
    for span in tree.get("spans", ()):
        wall = span.get("wall", 0.0)
        share = (wall / total * 100.0) if total > 0 else 0.0
        line = f"  {span.get('name', '?'):<10s} {wall * 1000:8.3f}ms  {share:5.1f}%"
        if "cpu" in span:
            line += f"  cpu={span['cpu'] * 1000:.3f}ms"
        lines.append(line)
    return lines


class RequestTracer:
    """Bounded ring of stitched traces plus running per-stage aggregates.

    The ring keeps the most recent ``capacity`` trees (for samples in
    reports and admin routes); the aggregates cover *every* recorded
    request so pool-lifetime stage means stay exact after the ring wraps.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: Deque[dict] = deque(maxlen=int(capacity))
        self.count = 0
        self._stage_wall = {name: 0.0 for name in TRACE_STAGES}
        self._total_wall = 0.0
        self._by_replica: Dict[str, int] = {}
        self._by_tenant: Dict[str, int] = {}

    def record(self, tree: dict) -> None:
        self._ring.append(tree)
        self.count += 1
        self._total_wall += tree.get("wall", 0.0)
        for span in tree.get("spans", ()):
            name = span.get("name")
            if name in self._stage_wall:
                self._stage_wall[name] += span.get("wall", 0.0)
        replica = tree.get("replica")
        rkey = str(replica) if replica is not None else "-"
        self._by_replica[rkey] = self._by_replica.get(rkey, 0) + 1
        tkey = tree.get("tenant", BASE_TENANT)
        self._by_tenant[tkey] = self._by_tenant.get(tkey, 0) + 1

    def recent(self, n: int = 20) -> List[dict]:
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def aggregate(self) -> dict:
        """Lifetime stage means (seconds) and attribution counts."""
        count = self.count
        return {
            "requests": count,
            "mean_wall_seconds": self._total_wall / count if count else 0.0,
            "stage_mean_seconds": {
                name: (self._stage_wall[name] / count if count else 0.0)
                for name in TRACE_STAGES},
            "by_replica": dict(sorted(self._by_replica.items())),
            "by_tenant": dict(sorted(self._by_tenant.items())),
        }

    def snapshot(self, samples: int = 5) -> dict:
        snap = self.aggregate()
        snap["samples"] = self.recent(samples)
        return snap


# ---------------------------------------------------------------------------
# per-tenant SLOs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloObjectives:
    """Targets a tenant's served traffic is held against.

    ``latency_s`` bounds the ``latency_quantile``-quantile of end-to-end
    request latency over the rolling window; error and shed rates are
    lifetime ratios.
    """

    latency_s: float = 0.25
    latency_quantile: float = 0.95
    max_error_rate: float = 0.01
    max_shed_rate: float = 0.05
    window: int = 512

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError("latency_quantile must be in (0, 1)")
        if self.window < 1:
            raise ValueError("window must be >= 1")


class _TenantSlo:
    __slots__ = ("latencies", "requests", "errors", "sheds")

    def __init__(self, window: int) -> None:
        self.latencies: Deque[float] = deque(maxlen=window)
        self.requests = 0
        self.errors = 0
        self.sheds = 0


class SloTracker:
    """Per-tenant latency/error/shed bookkeeping against objectives.

    Pure accounting over latencies the serving path already measured --
    always-on, no rng, no effect on served outputs. ``None`` tenants
    (base-model traffic) track under :data:`BASE_TENANT`.
    """

    def __init__(self, objectives: Optional[SloObjectives] = None) -> None:
        self.objectives = objectives or SloObjectives()
        self._tenants: Dict[str, _TenantSlo] = {}

    def _state(self, tenant: Optional[str]) -> _TenantSlo:
        label = _tenant_label(tenant)
        state = self._tenants.get(label)
        if state is None:
            state = _TenantSlo(self.objectives.window)
            self._tenants[label] = state
        return state

    def observe(self, tenant: Optional[str], latency_s: float) -> None:
        state = self._state(tenant)
        state.requests += 1
        state.latencies.append(float(latency_s))

    def observe_error(self, tenant: Optional[str], n: int = 1) -> None:
        self._state(tenant).errors += n

    def observe_shed(self, tenant: Optional[str], n: int = 1) -> None:
        self._state(tenant).sheds += n

    @staticmethod
    def _quantile(values: Sequence[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def snapshot(self) -> dict:
        obj = self.objectives
        tenants = {}
        for label in sorted(self._tenants):
            state = self._tenants[label]
            served = state.requests
            attempted = served + state.errors + state.sheds
            latency_q = self._quantile(state.latencies, obj.latency_quantile)
            error_rate = state.errors / attempted if attempted else 0.0
            shed_rate = state.sheds / attempted if attempted else 0.0
            latency_ok = (not state.latencies) or latency_q <= obj.latency_s
            error_ok = error_rate <= obj.max_error_rate
            shed_ok = shed_rate <= obj.max_shed_rate
            tenants[label] = {
                "requests": served,
                "errors": state.errors,
                "sheds": state.sheds,
                "error_rate": error_rate,
                "shed_rate": shed_rate,
                "latency_window": len(state.latencies),
                "latency_q_seconds": latency_q,
                "latency_mean_seconds": (sum(state.latencies)
                                         / len(state.latencies)
                                         if state.latencies else 0.0),
                "latency_ok": latency_ok,
                "error_ok": error_ok,
                "shed_ok": shed_ok,
                "ok": latency_ok and error_ok and shed_ok,
            }
        return {
            "objectives": {
                "latency_s": obj.latency_s,
                "latency_quantile": obj.latency_quantile,
                "max_error_rate": obj.max_error_rate,
                "max_shed_rate": obj.max_shed_rate,
                "window": obj.window,
            },
            "tenants": tenants,
        }


# ---------------------------------------------------------------------------
# score-distribution drift
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of the streaming score-distribution monitor.

    Scores are match probabilities in ``[0, 1]``, binned into ``buckets``
    equal-width buckets. The first ``reference_size`` scores after a
    (re)load bootstrap the reference histogram unless one is set
    explicitly; the trailing ``window`` scores form the comparison
    window. PSI above ``psi_threshold`` or a match-rate EWMA further than
    ``match_rate_tolerance`` (absolute) from the reference rate trips the
    monitor.
    """

    buckets: int = 10
    reference_size: int = 256
    window: int = 256
    psi_threshold: float = 0.2
    match_rate_alpha: float = 0.05
    match_rate_tolerance: float = 0.25

    def __post_init__(self) -> None:
        if self.buckets < 2:
            raise ValueError("need at least 2 buckets")
        if self.reference_size < 1 or self.window < 1:
            raise ValueError("reference_size and window must be >= 1")


class _TenantDrift:
    __slots__ = ("version", "ref_counts", "ref_total", "ref_matches",
                 "ref_match_total", "window", "win_counts", "ewma",
                 "ewma_ready", "psi", "reasons")

    def __init__(self, buckets: int, window: int,
                 version: Optional[str]) -> None:
        self.version = version
        self.ref_counts = [0] * buckets
        self.ref_total = 0
        self.ref_matches = 0
        self.ref_match_total = 0
        self.window: Deque[int] = deque(maxlen=window)
        self.win_counts = [0] * buckets
        self.ewma = 0.0
        self.ewma_ready = False
        self.psi = 0.0
        self.reasons: Tuple[str, ...] = ()


class DriftMonitor:
    """Streaming PSI + match-rate EWMA per tenant, keyed by model version.

    ``observe`` takes a batch of served probabilities (and the matching
    0/1 predictions), updates the tenant's reference-or-window state and
    returns the list of drift events that *newly* fired -- rising-edge
    only, so a sustained shift produces one event, not one per batch. A
    version change (bundle hot swap, delta reload) resets the tenant and
    bootstraps a fresh reference.
    """

    _EPS = 1e-4

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config or DriftConfig()
        self._tenants: Dict[str, _TenantDrift] = {}

    # -- state ----------------------------------------------------------
    def _state(self, tenant: Optional[str],
               version: Optional[str]) -> _TenantDrift:
        label = _tenant_label(tenant)
        state = self._tenants.get(label)
        if state is None or state.version != version:
            state = _TenantDrift(self.config.buckets, self.config.window,
                                 version)
            self._tenants[label] = state
        return state

    def _bucket(self, score: float) -> int:
        buckets = self.config.buckets
        idx = int(score * buckets)
        return min(max(idx, 0), buckets - 1)

    def set_reference(self, tenant: Optional[str],
                      scores: Sequence[float],
                      matches: Optional[Sequence[int]] = None,
                      version: Optional[str] = None) -> None:
        """Install an explicit reference distribution (e.g. from the
        validation scores captured at bundle/delta load)."""
        state = self._state(tenant, version)
        state.ref_counts = [0] * self.config.buckets
        state.ref_total = 0
        state.ref_matches = 0
        state.ref_match_total = 0
        for i, score in enumerate(scores):
            state.ref_counts[self._bucket(float(score))] += 1
            state.ref_total += 1
            if matches is not None:
                state.ref_matches += int(matches[i])
                state.ref_match_total += 1

    # -- observation ----------------------------------------------------
    def observe(self, tenant: Optional[str],
                scores: Sequence[float],
                matches: Optional[Sequence[int]] = None,
                version: Optional[str] = None) -> List[dict]:
        state = self._state(tenant, version)
        cfg = self.config
        for i, raw in enumerate(scores):
            bucket = self._bucket(float(raw))
            match = int(matches[i]) if matches is not None else 0
            if state.ref_total < cfg.reference_size:
                # still bootstrapping the post-load reference
                state.ref_counts[bucket] += 1
                state.ref_total += 1
                if matches is not None:
                    state.ref_matches += match
                    state.ref_match_total += 1
                continue
            if len(state.window) == state.window.maxlen:
                state.win_counts[state.window[0]] -= 1
            state.window.append(bucket)
            state.win_counts[bucket] += 1
            if matches is not None:
                if state.ewma_ready:
                    state.ewma = (cfg.match_rate_alpha * match
                                  + (1 - cfg.match_rate_alpha) * state.ewma)
                else:
                    ref_rate = (state.ref_matches / state.ref_match_total
                                if state.ref_match_total else float(match))
                    state.ewma = ref_rate
                    state.ewma_ready = True
                    state.ewma = (cfg.match_rate_alpha * match
                                  + (1 - cfg.match_rate_alpha) * state.ewma)
        return self._check(_tenant_label(tenant), state)

    # -- evaluation -----------------------------------------------------
    def _psi(self, state: _TenantDrift) -> float:
        eps = self._EPS
        total_ref = state.ref_total
        total_win = len(state.window)
        psi = 0.0
        for ref_count, win_count in zip(state.ref_counts, state.win_counts):
            p = max(ref_count / total_ref, eps)
            q = max(win_count / total_win, eps)
            psi += (q - p) * math.log(q / p)
        return psi

    def _check(self, label: str, state: _TenantDrift) -> List[dict]:
        cfg = self.config
        if state.ref_total < cfg.reference_size or not state.window:
            return []
        window_full = len(state.window) == state.window.maxlen
        reasons = []
        state.psi = self._psi(state)
        if window_full and state.psi > cfg.psi_threshold:
            reasons.append("psi")
        if (window_full and state.ewma_ready and state.ref_match_total
                and abs(state.ewma - state.ref_matches
                        / state.ref_match_total) > cfg.match_rate_tolerance):
            reasons.append("match_rate")
        fired = [reason for reason in reasons if reason not in state.reasons]
        state.reasons = tuple(reasons)
        events = []
        for reason in fired:
            # field is "drift_kind", not "kind": these dicts become the
            # payload of a "serve.drift" RunLog event whose envelope
            # already owns the "kind" key
            event = {"tenant": label, "drift_kind": reason, "psi": state.psi,
                     "psi_threshold": cfg.psi_threshold}
            if reason == "match_rate":
                event["match_rate_ewma"] = state.ewma
                event["reference_match_rate"] = (state.ref_matches
                                                 / state.ref_match_total)
            events.append(event)
        return events

    # -- introspection --------------------------------------------------
    @property
    def active(self) -> bool:
        return any(state.reasons for state in self._tenants.values())

    def snapshot(self) -> dict:
        cfg = self.config
        tenants = {}
        for label in sorted(self._tenants):
            state = self._tenants[label]
            tenants[label] = {
                "version": state.version,
                "reference_size": state.ref_total,
                "reference_ready": state.ref_total >= cfg.reference_size,
                "reference_match_rate": (state.ref_matches
                                         / state.ref_match_total
                                         if state.ref_match_total else None),
                "window_fill": len(state.window),
                "psi": state.psi,
                "match_rate_ewma": (state.ewma if state.ewma_ready
                                    else None),
                "active": bool(state.reasons),
                "reasons": list(state.reasons),
            }
        return {
            "config": {
                "buckets": cfg.buckets,
                "reference_size": cfg.reference_size,
                "window": cfg.window,
                "psi_threshold": cfg.psi_threshold,
                "match_rate_alpha": cfg.match_rate_alpha,
                "match_rate_tolerance": cfg.match_rate_tolerance,
            },
            "active": self.active,
            "tenants": tenants,
        }
