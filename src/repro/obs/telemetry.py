"""The telemetry session: registry + tracer + run log behind one switch.

Instrumented code never checks configuration flags; it asks for the active
session and uses it::

    from ..obs import get_telemetry

    tel = get_telemetry()
    tel.metrics.counter("trainer.steps").inc()
    with tel.span("trainer.fit"):
        ...
        if tel.enabled:
            tel.event("trainer.step", step=i, loss=loss)

With no session installed, :func:`get_telemetry` returns the shared
:data:`DISABLED` sentinel: ``metrics`` is the null registry, ``span`` the
shared no-op context manager, ``event`` a pass statement -- the strict
no-op fast path whose overhead ``benchmarks/bench_observability.py``
bounds below 2%. The ``if tel.enabled:`` guard is only needed where
*assembling* the event payload itself costs something.

Sessions are installed with :func:`telemetry_session` (a context manager)
or :func:`install_telemetry` / :func:`uninstall_telemetry`; installs nest,
restoring the previous session on exit.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from .registry import NULL_REGISTRY, MetricsRegistry
from .runlog import RunLog
from .tracing import NULL_SPAN, Tracer


class DisabledTelemetry:
    """The no-op session every call site sees when telemetry is off."""

    __slots__ = ()
    enabled = False
    metrics = NULL_REGISTRY
    runlog = None
    tracer = None

    def event(self, kind: str, **fields) -> None:
        pass

    def span(self, name: str, **attrs):
        return NULL_SPAN

    def close(self) -> None:
        pass


DISABLED = DisabledTelemetry()


class Telemetry:
    """One enabled observability session.

    ``runlog`` is optional -- a session without one still collects
    metrics and spans in memory (tests and the benchmark harness use
    this). ``trace=True`` streams finished spans to the run log as
    ``span`` events; spans are always timed and kept on the tracer.
    """

    enabled = True

    def __init__(self, runlog: Optional[RunLog] = None,
                 trace: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.runlog = runlog
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        sink = self._span_sink if (trace and runlog is not None) else None
        self.tracer = Tracer(sink=sink)
        self.trace = trace

    def _span_sink(self, record: dict) -> None:
        if self.runlog is not None and not self.runlog.closed:
            self.runlog.event("span", **record)

    def event(self, kind: str, **fields) -> None:
        """Write a structured event to the run log (no-op without one)."""
        if self.runlog is not None and not self.runlog.closed:
            self.runlog.event(kind, **fields)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def snapshot_metrics(self) -> dict:
        return self.metrics.snapshot()

    def close(self) -> None:
        """Flush the final metrics snapshot and close the run log."""
        if self.runlog is not None and not self.runlog.closed:
            snap = self.snapshot_metrics()
            if snap:
                self.runlog.event("metrics.snapshot", metrics=snap)
            self.runlog.close()


TelemetryLike = Union[Telemetry, DisabledTelemetry]

_ACTIVE: TelemetryLike = DISABLED


def get_telemetry() -> TelemetryLike:
    """The active session, or the shared disabled sentinel."""
    return _ACTIVE


def install_telemetry(session: Telemetry) -> TelemetryLike:
    """Make ``session`` the process-global session; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    return previous


def uninstall_telemetry(previous: Optional[TelemetryLike] = None) -> None:
    """Restore ``previous`` (default: fully disabled)."""
    global _ACTIVE
    _ACTIVE = previous if previous is not None else DISABLED


@contextmanager
def telemetry_session(path: Optional[Union[str, Path]] = None,
                      trace: bool = False,
                      metrics: Optional[MetricsRegistry] = None):
    """Install a telemetry session for the duration of the block.

    ``path`` targets the JSONL run log (omit for in-memory-only metrics
    and spans); ``trace`` additionally streams span events. On exit the
    final metrics snapshot is flushed, the log closed, and the previously
    active session (usually: none) restored.
    """
    runlog = RunLog(path) if path is not None else None
    session = Telemetry(runlog=runlog, trace=trace, metrics=metrics)
    previous = install_telemetry(session)
    try:
        yield session
    finally:
        uninstall_telemetry(previous)
        session.close()


def span(name: str, **attrs):
    """Span on the active session (the shared no-op when disabled)."""
    return _ACTIVE.span(name, **attrs)


def fingerprint_digest(value) -> str:
    """A short stable digest of an encoding fingerprint tuple.

    Fingerprints may contain ``id()``-based components, so the digest is
    stable *within* a process tree (parent + forked workers) but not
    across runs -- which is exactly the scope the shared-memory publisher
    guard needs. Telemetry treats ``fingerprint`` fields as volatile.
    """
    return hashlib.sha1(repr(value).encode("utf-8")).hexdigest()[:16]
