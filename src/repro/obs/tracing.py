"""Hierarchical span tracing.

A :class:`Tracer` measures named regions (``with tracer.span("trainer.fit")``)
with wall *and* CPU time and records nesting: each finished span knows its
slash-joined path (``trainer.fit/epoch/step``), its depth and its parent.
Finished spans are kept on the tracer (bounded) and, when a sink is
attached -- the telemetry session wires :meth:`repro.obs.RunLog.event`
here -- exported as JSONL ``span`` events the moment they close.

Spans close innermost-first, so a parent's wall time always includes its
children's; the report tooling subtracts child time to show per-phase
*self* time.

The module-level :func:`repro.obs.span` helper (see
:mod:`repro.obs.telemetry`) resolves the active session's tracer and
degrades to a shared no-op context manager when telemetry is off.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional


class Span:
    """One open region; becomes a plain record dict when it closes."""

    __slots__ = ("name", "path", "depth", "index", "parent_index",
                 "attrs", "_wall0", "_cpu0", "wall", "cpu")

    def __init__(self, name: str, path: str, depth: int, index: int,
                 parent_index: Optional[int], attrs: dict) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.index = index
        self.parent_index = parent_index
        self.attrs = attrs
        self.wall = 0.0
        self.cpu = 0.0
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def close(self) -> dict:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        record = {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "index": self.index,
            "parent": self.parent_index,
            "wall": self.wall,
            "cpu": self.cpu,
        }
        if self.attrs:
            record.update(self.attrs)
        return record


class _SpanContext:
    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.tracer._finish(self.span)


class Tracer:
    """Collects nested spans; optionally streams them to ``sink``.

    ``max_spans`` bounds the in-memory record list (the sink still sees
    everything); 0 keeps nothing in memory.
    """

    def __init__(self, sink: Optional[Callable[[dict], None]] = None,
                 max_spans: int = 10_000) -> None:
        self.sink = sink
        self.max_spans = int(max_spans)
        self.spans: List[dict] = []
        self._stack: List[Span] = []
        self._count = 0
        self.dropped = 0

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("phase"): ...``."""
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent else name
        span = Span(name, path, depth=len(self._stack), index=self._count,
                    parent_index=parent.index if parent else None,
                    attrs=attrs)
        self._count += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        # tolerate a mis-nested close (exception unwinding): pop to the span
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record = span.close()
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.dropped += 1
        if self.sink is not None:
            self.sink(record)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._count = 0
        self.dropped = 0


class NullSpanContext:
    """Shared do-nothing span: disabled tracing costs one attribute walk."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = NullSpanContext()
