"""Multi-process data parallelism with bit-identical results.

A fork-based worker pool (:mod:`~repro.parallel.pool`) plus shared-memory
parameter/gradient transport (:mod:`~repro.parallel.shm`). Consumers:

* :class:`repro.infer.InferenceEngine` shards packed buckets and
  MC-Dropout passes across workers (``EngineConfig.workers``);
* :class:`repro.core.trainer.Trainer` splits each mini-batch into fixed
  micro-shards whose gradients reduce in fixed order
  (``TrainerConfig.workers``);
* :func:`repro.lm.pretrain.pretrain` encodes its corpus in parallel
  (``PretrainConfig.workers``).

The contract everywhere: **the worker count changes wall-clock, never
bits**. Sharding is worker-count independent, per-task randomness rides in
explicit seeds, and reductions run in a fixed order; ``workers<=1`` (or a
platform without ``fork``) runs the identical algorithm in-process.
"""

from .pool import (FORCE_SERIAL_ENV, WorkerPool, effective_workers,
                   force_serial, fork_available, shard_indices, shard_seed)
from .shm import GradientBoard, ParameterPublisher, SharedArray

__all__ = [
    "FORCE_SERIAL_ENV",
    "WorkerPool",
    "effective_workers",
    "force_serial",
    "fork_available",
    "shard_indices",
    "shard_seed",
    "GradientBoard",
    "ParameterPublisher",
    "SharedArray",
]
