"""Fork-based worker pool with deterministic sharding.

The pool exists to use more than one core on the three hot paths of the
reproduction -- pair encoding, batched inference (MC-Dropout sweeps), and
per-step gradient shards -- while guaranteeing that the *result* of a run
never depends on how many processes computed it:

* **fork, never pickle weights**: workers are forked, so the worker
  function is an ordinary closure over the live model / encodings /
  shared-memory buffers. Only small task payloads (index lists, seeds) and
  small results cross the pipes; parameters travel through
  :class:`~repro.parallel.shm.ParameterPublisher` instead.
* **deterministic assignment**: task ``i`` always runs on worker
  ``i % workers`` and results are returned in task order, so scheduling
  jitter cannot reorder anything downstream.
* **graceful serial fallback**: ``workers <= 1``, a platform without
  ``fork``, or :func:`force_serial` all degrade to running the same worker
  function in-process over the same task sequence -- bit-identical math,
  zero processes.

Every consumer derives per-task randomness from explicit seeds carried in
the task payload (e.g. a :class:`~repro.autograd.DropoutPlan`), never from
process-local rng state, which is what makes forked and serial execution
indistinguishable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from contextlib import contextmanager
from multiprocessing.connection import wait
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..obs import get_telemetry

#: environment switch that disables forking everywhere (CI debugging and the
#: forced-serial fallback tests); any non-empty value counts
FORCE_SERIAL_ENV = "REPRO_FORCE_SERIAL"

_FORCE_SERIAL = False


@contextmanager
def force_serial():
    """Run the block with forking disabled: every pool degrades to serial.

    The serial path executes the identical worker function over the
    identical task order, so this changes wall-clock only -- results are
    bit-identical by construction (the parity tests rely on it).
    """
    global _FORCE_SERIAL
    previous = _FORCE_SERIAL
    _FORCE_SERIAL = True
    try:
        yield
    finally:
        _FORCE_SERIAL = previous


def fork_available() -> bool:
    """True when fork-based workers can be used on this platform."""
    if _FORCE_SERIAL or os.environ.get(FORCE_SERIAL_ENV):
        return False
    try:
        return "fork" in mp.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def effective_workers(requested: Optional[int]) -> int:
    """Worker count actually usable: >= 1, and 1 whenever fork is off."""
    if requested is None:
        return 1
    workers = max(int(requested), 1)
    if workers > 1 and not fork_available():
        return 1
    return workers


def shard_indices(n: int, shards: int) -> List[np.ndarray]:
    """Split ``range(n)`` into up to ``shards`` contiguous, near-equal parts.

    The decomposition depends only on ``(n, shards)`` -- never on the
    worker count -- which is what lets gradient shards reduce to the same
    bits at any parallelism level. Empty shards are dropped, so every
    returned array is non-empty and their concatenation is ``arange(n)``.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if n <= 0:
        return []
    bounds = np.linspace(0, n, min(shards, n) + 1).round().astype(np.int64)
    return [np.arange(lo, hi, dtype=np.int64)
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def shard_seed(base_seed: int, shard: int, step: int = 0) -> int:
    """A stable per-(shard, step) seed derived from ``base_seed``.

    Same spread constant the engine uses for MC-Dropout pass seeds, so
    distinct shards/steps land far apart in seed space.
    """
    return int(base_seed) * 1_000_003 + 9_176 * int(step) + int(shard)


def _worker_loop(conn, worker_fn: Callable[[Any], Any]) -> None:
    """Child process: serve ``(index, task)`` messages until the sentinel.

    Each reply carries the task's measured wall time, so per-worker
    latencies travel back through the same result pipes the payloads use
    and the parent can merge them into its telemetry registry -- workers
    never touch the run log themselves.
    """
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            index, task = message
            started = time.perf_counter()
            try:
                payload = worker_fn(task)
                conn.send((index, "ok", payload,
                           time.perf_counter() - started))
            except BaseException as exc:  # surface, do not kill the pool
                conn.send((index, "error",
                           f"{type(exc).__name__}: {exc}",
                           time.perf_counter() - started))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """A fixed set of forked workers running one captured function.

    ``worker_fn`` is captured at fork time (models, encodings and
    shared-memory handles come along for free via copy-on-write); tasks
    and results are the only pickled traffic. With ``workers <= 1`` -- or
    whenever :func:`fork_available` says no -- the pool holds zero
    processes and :meth:`map` simply runs ``worker_fn`` inline.
    """

    def __init__(self, workers: Optional[int],
                 worker_fn: Callable[[Any], Any]) -> None:
        self.worker_fn = worker_fn
        self.workers = effective_workers(workers)
        #: per-task wall seconds of the most recent :meth:`map`, indexed by
        #: task: ``last_latencies[i]`` ran on worker ``i % workers``
        self.last_latencies: List[float] = []
        self._procs: list = []
        self._conns: list = []
        if self.workers > 1:
            ctx = mp.get_context("fork")
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=_worker_loop,
                                   args=(child_conn, worker_fn), daemon=True)
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    @property
    def serial(self) -> bool:
        """True when no worker processes exist (in-process execution)."""
        return not self._procs

    def map(self, tasks: Iterable[Any]) -> List[Any]:
        """Run ``worker_fn`` over ``tasks``; results in task order.

        Task ``i`` is assigned to worker ``i % workers`` (deterministic);
        a worker exception is re-raised here with its message, and a dead
        worker raises ``RuntimeError`` instead of hanging.
        """
        tasks = list(tasks)
        latencies = [0.0] * len(tasks)
        if self.serial:
            results = []
            for index, task in enumerate(tasks):
                started = time.perf_counter()
                results.append(self.worker_fn(task))
                latencies[index] = time.perf_counter() - started
            self._record_latencies(latencies)
            return results
        results: List[Any] = [None] * len(tasks)
        for index, task in enumerate(tasks):
            self._conns[index % self.workers].send((index, task))
        collected = 0
        while collected < len(tasks):
            for conn in wait(self._conns):
                try:
                    index, status, payload, elapsed = conn.recv()
                except (EOFError, OSError):
                    raise RuntimeError(
                        "parallel worker died; falling back is not possible "
                        "mid-map (re-run with workers=1)")
                if status == "error":
                    raise RuntimeError(f"parallel worker failed: {payload}")
                results[index] = payload
                latencies[index] = elapsed
                collected += 1
        self._record_latencies(latencies)
        return results

    def _record_latencies(self, latencies: List[float]) -> None:
        """Merge one map's per-task wall times into the active telemetry.

        Task ``i`` ran on worker ``i % workers`` (the pool's deterministic
        assignment), so the per-worker merge needs no extra bookkeeping
        from the workers themselves.
        """
        self.last_latencies = latencies
        tel = get_telemetry()
        if not tel.enabled or not latencies:
            return
        metrics = tel.metrics
        metrics.counter("pool.tasks").inc(len(latencies))
        metrics.counter("pool.maps").inc()
        histogram = metrics.histogram("pool.task_seconds")
        for seconds in latencies:
            histogram.observe(seconds)
        per_worker: List[dict] = [
            {"worker": w, "tasks": 0, "seconds": 0.0, "max_seconds": 0.0}
            for w in range(self.workers)]
        for index, seconds in enumerate(latencies):
            row = per_worker[index % self.workers]
            row["tasks"] += 1
            row["seconds"] += seconds
            row["max_seconds"] = max(row["max_seconds"], seconds)
        tel.event("pool.map", tasks=len(latencies), workers=self.workers,
                  serial=self.serial, task_seconds=sum(latencies),
                  max_task_seconds=max(latencies), per_worker=per_worker)

    def close(self) -> None:
        """Shut workers down; idempotent and safe on half-dead pools."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = []
        self._conns = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # defensive: do not leak children
        try:
            self.close()
        except Exception:  # pragma: no cover
            pass
