"""Shared-memory parameter broadcast and gradient boards.

The training fastpath (PR 2) left every optimizer holding its parameters in
**one contiguous flat buffer**. That layout is what makes multi-process
data parallelism cheap: broadcasting the model is a single ``memcpy`` into
a ``multiprocessing.shared_memory`` block plus a version bump -- no
pickling, no per-parameter traffic -- and a worker adopts a snapshot with
one ``memcpy`` back through :meth:`Optimizer.load_flat`.

Three pieces:

* :class:`SharedArray` -- a numpy array backed by a named shared-memory
  segment, with a plain-``numpy`` fallback when shared memory is
  unavailable (serial mode needs no real sharing; forked children still
  see the parent's pages either way, but only shm makes *writes* after
  the fork visible).
* :class:`ParameterPublisher` -- parent-side ``publish()`` copies the
  optimizer's flat buffer into shm and increments a version counter;
  worker-side ``pull()`` re-loads only when the version moved. A config
  fingerprint pins publisher and subscriber to the same architecture.
* :class:`GradientBoard` -- one flat-gradient slot per shard; the parent
  reduces slots **in fixed slot order**, which (with worker-count-
  independent shard boundaries) is why training results are bit-identical
  at any parallelism level.

Lifecycle: the creating process owns the segments; ``close()`` unlinks
them. Forked workers inherit the mapping and must never unlink. Everything
degrades gracefully: if ``shared_memory`` cannot allocate (e.g. no
``/dev/shm``), buffers fall back to process-local arrays and the caller is
expected to run serial.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..obs import get_telemetry

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - ancient python
    _shm = None


class SharedArray:
    """A numpy array on a shared-memory segment (or plain memory fallback).

    Created once in the parent *before* forking; children inherit the
    mapping, so parent writes are visible to them (and vice versa) without
    any message passing.
    """

    def __init__(self, shape: Tuple[int, ...], dtype) -> None:
        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
        self._segment = None
        if _shm is not None:
            try:
                self._segment = _shm.SharedMemory(create=True, size=nbytes)
            except (OSError, ValueError):  # no /dev/shm or size refused
                self._segment = None
        if self._segment is not None:
            self.array = np.ndarray(shape, dtype=dtype,
                                    buffer=self._segment.buf)
            self.array.fill(0)
        else:
            self.array = np.zeros(shape, dtype=dtype)

    @property
    def is_shared(self) -> bool:
        """True when backed by a real shared-memory segment."""
        return self._segment is not None

    def close(self) -> None:
        """Release and unlink the segment (owner side); idempotent."""
        segment, self._segment = self._segment, None
        self.array = None
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover
            pass


class ParameterPublisher:
    """Broadcast an optimizer's flat parameter buffer through shared memory.

    The parent calls :meth:`publish` after each ``step``; forked workers
    call :meth:`pull` before computing and copy the snapshot into their own
    optimizer only when the version counter moved. The ``fingerprint``
    (e.g. ``PromptModel.encoding_fingerprint()``) guards against publisher
    and subscriber disagreeing about what the buffer means.
    """

    def __init__(self, optimizer, fingerprint: str = "") -> None:
        self.fingerprint = str(fingerprint)
        self.flat_size = optimizer.flat_size
        self._values = SharedArray((self.flat_size,), optimizer.flat_dtype)
        self._version = SharedArray((1,), np.int64)
        self._seen = 0  # worker-local: last version pulled

    @property
    def is_shared(self) -> bool:
        return self._values.is_shared and self._version.is_shared

    @property
    def version(self) -> int:
        return int(self._version.array[0])

    def publish(self, optimizer) -> int:
        """Snapshot ``optimizer``'s parameters into shm; returns the version."""
        if optimizer.flat_size != self.flat_size:
            raise ValueError(f"optimizer has {optimizer.flat_size} flat "
                             f"elements, publisher expects {self.flat_size}")
        np.copyto(self._values.array, optimizer.flat_data,
                  casting="same_kind")
        self._version.array[0] += 1
        version = self.version
        metrics = get_telemetry().metrics
        metrics.counter("parallel.publishes").inc()
        metrics.gauge("parallel.publish_version").set(version)
        return version

    def pull(self, optimizer, fingerprint: str = "") -> bool:
        """Adopt the latest snapshot if newer than the last pull.

        Returns True when parameters were actually copied. A mismatched
        ``fingerprint`` raises -- a worker silently training a different
        architecture than the published weights is unrecoverable.
        """
        if fingerprint and self.fingerprint and fingerprint != self.fingerprint:
            get_telemetry().metrics.counter(
                "parallel.fingerprint_mismatches").inc()
            raise ValueError("parameter publisher fingerprint mismatch: "
                             f"{fingerprint!r} != {self.fingerprint!r}")
        version = self.version
        if version == self._seen:
            return False
        optimizer.load_flat(self._values.array)
        self._seen = version
        get_telemetry().metrics.counter("parallel.pulls").inc()
        return True

    def close(self) -> None:
        self._values.close()
        self._version.close()

    def __enter__(self) -> "ParameterPublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GradientBoard:
    """Per-shard flat-gradient slots with a fixed-order reduction.

    Workers write shard ``s``'s gathered gradient into ``slot(s)``; the
    parent sums the used slots **sequentially in slot order**. Because
    float addition is not associative, this fixed order -- together with
    shard boundaries that depend only on the batch, never the worker
    count -- is precisely what makes the reduced gradient bit-identical
    whether 1, 2, or 4 processes filled the board.
    """

    def __init__(self, slots: int, flat_size: int, dtype) -> None:
        if slots < 1:
            raise ValueError("GradientBoard needs at least one slot")
        self.slots = int(slots)
        self.flat_size = int(flat_size)
        self._board = SharedArray((self.slots, self.flat_size), dtype)

    @property
    def is_shared(self) -> bool:
        return self._board.is_shared

    def slot(self, index: int) -> np.ndarray:
        """The flat-gradient row for shard ``index`` (a live shm view)."""
        return self._board.array[index]

    def reduce(self, count: int, out: Optional[np.ndarray] = None
               ) -> np.ndarray:
        """Sum the first ``count`` slots in slot order into ``out``."""
        if not (1 <= count <= self.slots):
            raise ValueError(f"cannot reduce {count} of {self.slots} slots")
        board = self._board.array
        if out is None:
            out = np.zeros(self.flat_size, dtype=board.dtype)
        else:
            out[:] = 0.0
        for index in range(count):  # fixed order: never np.sum over axis 0
            out += board[index]
        return out

    def close(self) -> None:
        self._board.close()

    def __enter__(self) -> "GradientBoard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
