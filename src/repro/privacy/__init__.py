"""Privacy-preserving matching: CLK Bloom filters + popcount Dice kernels.

PromptEM's plaintext pipeline assumes both parties' attribute values are
visible to the matcher.  This package adds the PPRL (privacy-preserving
record linkage) mode for the scenarios where records cannot leave their
owner in plaintext:

* :class:`ClkEncoder` -- salted q-gram Bloom-filter (CLK) encodings packed
  as uint64, with ``balance``/``fold`` hardening (the graphMatching
  BFEncoder design, keyed with HMAC so a dictionary-holding adversary
  learns nothing without the salt);
* :mod:`repro.privacy.kernels` -- vectorized popcount (SWAR bit-twiddling
  + byte-LUT cross-check) and blocked streaming Dice top-k, bit-exact
  against the pure-Python reference;
* :class:`PrivateBlocker` -- the offline blocking stage over CLKs, same
  :class:`~repro.data.blocking.BlockingResult` contract as the sparse and
  dense blockers;
* :class:`ClkCandidateIndex` -- the online catalog with incremental
  add/remove/replace, pluggable into :class:`repro.serve.MatchServer` via
  ``candidate_mode="clk"``;
* :class:`ClkCatalog` -- the schema-versioned on-disk artifact one party
  ships to the matching server: ids + filter bytes, never raw values,
  never the salt.

See ``docs/PRIVACY.md`` for the threat model, hardening trade-offs, and
salt management, and ``benchmarks/bench_pprl.py`` for the kernel speedup
and privacy/F1 numbers.
"""

from .blocker import PrivateBlocker, exact_clk_topk
from .catalog import CLK_SCHEMA_VERSION, ClkCatalog, ClkCatalogError
from .encoder import (
    HARDENING_MODES, ClkConfig, ClkEncoder, clk_from_bytes, clk_to_bytes,
)
from .index import ClkCandidateIndex
from .kernels import (
    dice_reference, dice_scores, dice_topk, naive_dice_scores, popcount,
    popcount_bytes, popcount_reference, popcount_words, topk_candidates,
)

__all__ = [
    "ClkConfig", "ClkEncoder", "HARDENING_MODES",
    "clk_to_bytes", "clk_from_bytes",
    "ClkCatalog", "ClkCatalogError", "CLK_SCHEMA_VERSION",
    "ClkCandidateIndex",
    "PrivateBlocker", "exact_clk_topk",
    "popcount", "popcount_words", "popcount_bytes", "popcount_reference",
    "dice_scores", "dice_topk", "dice_reference", "naive_dice_scores",
    "topk_candidates",
]
