"""PrivateBlocker: offline blocking over CLK encodings.

The PPRL counterpart of :class:`repro.ann.DenseBlocker`: both tables are
reduced to packed Bloom filters (no raw values survive the encoding), the
right side is indexed once, and each left filter takes a blocked Dice
top-k probe.  The output obeys the shared
:class:`~repro.data.blocking.BlockingResult` contract, so recall
bookkeeping and pair construction downstream are interchangeable with the
sparse and dense blockers.

``measure_recall`` here pins *kernel exactness* rather than an
approximation gap: the packed popcount path is a full scan, so its top-k
is compared per query against the pure-Python ``bin().count()`` reference
ranking -- the retained fraction lands in ``result.recall_at_k`` and is
1.0 whenever the kernels are correct (a bit-level regression canary, the
same role the >= 0.95 ANN recall bar plays for the dense blocker).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.blocking import BlockingResult
from ..data.records import EntityRecord, Table
from .encoder import ClkEncoder
from .kernels import dice_reference, dice_topk, popcount


def exact_clk_topk(query: np.ndarray, filters: np.ndarray,
                   record_ids: Sequence[str], k: int) -> List[str]:
    """Pure-Python Dice top-k ids with the shared ``(-score, id)`` ordering.

    The reference the kernel path is measured against; quadratic, so tests
    and recall bookkeeping only -- never the serving path.
    """
    query_words = [int(w) for w in np.asarray(query)]
    scored = [(dice_reference(query_words, row), record_ids[i])
              for i, row in enumerate(np.asarray(filters))]
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [record_id for _, record_id in scored[:k]]


class PrivateBlocker:
    """Dice top-k blocking over salted CLK encodings.

    ``encoder`` carries the shared secret salt and the filter shape; ``k``
    candidates are kept per left record, optionally floored at
    ``min_score`` (a Dice threshold, mirroring the sparse blocker's
    threshold knob).  Everything is deterministic: the encoding is keyed
    hashing, ties resolve by record id.
    """

    def __init__(self, encoder: ClkEncoder, k: int = 10,
                 min_score: Optional[float] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.encoder = encoder
        self.k = k
        self.min_score = min_score

    def block(self, left: Table, right: Table,
              measure_recall: bool = False) -> BlockingResult:
        """Top-k CLK candidates per left record as a BlockingResult."""
        left_records = list(left)
        right_records = list(right)
        total = len(left_records) * len(right_records)
        if not left_records or not right_records:
            return BlockingResult(candidates=[], total_pairs=total,
                                  recall_at_k=1.0 if measure_recall else None)
        right_filters = self.encoder.encode_records(right_records)
        right_pops = popcount(right_filters)
        right_ids = [r.record_id for r in right_records]
        right_by_id: Dict[str, EntityRecord] = {
            r.record_id: r for r in right_records}
        queries = self.encoder.encode_records(left_records)

        candidates: List[Tuple[EntityRecord, EntityRecord]] = []
        hits = 0
        wanted = 0
        for i, left_record in enumerate(left_records):
            pool_rows, pool_scores = dice_topk(queries[i], right_filters,
                                               self.k, pops=right_pops)
            topk = sorted(
                ((float(score), right_ids[int(row)])
                 for row, score in zip(pool_rows, pool_scores)),
                key=lambda item: (-item[0], item[1]))[:self.k]
            if measure_recall:
                # kernel exactness check runs on the pre-threshold top-k
                exact = exact_clk_topk(queries[i], right_filters,
                                       right_ids, self.k)
                got = {rid for _, rid in topk}
                hits += sum(1 for rid in exact if rid in got)
                wanted += len(exact)
            if self.min_score is not None:
                topk = [(score, rid) for score, rid in topk
                        if score >= self.min_score]
            for _score, rid in topk:
                candidates.append((left_record, right_by_id[rid]))
        recall = (hits / wanted) if measure_recall and wanted else \
            (1.0 if measure_recall else None)
        return BlockingResult(candidates=candidates, total_pairs=total,
                              recall_at_k=recall)
