"""Schema-versioned on-disk store of CLK encodings.

A :class:`ClkCatalog` is what one party ships to the matching server in
the cross-party scenario: record ids plus packed filters, *never* raw
attribute values and *never* the salt.  The manifest pins the encoding
shape (``nbits``/``num_hashes``/``qgram``/``hardening``) and the salt
*fingerprint*, so the server can refuse to mix catalogs encoded under
different keys or shapes without ever holding the key itself.

Layout (directory, mirroring the model/delta bundle idiom)::

    clk.json   -- manifest: schema_version, kind, encoding params,
                  salt_digest, count
    clks.npy   -- (N, words) uint64, row i is ids[i]'s filter
    ids.json   -- record ids, row-aligned with clks.npy
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..data.records import EntityRecord

PathLike = Union[str, Path]

CLK_SCHEMA_VERSION = 1

_MANIFEST_FILE = "clk.json"
_FILTERS_FILE = "clks.npy"
_IDS_FILE = "ids.json"


class ClkCatalogError(ValueError):
    """Raised on malformed, incompatible, or wrong-schema CLK catalogs."""


class ClkCatalog:
    """Immutable id -> packed-filter mapping with save/load round-trip."""

    def __init__(self, ids: List[str], filters: np.ndarray,
                 params: Dict[str, object]) -> None:
        filters = np.asarray(filters, dtype=np.uint64)
        if filters.ndim != 2:
            raise ClkCatalogError(
                f"filters must be (N, words), got shape {filters.shape}")
        if len(ids) != filters.shape[0]:
            raise ClkCatalogError(
                f"{len(ids)} ids vs {filters.shape[0]} filter rows")
        if len(set(ids)) != len(ids):
            raise ClkCatalogError("duplicate record ids in catalog")
        words = int(params.get("words", filters.shape[1] or 0))
        if filters.shape[0] and filters.shape[1] != words:
            raise ClkCatalogError(
                f"filters have {filters.shape[1]} words, params say {words}")
        self.ids = list(ids)
        self.filters = filters
        self.params = dict(params)
        self._rows = {record_id: row for row, record_id in enumerate(self.ids)}

    # -- construction --------------------------------------------------
    @classmethod
    def from_records(cls, encoder, records: Iterable[EntityRecord]
                     ) -> "ClkCatalog":
        """Encode an owned plaintext catalog (this party's side of PPRL)."""
        records = list(records)
        filters = encoder.encode_records(records)
        return cls([r.record_id for r in records], filters, encoder.params())

    # -- mapping -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._rows

    def get(self, record_id: str) -> Optional[np.ndarray]:
        row = self._rows.get(record_id)
        return None if row is None else self.filters[row]

    def entries(self) -> Iterator[Tuple[str, np.ndarray]]:
        for row, record_id in enumerate(self.ids):
            yield record_id, self.filters[row]

    # -- compatibility -------------------------------------------------
    _SHAPE_KEYS = ("nbits", "num_hashes", "qgram", "hardening")

    def compatible_with(self, other_params: Dict[str, object],
                        check_salt: bool = True) -> None:
        """Raise unless ``other_params`` describes comparable filters.

        Dice over CLKs is only meaningful when both sides used the same
        shape *and* the same salt; a shape match with a different salt
        produces independent bit patterns that score like noise, so salt
        digests are checked by default.
        """
        for key in self._SHAPE_KEYS:
            mine, theirs = self.params.get(key), other_params.get(key)
            if mine != theirs:
                raise ClkCatalogError(
                    f"clk {key} mismatch: catalog has {mine!r}, "
                    f"peer has {theirs!r}")
        if check_salt:
            mine = self.params.get("salt_digest")
            theirs = other_params.get("salt_digest")
            if mine and theirs and mine != theirs:
                raise ClkCatalogError(
                    f"salt fingerprint mismatch ({mine} vs {theirs}); "
                    "both parties must encode under the same secret salt")

    # -- persistence ---------------------------------------------------
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema_version": CLK_SCHEMA_VERSION,
            "kind": "clk-catalog",
            "count": len(self.ids),
        }
        manifest.update({k: self.params[k] for k in sorted(self.params)})
        np.save(path / _FILTERS_FILE,
                np.ascontiguousarray(self.filters, dtype="<u8"))
        with open(path / _IDS_FILE, "w") as f:
            json.dump(self.ids, f)
        with open(path / _MANIFEST_FILE, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ClkCatalog":
        path = Path(path)
        manifest_path = path / _MANIFEST_FILE
        if not manifest_path.exists():
            raise ClkCatalogError(
                f"{path} is not a clk catalog (no {_MANIFEST_FILE})")
        with open(manifest_path) as f:
            manifest = json.load(f)
        schema = manifest.get("schema_version")
        kind = manifest.get("kind")
        if schema != CLK_SCHEMA_VERSION or kind != "clk-catalog":
            raise ClkCatalogError(
                f"clk catalog schema {schema!r} (kind {kind!r}) is not "
                f"supported; this build reads kind 'clk-catalog' at "
                f"schema {CLK_SCHEMA_VERSION}")
        filters_path = path / _FILTERS_FILE
        ids_path = path / _IDS_FILE
        if not filters_path.exists() or not ids_path.exists():
            raise ClkCatalogError(
                f"{path} is missing {_FILTERS_FILE} or {_IDS_FILE}")
        filters = np.load(filters_path).astype(np.uint64)
        with open(ids_path) as f:
            ids = json.load(f)
        params = {k: v for k, v in manifest.items()
                  if k not in ("schema_version", "kind", "count")}
        catalog = cls(ids, filters, params)
        if manifest.get("count") != len(catalog):
            raise ClkCatalogError(
                f"manifest count {manifest.get('count')} does not match "
                f"{len(catalog)} stored filters")
        return catalog

    def stats(self) -> Dict[str, object]:
        """Size + fill diagnostics (never the salt, never raw values)."""
        from .kernels import popcount

        words = int(self.params.get("words", 0)) or (
            self.filters.shape[1] if self.filters.ndim == 2 else 0)
        nbits = words * 64
        pops = popcount(self.filters) if len(self.ids) else np.zeros(0)
        return {
            "count": len(self.ids),
            "encoded_nbits": nbits,
            "params": {k: self.params.get(k) for k in self._SHAPE_KEYS},
            "salt_digest": self.params.get("salt_digest"),
            "mean_fill": float(pops.mean() / nbits) if len(pops) and nbits else 0.0,
        }
