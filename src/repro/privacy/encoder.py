"""Salted q-gram Bloom-filter (CLK) encoding of entity records.

The cryptographic long-term key scheme (Schnell/Bachteler/Reiher, the
``graphMatching`` BFEncoder design): every record is reduced to character
q-grams, each q-gram sets ``num_hashes`` bits of a fixed-length Bloom
filter via double hashing, and the whole pipeline is keyed by a per-party
secret salt.  Two parties that share the salt produce comparable filters
for similar records; a server that never sees the salt cannot mount a
dictionary attack (every hash here is HMAC-SHA256 under the salt, so
precomputing gram -> bit-position tables requires the key).

Normalization deliberately reuses :func:`repro.data.blocking.record_tokens`
-- the exact token set the plaintext sparse blocker indexes -- so the
privacy/recall trade-off measured in ``benchmarks/bench_pprl.py`` isolates
the *encoding* loss, not a tokenizer mismatch.

Determinism is load-bearing: encoding uses only ``hashlib``/``hmac`` (never
Python's seeded ``hash()``), so the same salt + record is bit-identical
across processes, fork or spawn -- pinned by ``tests/privacy``.

Hardening options (see ``docs/PRIVACY.md`` for the threat model and the
measured F1 cost of each):

* ``"balance"`` -- concatenate the filter with its complement and apply a
  salt-derived fixed bit permutation; every encoding has the same Hamming
  weight (``nbits`` of ``2 * nbits``), removing the weight side-channel
  frequency attacks key on;
* ``"fold"`` -- XOR the two halves together, halving the length; multiple
  grams alias per bit, which degrades reconstruction attacks at a small
  recall cost.
"""

from __future__ import annotations

import hashlib
import hmac
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..data.blocking import record_tokens
from ..data.records import EntityRecord
from ..obs import get_telemetry
from .kernels import WORD_BITS

#: hardening modes understood by :class:`ClkEncoder`
HARDENING_MODES = ("none", "balance", "fold")

#: q-gram boundary pad; cannot collide with tokenizer output (lower-cased
#: words / digits / printable punctuation)
_PAD = "\x00"

#: entries kept in the per-encoder gram -> (h1, h2) memo
_GRAM_CACHE_CAP = 65536

_WORD_WEIGHTS = np.left_shift(
    np.uint64(1), np.arange(WORD_BITS, dtype=np.uint64))


@dataclass(frozen=True)
class ClkConfig:
    """CLK shape parameters -- must match across parties to compare filters.

    Defaults follow the graphMatching reference configuration (1024-bit
    filters, 30 bits per gram, 2-grams).
    """

    nbits: int = 1024
    num_hashes: int = 30
    qgram: int = 2
    hardening: str = "none"

    def __post_init__(self) -> None:
        if self.nbits <= 0 or self.nbits % WORD_BITS != 0:
            raise ValueError(
                f"nbits must be a positive multiple of {WORD_BITS}, "
                f"got {self.nbits}")
        if self.hardening not in HARDENING_MODES:
            raise ValueError(
                f"unknown hardening {self.hardening!r}, "
                f"expected one of {HARDENING_MODES}")
        if self.hardening == "fold" and self.nbits % (2 * WORD_BITS) != 0:
            raise ValueError(
                f"fold hardening needs nbits divisible by {2 * WORD_BITS}, "
                f"got {self.nbits}")
        if self.num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {self.num_hashes}")
        if self.qgram < 1:
            raise ValueError(f"qgram must be >= 1, got {self.qgram}")

    @property
    def encoded_nbits(self) -> int:
        """Filter length after hardening (what actually goes on the wire)."""
        if self.hardening == "balance":
            return 2 * self.nbits
        if self.hardening == "fold":
            return self.nbits // 2
        return self.nbits

    @property
    def words(self) -> int:
        """uint64 words per encoded filter."""
        return self.encoded_nbits // WORD_BITS

    def params(self) -> Dict[str, int]:
        """JSON-able shape parameters (catalog manifest / compatibility)."""
        return {
            "nbits": self.nbits,
            "num_hashes": self.num_hashes,
            "qgram": self.qgram,
            "hardening": self.hardening,
            "encoded_nbits": self.encoded_nbits,
            "words": self.words,
        }


class ClkEncoder:
    """Keyed record -> packed-uint64 CLK encoder.

    ``salt`` is the per-party secret (str or bytes).  Instances are safe to
    share across threads for encoding (the gram memo is guarded) and
    survive ``fork``/``spawn`` -- nothing about the encoding depends on
    process state.
    """

    def __init__(self, salt, config: ClkConfig = None) -> None:
        if isinstance(salt, str):
            salt = salt.encode("utf-8")
        if not isinstance(salt, (bytes, bytearray)):
            raise TypeError(f"salt must be str or bytes, got {type(salt).__name__}")
        if not salt:
            raise ValueError("salt must be non-empty")
        self._salt = bytes(salt)
        self.config = config if config is not None else ClkConfig()
        self._gram_memo: Dict[str, Tuple[int, int]] = {}
        self._perm = None  # lazily built balance permutation

    # -- key material -------------------------------------------------
    @property
    def salt_digest(self) -> str:
        """SHA-256 fingerprint of the salt (hex, truncated).

        Lets two parties confirm they hold the same key -- and the catalog
        loader reject a mismatched one -- without the salt itself ever
        being written anywhere.
        """
        return hashlib.sha256(b"clk-salt|" + self._salt).hexdigest()[:16]

    # -- q-grams ------------------------------------------------------
    def qgrams(self, record: EntityRecord) -> List[str]:
        """Sorted q-grams of the record's normalized token set.

        Each token from :func:`record_tokens` is padded with ``q - 1``
        boundary characters on both sides so leading/trailing characters
        carry positional signal, then sliced into overlapping q-grams.
        Sorted + deduplicated for determinism (Bloom insertion order does
        not matter, but the test oracle iterates these directly).
        """
        q = self.config.qgram
        grams = set()
        for token in record_tokens(record):
            padded = _PAD * (q - 1) + token + _PAD * (q - 1)
            for i in range(len(padded) - q + 1):
                grams.add(padded[i:i + q])
        return sorted(grams)

    def _gram_hashes(self, gram: str) -> Tuple[int, int]:
        """Double-hashing seeds for one gram: keyed, memoized.

        ``h1``/``h2`` are independent HMAC-SHA256 outputs under the salt
        (domain-separated); ``h2`` is forced odd so the double-hash probe
        sequence ``h1 + i * h2 (mod nbits)`` cycles the full filter when
        ``nbits`` is a power of two.
        """
        memo = self._gram_memo
        cached = memo.get(gram)
        if cached is not None:
            return cached
        data = gram.encode("utf-8")
        h1 = int.from_bytes(
            hmac.new(self._salt, b"clk-h1|" + data, hashlib.sha256).digest()[:8],
            "big")
        h2 = int.from_bytes(
            hmac.new(self._salt, b"clk-h2|" + data, hashlib.sha256).digest()[:8],
            "big") | 1
        if len(memo) >= _GRAM_CACHE_CAP:
            memo.clear()
        memo[gram] = (h1, h2)
        return h1, h2

    def gram_bits(self, gram: str) -> List[int]:
        """The ``num_hashes`` bit positions one gram sets (test oracle)."""
        h1, h2 = self._gram_hashes(gram)
        nbits = self.config.nbits
        return [(h1 + i * h2) % nbits for i in range(self.config.num_hashes)]

    # -- encoding -----------------------------------------------------
    def encode_record(self, record: EntityRecord) -> np.ndarray:
        """One record -> packed uint64 filter of ``config.words`` words."""
        bits = np.zeros(self.config.nbits, dtype=bool)
        for gram in self.qgrams(record):
            bits[self.gram_bits(gram)] = True
        packed = self._harden_and_pack(bits)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("privacy.clk.encoded").inc()
        return packed

    def encode_records(self, records: Iterable[EntityRecord]) -> np.ndarray:
        """Batch encode: ``(N, words)`` uint64 matrix, one row per record."""
        started = time.perf_counter()
        rows = [self.encode_record(record) for record in records]
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.timer("privacy.clk.encode_seconds").observe(
                time.perf_counter() - started)
        if not rows:
            return np.zeros((0, self.config.words), dtype=np.uint64)
        return np.stack(rows)

    # -- hardening ----------------------------------------------------
    def _balance_perm(self) -> np.ndarray:
        """Salt-derived fixed permutation of the balanced filter's bits.

        Seeded from the key material, so both salt-sharing parties apply
        the same shuffle; an outsider cannot undo it to separate the
        original half from the complement half.
        """
        if self._perm is None:
            seed_bytes = hmac.new(
                self._salt, b"clk-balance-perm", hashlib.sha256).digest()
            seed = int.from_bytes(seed_bytes[:8], "big")
            rng = np.random.default_rng(seed)
            self._perm = rng.permutation(2 * self.config.nbits)
        return self._perm

    def _harden_and_pack(self, bits: np.ndarray) -> np.ndarray:
        mode = self.config.hardening
        if mode == "balance":
            bits = np.concatenate([bits, ~bits])[self._balance_perm()]
        packed = self._pack(bits)
        if mode == "fold":
            half = len(packed) // 2
            packed = packed[:half] ^ packed[half:]
        return packed

    @staticmethod
    def _pack(bits: np.ndarray) -> np.ndarray:
        """Bool bit array -> little-endian-bit uint64 words.

        Bit ``i`` of the filter lands in word ``i // 64`` at in-word
        position ``i % 64`` -- the layout every kernel, the catalog file,
        and the base64 wire helpers all assume.
        """
        words = bits.reshape(-1, WORD_BITS).astype(np.uint64)
        return (words * _WORD_WEIGHTS).sum(axis=1, dtype=np.uint64)

    # -- bookkeeping --------------------------------------------------
    def params(self) -> Dict[str, object]:
        """Shape params + salt fingerprint (what catalogs persist)."""
        out: Dict[str, object] = dict(self.config.params())
        out["salt_digest"] = self.salt_digest
        return out

    def __repr__(self) -> str:  # never leak the salt
        cfg = self.config
        return (f"ClkEncoder(nbits={cfg.nbits}, num_hashes={cfg.num_hashes}, "
                f"qgram={cfg.qgram}, hardening={cfg.hardening!r}, "
                f"salt_digest={self.salt_digest!r})")


def clk_to_bytes(clk: np.ndarray) -> bytes:
    """Packed filter -> canonical little-endian uint64 bytes (wire/disk)."""
    return np.ascontiguousarray(clk, dtype="<u8").tobytes()


def clk_from_bytes(raw: bytes) -> np.ndarray:
    """Inverse of :func:`clk_to_bytes` (copy, so the array is writable)."""
    if len(raw) % 8 != 0:
        raise ValueError(f"clk byte length must be a multiple of 8, got {len(raw)}")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)
