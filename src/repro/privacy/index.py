"""ClkCandidateIndex: incremental CLK catalog with Dice top-k search.

The privacy-mode counterpart of :class:`repro.serve.DenseCandidateIndex`:
the same catalog protocol (``add`` / ``add_many`` / ``remove`` /
``candidates`` / ``stats``) over packed Bloom filters instead of int8
embeddings.  Two deployment shapes share this class:

* **cross-party** -- no encoder, no records: entries arrive as
  ``(record_id, packed filter)`` pairs (:meth:`add_clk`) and queries as
  filters (:meth:`search`).  The index holds nothing reversible, which is
  what makes the no-plaintext serving guarantee checkable;
* **single-party** -- constructed with a :class:`ClkEncoder`: plaintext
  records are encoded on ``add`` and kept alongside their filters, so the
  match server can hand candidate *records* to the scoring model while
  candidate *generation* runs over CLKs (recall measurement, trade-off
  benchmarks).

Storage mirrors :class:`repro.ann.AnnIndex`: a growable packed matrix with
per-row popcounts, a row -> id ribbon with ``None`` tombstones, and a free
list so removes recycle rows.  Re-adding an id replaces the old filter in
place (the replace-on-readd contract the regression tests pin).  Search
snapshots live rows under the lock and scores outside it; results follow
the deterministic ``(-score, record_id)`` ordering.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..data.records import EntityRecord
from ..obs import get_telemetry
from .encoder import ClkEncoder
from .kernels import dice_topk, popcount

#: initial packed-matrix capacity (rows); doubles on growth
_INITIAL_CAPACITY = 64


class ClkCandidateIndex:
    """CLK-based candidate catalog with incremental maintenance."""

    kind = "clk"

    def __init__(self, words: Optional[int] = None,
                 encoder: Optional[ClkEncoder] = None,
                 min_score: Optional[float] = None,
                 default_k: int = 5) -> None:
        if default_k < 1:
            raise ValueError("default_k must be >= 1")
        if encoder is not None:
            encoder_words = encoder.config.words
            if words is not None and words != encoder_words:
                raise ValueError(
                    f"words={words} conflicts with encoder "
                    f"({encoder_words} words)")
            words = encoder_words
        if words is None or words < 1:
            raise ValueError("need words >= 1 (or an encoder to infer it)")
        self.words = int(words)
        self.encoder = encoder
        self.min_score = min_score
        self.default_k = default_k
        self._lock = threading.RLock()
        self._filters = np.zeros((_INITIAL_CAPACITY, self.words),
                                 dtype=np.uint64)
        self._pops = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._ids: List[Optional[str]] = [None] * _INITIAL_CAPACITY
        self._rows: Dict[str, int] = {}
        self._free: List[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))
        self._records: Dict[str, EntityRecord] = {}

    # -- size / membership --------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._rows

    def get(self, record_id: str) -> Optional[EntityRecord]:
        """Stored plaintext record (single-party mode only), else ``None``."""
        with self._lock:
            return self._records.get(record_id)

    def get_clk(self, record_id: str) -> Optional[np.ndarray]:
        with self._lock:
            row = self._rows.get(record_id)
            return None if row is None else self._filters[row].copy()

    # -- maintenance ---------------------------------------------------
    def _take_row(self) -> int:
        if self._free:
            return self._free.pop()
        old = self._filters.shape[0]
        grown = max(_INITIAL_CAPACITY, old * 2)
        filters = np.zeros((grown, self.words), dtype=np.uint64)
        filters[:old] = self._filters
        pops = np.zeros(grown, dtype=np.int64)
        pops[:old] = self._pops
        self._filters, self._pops = filters, pops
        self._ids.extend([None] * (grown - old))
        self._free.extend(range(grown - 1, old, -1))
        return old

    def _set_gauge(self, size: int) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("privacy.clk_index.size").set(size)

    def add_clk(self, record_id: str, clk: np.ndarray,
                record: Optional[EntityRecord] = None) -> bool:
        """Insert a pre-encoded filter; ``False`` when it replaced an
        earlier filter for the same id (mutated-record re-add)."""
        clk = np.ascontiguousarray(clk, dtype=np.uint64)
        if clk.shape != (self.words,):
            raise ValueError(
                f"expected a ({self.words},) packed filter, "
                f"got shape {clk.shape}")
        pop = int(popcount(clk))
        with self._lock:
            row = self._rows.get(record_id)
            fresh = row is None
            if fresh:
                row = self._take_row()
                self._rows[record_id] = row
                self._ids[row] = record_id
            self._filters[row] = clk
            self._pops[row] = pop
            if record is not None:
                self._records[record_id] = record
            else:
                # a filter-only (re)add leaves no plaintext behind; any
                # record stored for this id no longer matches the filter
                self._records.pop(record_id, None)
            size = len(self._rows)
        self._set_gauge(size)
        return fresh

    def add_clk_many(self, entries: Iterable[Tuple[str, np.ndarray]]) -> int:
        """Bulk filter insert; returns the number of *new* ids."""
        fresh = 0
        for record_id, clk in entries:
            if self.add_clk(record_id, clk):
                fresh += 1
        return fresh

    def _require_encoder(self) -> ClkEncoder:
        if self.encoder is None:
            raise ValueError(
                "this ClkCandidateIndex holds no salt (cross-party mode); "
                "submit pre-encoded filters via add_clk / search instead")
        return self.encoder

    def add(self, record: EntityRecord) -> bool:
        """Encode + insert a plaintext record (single-party mode)."""
        clk = self._require_encoder().encode_record(record)
        return self.add_clk(record.record_id, clk, record=record)

    def add_many(self, records: Iterable[EntityRecord]) -> int:
        records = list(records)
        if not records:
            return 0
        filters = self._require_encoder().encode_records(records)
        fresh = 0
        with self._lock:
            for i, record in enumerate(records):
                if self.add_clk(record.record_id, filters[i], record=record):
                    fresh += 1
        return fresh

    def remove(self, record_id: str) -> bool:
        with self._lock:
            row = self._rows.pop(record_id, None)
            if row is None:
                return False
            self._ids[row] = None
            self._filters[row] = 0
            self._pops[row] = 0
            self._free.append(row)
            self._records.pop(record_id, None)
            size = len(self._rows)
        self._set_gauge(size)
        return True

    # -- search --------------------------------------------------------
    def search(self, clk: np.ndarray, k: Optional[int] = None
               ) -> List[Tuple[str, float]]:
        """Top-k ``(record_id, dice)`` for a packed query filter.

        Live rows are snapshotted under the lock; the popcount kernels run
        outside it (array reallocation on growth leaves the snapshot's
        references valid).  Ties at the k-th score resolve by record id.
        """
        k = self.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        clk = np.ascontiguousarray(clk, dtype=np.uint64)
        if clk.shape != (self.words,):
            raise ValueError(
                f"expected a ({self.words},) packed filter, "
                f"got shape {clk.shape}")
        with self._lock:
            if not self._rows:
                return []
            rows = np.fromiter(self._rows.values(), dtype=np.int64,
                               count=len(self._rows))
            ids = {row: rid for rid, row in self._rows.items()}
            filters, pops = self._filters, self._pops
        pool_rows, pool_scores = dice_topk(clk, filters, k, pops=pops,
                                           rows=rows)
        found = [(ids[int(row)], float(score))
                 for row, score in zip(pool_rows, pool_scores)]
        if self.min_score is not None:
            found = [(rid, score) for rid, score in found
                     if score >= self.min_score]
        found.sort(key=lambda item: (-item[1], item[0]))
        return found[:k]

    def candidates(self, record: EntityRecord, k: Optional[int] = None
                   ) -> List[Tuple[EntityRecord, float]]:
        """Top-k ``(record, dice)`` for a plaintext query (single-party).

        Only hits whose plaintext record is stored resolve -- in
        cross-party mode nothing resolves, by construction.
        """
        clk = self._require_encoder().encode_record(record)
        return self.candidates_from_clk(clk, k)

    def candidates_from_clk(self, clk: np.ndarray, k: Optional[int] = None
                            ) -> List[Tuple[EntityRecord, float]]:
        """:meth:`candidates` for an already-encoded query filter."""
        found = self.search(clk, k)
        with self._lock:
            out = []
            for rid, score in found:
                kept = self._records.get(rid)
                if kept is not None:
                    out.append((kept, score))
        return out

    # -- bookkeeping ---------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            live = len(self._rows)
            capacity = self._filters.shape[0]
            fill = float(self._pops[list(self._rows.values())].mean()
                         / (self.words * 64)) if live else 0.0
            return {
                "kind": self.kind,
                "records": live,
                "plaintext_records": len(self._records),
                "words": self.words,
                "encoded_nbits": self.words * 64,
                "capacity": capacity,
                "free_rows": len(self._free),
                "mean_fill": fill,
                "has_encoder": self.encoder is not None,
            }
