"""Packed-uint64 popcount and Dice kernels for CLK Bloom filters.

A CLK (cryptographic long-term key) is a fixed-length Bloom filter packed
64 bits per ``uint64`` word.  The PPRL hot path is "score one query filter
against many stored filters, keep the top-k by Dice"; three things make it
fast here, mirroring :mod:`repro.ann.kernels`:

* **bit-twiddling popcount** -- per-word population counts come from the
  branch-free SWAR ladder (mask-add halves, then the ``* 0x0101..`` fold),
  four vectorized integer ops per word instead of a Python loop over bits.
  A 256-entry byte-LUT variant (:func:`popcount_bytes`) cross-checks it;
* **fused AND-popcount Dice** -- a query is scored against a *block* of
  packed filters by ANDing into a recycled per-thread scratch buffer,
  popcounting in place, and folding the precomputed per-filter weights
  into ``2|A∩B| / (|A| + |B|)`` without materializing intermediates past
  one block;
* **blocked top-k merge** -- candidates stream through a small running
  pool (top-k plus score ties), so the full score vector over the catalog
  never exists in memory.

Tie handling is identical to the ANN path: :func:`topk_candidates` returns
*every* row tied at the k-th score and callers order by
``(-score, record_id)`` before cutting to ``k``, so equal Dice scores never
reorder between runs.  Scores are float64 so the vectorized kernel agrees
*bit-for-bit* with the pure-Python :func:`dice_reference` (same IEEE ops in
the same order) -- the property tests assert exact equality, not closeness.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: bits per packed word
WORD_BITS = 64

#: rows of packed filters ANDed per kernel call; one block of uint64
#: scratch (BLOCK_ROWS x words) stays comfortably inside L2/L3
BLOCK_ROWS = 8192

# SWAR popcount constants (Hacker's Delight fig. 5-2), one uint64 each
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_S1, _S2, _S4, _S56 = (np.uint64(s) for s in (1, 2, 4, 56))

#: 256-entry byte lookup table -- the classic LUT popcount, kept as an
#: independent implementation to cross-check the bit-twiddling ladder
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_scratch = threading.local()


def _scratch_buf(key: str, shape: Tuple[int, ...], dtype=np.uint64) -> np.ndarray:
    """Reusable per-thread buffer (same idiom as ``ann.kernels._scratch_buf``)."""
    store = getattr(_scratch, "bufs", None)
    if store is None:
        store = _scratch.bufs = {}
    buf = store.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
        buf = store[key] = np.empty(shape, dtype)
    return buf


# ----------------------------------------------------------------------
# Popcount
# ----------------------------------------------------------------------
def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word population counts via the SWAR bit-twiddling ladder.

    ``words`` is uint64 of any shape; the result is uint64 of the same
    shape with each element in ``[0, 64]``.  Branch-free and fully
    vectorized: two masked half-adds, a nibble fold, then the multiply
    trick that sums the eight byte counts into the top byte.
    """
    x = np.asarray(words, dtype=np.uint64).copy()
    x -= (x >> _S1) & _M1
    x = (x & _M2) + ((x >> _S2) & _M2)
    x = (x + (x >> _S4)) & _M4
    return (x * _H01) >> _S56


def popcount(packed: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of packed filters: ``(..., W) -> (...)`` int64."""
    packed = np.asarray(packed, dtype=np.uint64)
    return popcount_words(packed).sum(axis=-1).astype(np.int64)


def popcount_bytes(packed: np.ndarray) -> np.ndarray:
    """Per-row counts via the 256-entry byte LUT (cross-check implementation).

    Views the packed words as bytes and gathers through :data:`_POPCOUNT8`;
    independent of the SWAR ladder, used by tests and the benchmark to pin
    both against the pure-Python reference.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    as_bytes = packed.view(np.uint8)
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


# ----------------------------------------------------------------------
# Dice similarity
# ----------------------------------------------------------------------
def dice_scores(query: np.ndarray, filters: np.ndarray,
                pops: Optional[np.ndarray] = None,
                query_pop: Optional[int] = None,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Dice similarity of one packed query against many packed filters.

    ``query`` is uint64 ``(W,)``; ``filters`` uint64 ``(M, W)``; the result
    is float64 ``(M,)`` with ``2|A∩B| / (|A| + |B|)`` per row (0.0 when
    both filters are empty).  Blocks of ``BLOCK_ROWS`` filters are ANDed
    into one recycled scratch buffer and popcounted in place -- the AND of
    the full catalog never exists.  ``pops`` (per-filter set-bit counts)
    and ``query_pop`` are recomputed when not supplied.
    """
    query = np.ascontiguousarray(query, dtype=np.uint64)
    filters = np.asarray(filters, dtype=np.uint64)
    rows = filters.shape[0]
    if pops is None:
        pops = popcount(filters)
    if query_pop is None:
        query_pop = int(popcount(query))
    if out is None:
        out = np.empty(rows, dtype=np.float64)
    if rows == 0:
        return out
    block = min(rows, BLOCK_ROWS)
    inter = _scratch_buf("dice_and", (block, filters.shape[1]))
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        chunk = inter[: stop - start]
        np.bitwise_and(filters[start:stop], query, out=chunk)
        shared = popcount(chunk)
        denom = pops[start:stop] + query_pop
        seg = out[start:stop]
        seg[:] = 0.0
        np.divide(2.0 * shared, denom, out=seg, where=denom > 0)
    return out


def topk_candidates(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k scores *including every tie at the k-th value*.

    Same contract as :func:`repro.ann.kernels.topk_candidates` (duplicated
    so ``repro.privacy`` imports without the encoder/LM stack): returned
    unordered, callers sort by ``(-score, record_id)`` and cut to ``k``.
    """
    n = len(scores)
    if n <= k:
        return np.arange(n)
    kth = np.partition(scores, n - k)[n - k]
    return np.flatnonzero(scores >= kth)


def dice_topk(query: np.ndarray, filters: np.ndarray, k: int,
              pops: Optional[np.ndarray] = None,
              rows: Optional[np.ndarray] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked streaming Dice top-k that never holds the full score vector.

    Streams ``filters`` (optionally restricted to ``rows``) through
    block-sized AND-popcount passes, keeping a running candidate pool of at
    most ``k`` rows plus ties.  Returns ``(pool_rows, pool_scores)`` --
    unordered, possibly longer than ``k`` when the k-th score is tied.
    """
    filters = np.asarray(filters, dtype=np.uint64)
    if pops is None:
        pops = popcount(filters)
    if rows is None:
        rows = np.arange(filters.shape[0])
    rows = np.asarray(rows, dtype=np.int64)
    query = np.ascontiguousarray(query, dtype=np.uint64)
    query_pop = int(popcount(query))
    pool_rows = np.empty(0, dtype=np.int64)
    pool_scores = np.empty(0, dtype=np.float64)
    for start in range(0, len(rows), BLOCK_ROWS):
        chunk = rows[start:start + BLOCK_ROWS]
        scores = dice_scores(query, filters[chunk], pops=pops[chunk],
                             query_pop=query_pop)
        keep = topk_candidates(scores, k)
        pool_rows = np.concatenate([pool_rows, chunk[keep]])
        pool_scores = np.concatenate([pool_scores, scores[keep]])
        if len(pool_rows) > k:
            keep = topk_candidates(pool_scores, k)
            pool_rows, pool_scores = pool_rows[keep], pool_scores[keep]
    return pool_rows, pool_scores


# ----------------------------------------------------------------------
# Pure-Python reference (tests + the naive benchmark arm)
# ----------------------------------------------------------------------
def popcount_reference(packed: Sequence[int]) -> int:
    """``bin(word).count("1")`` over packed words -- the test oracle."""
    return sum(bin(int(word)).count("1") for word in packed)


def dice_reference(a: Sequence[int], b: Sequence[int]) -> float:
    """Pure-Python Dice over two packed filters, word by word.

    Uses the exact float64 operation order of the vectorized kernel
    (``2.0 * inter / (pa + pb)``) so agreement is bit-exact, and the same
    both-empty convention (0.0).
    """
    if len(a) != len(b):
        raise ValueError(f"word-length mismatch: {len(a)} vs {len(b)}")
    inter = sum(bin(int(x) & int(y)).count("1") for x, y in zip(a, b))
    denom = popcount_reference(a) + popcount_reference(b)
    if denom == 0:
        return 0.0
    return 2.0 * inter / denom


def naive_dice_scores(query: Sequence[int], filters: np.ndarray) -> List[float]:
    """Per-pair Python loop over the catalog -- the benchmark's naive arm."""
    query = [int(w) for w in query]
    return [dice_reference(query, row) for row in np.asarray(filters)]
