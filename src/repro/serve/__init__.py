"""Online matching service: model bundles, micro-batching, hot swap.

The serving layer turns the offline reproduction into a query-shaped
service (the deployment form real EM systems take):

* :class:`ModelBundle` -- a one-directory artifact (weights, vocabulary,
  template, verbalizer, tuned threshold) that a server loads without
  importing any training code;
* :class:`ServingIndex` -- an incrementally maintained inverted-index
  catalog with top-k candidate retrieval;
* :class:`DenseCandidateIndex` -- the same catalog protocol over a
  :mod:`repro.ann` embedding index (sub-linear dense retrieval), selected
  per-server via ``candidate_mode`` and flippable through
  ``POST /admin/candidates``;
* :class:`MatchServer` -- bounded request queue, dynamic micro-batching
  under a max-wait deadline and token budget, explicit
  :class:`Overloaded` shedding, and atomic bundle hot-swap between
  batches;
* :class:`ServingPool` -- N forked replica workers over one
  shared-memory weight map (:class:`SharedBundleWeights`), a load-aware
  front router with per-replica bounded queues and redispatch-on-death,
  and a hash-sharded candidate layer (:class:`ShardedServingIndex` /
  :class:`ShardedDenseCandidateIndex`);
* :mod:`repro.serve.http` -- a stdlib HTTP front end plus a socket-free
  JSONL request driver; both drive a server or a pool interchangeably.

The privacy-preserving path (``candidate_mode="clk"``) plugs a
:class:`repro.privacy.ClkCandidateIndex` into the same surfaces: catalog
adds, match queries, and responses carry only packed Bloom-filter bytes
and record ids -- see ``docs/PRIVACY.md``.

See ``docs/SERVING.md`` for the bundle format, scheduler knobs,
backpressure semantics, and the hot-swap contract.
"""

from .bundle import BUNDLE_SCHEMA_VERSION, BundleError, ModelBundle
from .http import (
    MatchHTTPServer, ProtocolError, handle_request, read_jsonl,
    serve_requests,
)
from .index import ServingIndex
from .server import (
    ClkCandidate, ClkMatchResponse, MatchCandidate, MatchResponse,
    MatchServer, Overloaded, PendingMatch, PendingResponse, ScoreResponse,
    ServerConfig,
)
from .shard import ShardedServingIndex, merge_topk, shard_of
from .weights import SharedBundleWeights

__all__ = [
    "ModelBundle", "BundleError", "BUNDLE_SCHEMA_VERSION",
    "DeltaBundle", "DELTA_SCHEMA_VERSION", "backbone_fingerprint",
    "TenantRegistry", "TenantEntry", "TenantError", "UnknownTenant",
    "ServingIndex", "DenseCandidateIndex",
    "ShardedServingIndex", "ShardedDenseCandidateIndex",
    "shard_of", "merge_topk",
    "MatchServer", "ServerConfig", "Overloaded",
    "ServingPool", "PoolConfig", "SharedBundleWeights",
    "ScoreResponse", "MatchResponse", "MatchCandidate",
    "ClkMatchResponse", "ClkCandidate",
    "PendingResponse", "PendingMatch",
    "MatchHTTPServer", "serve_requests", "handle_request", "read_jsonl",
    "ProtocolError",
]


def __getattr__(name):  # PEP 562
    # resolved lazily because the dense path pulls in the bi-encoder
    # stack (repro.ann -> repro.baselines); a sparse-only server that
    # just loads a bundle must stay free of training-adjacent imports
    if name == "DenseCandidateIndex":
        from .dense import DenseCandidateIndex

        return DenseCandidateIndex
    if name == "ShardedDenseCandidateIndex":
        from .shard import ShardedDenseCandidateIndex

        return ShardedDenseCandidateIndex
    if name in ("ServingPool", "PoolConfig"):
        from . import pool

        return getattr(pool, name)
    # delta/tenant machinery pulls in repro.core.peft; a single-tenant
    # server that just loads a full bundle should not pay for it
    if name in ("DeltaBundle", "DELTA_SCHEMA_VERSION",
                "backbone_fingerprint"):
        from . import delta

        return getattr(delta, name)
    if name in ("TenantRegistry", "TenantEntry", "TenantError",
                "UnknownTenant"):
        from . import tenants

        return getattr(tenants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
