"""Online matching service: model bundles, micro-batching, hot swap.

The serving layer turns the offline reproduction into a query-shaped
service (the deployment form real EM systems take):

* :class:`ModelBundle` -- a one-directory artifact (weights, vocabulary,
  template, verbalizer, tuned threshold) that a server loads without
  importing any training code;
* :class:`ServingIndex` -- an incrementally maintained inverted-index
  catalog with top-k candidate retrieval;
* :class:`DenseCandidateIndex` -- the same catalog protocol over a
  :mod:`repro.ann` embedding index (sub-linear dense retrieval), selected
  per-server via ``candidate_mode`` and flippable through
  ``POST /admin/candidates``;
* :class:`MatchServer` -- bounded request queue, dynamic micro-batching
  under a max-wait deadline and token budget, explicit
  :class:`Overloaded` shedding, and atomic bundle hot-swap between
  batches;
* :mod:`repro.serve.http` -- a stdlib HTTP front end plus a socket-free
  JSONL request driver.

See ``docs/SERVING.md`` for the bundle format, scheduler knobs,
backpressure semantics, and the hot-swap contract.
"""

from .bundle import BUNDLE_SCHEMA_VERSION, BundleError, ModelBundle
from .http import (
    MatchHTTPServer, ProtocolError, handle_request, read_jsonl,
    serve_requests,
)
from .index import ServingIndex
from .server import (
    MatchCandidate, MatchResponse, MatchServer, Overloaded, PendingMatch,
    PendingResponse, ScoreResponse, ServerConfig,
)

__all__ = [
    "ModelBundle", "BundleError", "BUNDLE_SCHEMA_VERSION",
    "ServingIndex", "DenseCandidateIndex",
    "MatchServer", "ServerConfig", "Overloaded",
    "ScoreResponse", "MatchResponse", "MatchCandidate",
    "PendingResponse", "PendingMatch",
    "MatchHTTPServer", "serve_requests", "handle_request", "read_jsonl",
    "ProtocolError",
]


def __getattr__(name):  # PEP 562
    # resolved lazily because the dense path pulls in the bi-encoder
    # stack (repro.ann -> repro.baselines); a sparse-only server that
    # just loads a bundle must stay free of training-adjacent imports
    if name == "DenseCandidateIndex":
        from .dense import DenseCandidateIndex

        return DenseCandidateIndex
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
