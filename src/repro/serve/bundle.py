"""ModelBundle: one directory holding everything a server needs to score.

A bundle packages the fitted :class:`~repro.core.prompt_model.PromptModel`
-- weights, vocabulary, template spec, verbalizer label words, and the
tuned decision threshold -- so a serving process can reconstruct the exact
matcher without the training stack. Loading imports only model-side
modules (the lazy package inits in :mod:`repro`, :mod:`repro.core` and
:mod:`repro.lm` guarantee the trainer / self-training / pre-training
modules stay out of ``sys.modules``; ``tests/serve/test_bundle.py`` pins
this in a fresh subprocess).

Layout on disk (``save``/``load`` round-trip)::

    bundle_dir/
      weights.npz   # module state dict via autograd.serialization
      bundle.json   # schema version, lm config, template/verbalizer spec,
                    # decision threshold, vocabulary tokens

The loaded model reproduces the saved model's predictions bit for bit:
same vocabulary ids (special tokens are pinned to ids 0..6), same template
rendering, same weights, same threshold.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..autograd.serialization import load_checkpoint, save_checkpoint
from ..core.prompt_model import PromptModel
from ..core.templates import make_template
from ..core.verbalizer import Verbalizer
from ..lm.config import LMConfig
from ..lm.model import MiniLM
from ..text.tokenizer import Tokenizer
from ..text.vocab import SPECIAL_TOKENS, Vocabulary

PathLike = Union[str, Path]

#: bundle.json schema; bump when the manifest layout changes
BUNDLE_SCHEMA_VERSION = 1

_WEIGHTS_FILE = "weights.npz"
_MANIFEST_FILE = "bundle.json"


class BundleError(ValueError):
    """A bundle directory is missing, incomplete, or incompatible."""


def _template_spec(model: PromptModel) -> Dict[str, Any]:
    template = model.template
    layout = getattr(template, "layout", None)
    if layout is None:
        # hard templates encode their layout in the class name
        layout = "t1" if type(template).__name__.endswith("T1") else "t2"
    return {
        "name": layout,
        "continuous": template.num_prompt_tokens > 0,
        "max_len": template.max_len,
        "tokens_per_slot": getattr(template, "tokens_per_slot", 2),
    }


class ModelBundle:
    """A deployable matcher artifact: model + threshold + identity.

    ``version`` is a free-form deploy label (defaults to ``name``); the
    server's hot-swap machinery adds its own monotonically increasing
    version counter on top, so two bundles with the same label are still
    distinguishable in responses.
    """

    def __init__(self, model: PromptModel, threshold: Optional[float] = None,
                 name: str = "bundle", manifest: Optional[dict] = None) -> None:
        self.model = model
        self.threshold = threshold
        self.name = name
        self.manifest = manifest if manifest is not None else {}
        if threshold is not None:
            model.decision_threshold = float(threshold)

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: PromptModel,
                   threshold: Optional[float] = None,
                   name: str = "bundle") -> "ModelBundle":
        """Wrap a fitted model; the threshold defaults to its calibrated one."""
        if not isinstance(model, PromptModel):
            raise BundleError(
                f"bundles package PromptModel instances, got {type(model).__name__}")
        if threshold is None:
            threshold = getattr(model, "decision_threshold", None)
        return cls(model, threshold=threshold, name=name)

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Write the bundle directory; returns its path."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        model = self.model
        manifest = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "kind": "full",
            "name": self.name,
            "threshold": self.threshold,
            "lm_config": model.lm.config.to_dict(),
            "template": _template_spec(model),
            "verbalizer": {
                "positive": model.verbalizer.words[1],
                "negative": model.verbalizer.words[0],
            },
            # special tokens occupy fixed ids 0..6; persist only the tail
            "vocab": model.tokenizer.vocab.tokens()[len(SPECIAL_TOKENS):],
        }
        save_checkpoint(model, path / _WEIGHTS_FILE,
                        metadata={"schema_version": BUNDLE_SCHEMA_VERSION,
                                  "name": self.name})
        with open(path / _MANIFEST_FILE, "w") as f:
            json.dump(manifest, f)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ModelBundle":
        """Rebuild a bundle saved with :meth:`save` (eval mode, no grads)."""
        path = Path(path)
        manifest_path = path / _MANIFEST_FILE
        weights_path = path / _WEIGHTS_FILE
        if not manifest_path.exists():
            raise BundleError(f"{path} is not a model bundle "
                              f"(no {_MANIFEST_FILE})")
        with open(manifest_path) as f:
            manifest = json.load(f)
        # Forward-compat: diagnose schema/kind before complaining about
        # missing files -- a delta bundle has no weights.npz and the
        # actionable error is "wrong loader", not "incomplete bundle".
        schema = manifest.get("schema_version")
        kind = manifest.get("kind", "full")
        if schema != BUNDLE_SCHEMA_VERSION or kind != "full":
            hint = ("; this is a delta bundle -- load it with "
                    "repro.serve.DeltaBundle or serve it through a "
                    "TenantRegistry over its backbone bundle"
                    if kind == "delta" else "")
            raise BundleError(
                f"bundle schema {schema!r} (kind {kind!r}) is not supported "
                f"by ModelBundle.load, which supports kind 'full' at schema "
                f"{BUNDLE_SCHEMA_VERSION}{hint}")
        if not weights_path.exists():
            raise BundleError(f"{path} is not a model bundle "
                              f"(no {_WEIGHTS_FILE})")

        vocab = Vocabulary(manifest["vocab"])
        tokenizer = Tokenizer(vocab)
        lm = MiniLM(LMConfig.from_dict(manifest["lm_config"]))
        spec = manifest["template"]
        template = make_template(spec["name"], tokenizer,
                                 continuous=spec["continuous"],
                                 max_len=spec["max_len"],
                                 tokens_per_slot=spec["tokens_per_slot"])
        words = manifest["verbalizer"]
        verbalizer = Verbalizer(vocab, words["positive"], words["negative"])
        model = PromptModel(lm, tokenizer, template, verbalizer)
        load_checkpoint(model, weights_path)
        model.eval()
        threshold = manifest.get("threshold")
        bundle = cls(model, threshold=threshold,
                     name=manifest.get("name", "bundle"), manifest=manifest)
        return bundle

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"ModelBundle(name={self.name!r}, threshold={self.threshold}, "
                f"params={self.model.num_parameters()})")
