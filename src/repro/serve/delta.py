"""DeltaBundle: a KB-scale per-tenant artifact over one shared backbone.

A full :class:`~repro.serve.bundle.ModelBundle` ships every backbone
weight, so T tenants cost T MiniLM copies on disk and in memory. A delta
bundle ships only what parameter-efficient tuning actually moved -- the
trainable set left by :func:`repro.core.peft.apply_peft` (a soft-prompt
matrix, optionally bottleneck adapters), a tuned decision threshold, and
a **backbone fingerprint pin**: the sha1 of the backbone weights the
delta was tuned against. A :class:`~repro.serve.tenants.TenantRegistry`
refuses to bind a delta whose pin does not match the backbone it serves
-- a delta is meaningless (silently wrong, not loudly broken) on any
other weights.

Layout on disk::

    tenant_dir/
      delta.npz     # trainable parameters only, by qualified name
      bundle.json   # schema 2, kind "delta", peft kind, fingerprint pin,
                    # threshold, adapter bottleneck, parameter counts

``bundle.json`` deliberately reuses the full-bundle manifest filename so
pointing the plain ``ModelBundle`` loader at a tenant directory fails
with the found-vs-supported schema error instead of a confusing
missing-file one.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .bundle import BundleError, _MANIFEST_FILE

PathLike = Union[str, Path]

#: delta bundles bump the shared bundle.json schema: a kind-"delta"
#: manifest is schema 2, and the full-bundle loader must reject it
DELTA_SCHEMA_VERSION = 2

_DELTA_WEIGHTS_FILE = "delta.npz"


def backbone_fingerprint(lm) -> str:
    """sha1 over the backbone's parameter names, shapes, dtypes, bytes.

    Adapter parameters are excluded (by the ``adapter`` name component the
    PEFT layer reserves), so a backbone's fingerprint is stable whether or
    not a tenant's adapters happen to be bound at call time.
    """
    digest = hashlib.sha1()
    for name, param in sorted(lm.named_parameters()):
        if "adapter" in name:
            continue
        data = np.ascontiguousarray(param.data)
        digest.update(name.encode())
        digest.update(str(data.shape).encode())
        digest.update(str(data.dtype).encode())
        digest.update(data.tobytes())
    return digest.hexdigest()


class DeltaBundle:
    """Per-tenant delta: trainable weights + threshold + fingerprint pin."""

    def __init__(self, state: Dict[str, np.ndarray], peft: str,
                 fingerprint: str, threshold: Optional[float] = None,
                 name: str = "tenant", bottleneck: Optional[int] = None,
                 manifest: Optional[dict] = None) -> None:
        self.state = state
        self.peft = peft
        self.fingerprint = fingerprint
        self.threshold = threshold
        self.name = name
        self.bottleneck = bottleneck
        self.manifest = manifest if manifest is not None else {}

    # ------------------------------------------------------------------
    @property
    def param_count(self) -> int:
        return int(sum(v.size for v in self.state.values()))

    def nbytes(self) -> int:
        return int(sum(v.nbytes for v in self.state.values()))

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, name: str = "tenant",
                   threshold: Optional[float] = None) -> "DeltaBundle":
        """Extract the delta a PEFT-tuned model carries.

        ``model`` must have been through :func:`repro.core.peft.apply_peft`
        (equivalently: have a frozen backbone with a non-empty trainable
        set) -- an all-trainable model would ship the whole backbone and
        defeat the format.
        """
        from ..core.peft import peft_kind, peft_state

        state = peft_state(model)
        if not state:
            raise BundleError("model has no trainable parameters; "
                              "apply_peft before extracting a delta")
        total = model.num_parameters()
        trainable = sum(v.size for v in state.values())
        if trainable >= total:
            raise BundleError(
                "every parameter is trainable; a delta bundle only makes "
                "sense over a frozen backbone (apply_peft first)")
        kind = peft_kind(model) or "soft_prompt"
        bottleneck = None
        if kind == "adapter":
            from ..core.peft import iter_adapters

            adapters = iter_adapters(model.lm)
            bottleneck = adapters[0].bottleneck if adapters else None
        if threshold is None:
            threshold = getattr(model, "decision_threshold", None)
        return cls(state, peft=kind,
                   fingerprint=backbone_fingerprint(model.lm),
                   threshold=threshold, name=name, bottleneck=bottleneck)

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema_version": DELTA_SCHEMA_VERSION,
            "kind": "delta",
            "name": self.name,
            "peft": self.peft,
            "backbone_fingerprint": self.fingerprint,
            "threshold": self.threshold,
            "adapter_bottleneck": self.bottleneck,
            "param_count": self.param_count,
        }
        # npz member names may not contain path separators on some numpy
        # versions; qualified parameter names only use dots, so they are
        # safe as-is
        buffer = io.BytesIO()
        np.savez(buffer, **self.state)
        (path / _DELTA_WEIGHTS_FILE).write_bytes(buffer.getvalue())
        with open(path / _MANIFEST_FILE, "w") as f:
            json.dump(manifest, f)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "DeltaBundle":
        path = Path(path)
        manifest_path = path / _MANIFEST_FILE
        weights_path = path / _DELTA_WEIGHTS_FILE
        if not manifest_path.exists():
            raise BundleError(f"{path} is not a delta bundle "
                              f"(no {_MANIFEST_FILE})")
        with open(manifest_path) as f:
            manifest = json.load(f)
        schema = manifest.get("schema_version")
        kind = manifest.get("kind", "full")
        if schema != DELTA_SCHEMA_VERSION or kind != "delta":
            hint = ("; this is a full bundle -- load it with "
                    "repro.serve.ModelBundle" if kind == "full" else "")
            raise BundleError(
                f"bundle schema {schema!r} (kind {kind!r}) is not supported "
                f"by DeltaBundle.load, which supports kind 'delta' at "
                f"schema {DELTA_SCHEMA_VERSION}{hint}")
        if not weights_path.exists():
            raise BundleError(f"{path} is not a delta bundle "
                              f"(no {_DELTA_WEIGHTS_FILE})")
        with np.load(weights_path) as archive:
            state = {key: archive[key].copy() for key in archive.files}
        return cls(state,
                   peft=manifest.get("peft", "soft_prompt"),
                   fingerprint=manifest.get("backbone_fingerprint", ""),
                   threshold=manifest.get("threshold"),
                   name=manifest.get("name", path.name),
                   bottleneck=manifest.get("adapter_bottleneck"),
                   manifest=manifest)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"DeltaBundle(name={self.name!r}, peft={self.peft!r}, "
                f"params={self.param_count}, pin={self.fingerprint[:10]})")
