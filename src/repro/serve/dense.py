"""DenseCandidateIndex: the online counterpart of the dense blocker.

Mirrors the :class:`~repro.serve.index.ServingIndex` catalog protocol
(``add`` / ``add_many`` / ``remove`` / ``candidates``) over a
:class:`repro.ann.AnnIndex`, so :class:`~repro.serve.server.MatchServer`
can route match queries through either candidate generator at runtime
(the ``/admin/candidates`` route flips the mode).

Semantics intentionally match the token index:

* re-adding an id replaces the old record atomically (the previous
  vector is unlinked before the new one is routed);
* ``candidates`` returns top-k ``(record, score)`` ordered by the
  deterministic ``(-score, record_id)`` rule -- here the score is the
  quantized cosine similarity instead of the overlap coefficient;
* locking is scoped like the token index after its snapshot rework: the
  record-map lock guards only dictionary bookkeeping, embedding runs
  outside it (it is the expensive, pure part), and the ANN index snapshots
  probed rows under its own lock before scoring.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..ann.encoder import RecordEncoder
from ..ann.index import AnnIndex, make_index
from ..data.records import EntityRecord
from ..obs import get_telemetry


class DenseCandidateIndex:
    """Embedding-based candidate catalog with incremental maintenance."""

    def __init__(self, encoder: RecordEncoder,
                 index: Optional[AnnIndex] = None, kind: str = "ivf",
                 min_score: Optional[float] = None, default_k: int = 5,
                 seed: int = 0, **index_kwargs) -> None:
        if default_k < 1:
            raise ValueError("default_k must be >= 1")
        self.encoder = encoder
        self.index = index if index is not None else \
            make_index(kind, encoder.dim, seed=seed, **index_kwargs)
        self.min_score = min_score
        self.default_k = default_k
        self._lock = threading.RLock()
        self._records: Dict[str, EntityRecord] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._records

    def get(self, record_id: str) -> Optional[EntityRecord]:
        with self._lock:
            return self._records.get(record_id)

    # ------------------------------------------------------------------
    def add(self, record: EntityRecord) -> bool:
        """Insert ``record``; ``False`` when it replaced an earlier record
        with the same id.  The embedding is computed outside the lock."""
        return self.add_vector(record, self.encoder.encode_record(record))

    def add_vector(self, record: EntityRecord, vector) -> bool:
        """Insert a record whose embedding the caller already holds (the
        sharded index embeds a batch once, then routes vectors here)."""
        with self._lock:
            fresh = record.record_id not in self._records
            self._records[record.record_id] = record
            self.index.add(record.record_id, vector)
            size = len(self._records)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("serve.dense_index.size").set(size)
        return fresh

    def add_many(self, records) -> int:
        """Bulk insert; returns the number of *new* ids.

        Embeds the whole batch in one cache-aware sweep (bucketed
        forwards) before touching the lock -- the path catalog loads and
        ``/admin/catalog`` bulk adds take.
        """
        records = list(records)
        if not records:
            return 0
        vectors = self.encoder.encode_records(records)
        fresh = 0
        with self._lock:
            for i, record in enumerate(records):
                if record.record_id not in self._records:
                    fresh += 1
                self._records[record.record_id] = record
                self.index.add(record.record_id, vectors[i])
            size = len(self._records)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("serve.dense_index.size").set(size)
        return fresh

    def remove(self, record_id: str) -> bool:
        with self._lock:
            if record_id not in self._records:
                return False
            del self._records[record_id]
            self.index.remove(record_id)
            size = len(self._records)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("serve.dense_index.size").set(size)
        return True

    def train(self) -> "DenseCandidateIndex":
        """(Re)train a trainable index (IVF) on the current catalog."""
        train = getattr(self.index, "train", None)
        if train is None:
            return self
        with self._lock:
            records = list(self._records.values())
        if records:
            train(self.encoder.encode_records(records))
        return self

    # ------------------------------------------------------------------
    def candidates(self, record: EntityRecord,
                   k: Optional[int] = None
                   ) -> List[Tuple[EntityRecord, float]]:
        """Top-k ``(record, cosine)`` candidates for a query record."""
        k = self.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.candidates_from_vector(self.encoder.encode_record(record),
                                           k)

    def candidates_from_vector(self, query, k: int
                               ) -> List[Tuple[EntityRecord, float]]:
        """:meth:`candidates` for an already-embedded query vector."""
        if k < 1:
            raise ValueError("k must be >= 1")
        found = self.index.search(query, k)
        if self.min_score is not None:
            found = [(rid, score) for rid, score in found
                     if score >= self.min_score]
        with self._lock:
            out = []
            for rid, score in found:
                kept = self._records.get(rid)
                if kept is not None:      # removed between probe and here
                    out.append((kept, score))
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {"records": len(self._records),
                    "ann": self.index.stats()}
