"""Wire front ends for :class:`~repro.serve.server.MatchServer`.

Two transports over one JSON protocol:

* :func:`serve_requests` -- offline/batch driver: an iterable of request
  dicts (e.g. parsed from a JSONL file) in, response dicts out, no
  sockets. The CLI's ``repro serve --requests`` mode and the tests use
  this; it submits a *window* of requests ahead of collection so the
  scheduler forms real micro-batches from the stream, through the exact
  same admission/batching path as the HTTP transport.
* :class:`MatchHTTPServer` -- a stdlib ``ThreadingHTTPServer`` exposing

  - ``POST /score``  ``{"left": <record>, "right": <record>}`` -- plus an
    optional ``"tenant": "<id>"`` routing to that tenant's delta when the
    server carries a :class:`~repro.serve.tenants.TenantRegistry`
  - ``POST /match``  ``{"record": <record>, "k": 5}`` (same optional
    ``tenant`` field)
  - ``POST /clk/match``  ``{"id": "<query id>", "clk": "<base64 filter
    bytes>", "k": 5}`` -- privacy-preserving Dice top-k over the CLK
    catalog; request and response carry only ids, filter bytes, and
    scores (see ``docs/PRIVACY.md``)
  - ``POST /admin/swap``  ``{"bundle": "<bundle dir>"}``
  - ``POST /admin/catalog``  ``{"add": [<record>...], "remove": [<id>...]}``
    (applied to the sparse token index *and* the dense ANN index when one
    is configured, so the two catalogs stay hot-add consistent)
  - ``POST /admin/clk-catalog``  ``{"add": [{"id", "clk": <base64>}...],
    "remove": [<id>...]}`` -- the cross-party ingest path: pre-encoded
    filters only, never raw attribute values
  - ``POST /admin/candidates``  ``{"mode": "sparse" | "dense"}`` -- flip
    the candidate generator match queries use (pool-wide when serving a
    :class:`~repro.serve.pool.ServingPool`)
  - ``GET /stats`` and ``GET /healthz`` -- ``/healthz`` is ungated and
    cheap (bundle version, catalog size, replica liveness/outstanding,
    tenant occupancy; no scoring, no scatter), sized for LB probes
  - ``GET /metrics`` -- the observability snapshot as JSON (gated exactly
    like ``/admin/*``: metric names and latency distributions are
    operational detail, not public surface). Against a
    :class:`~repro.serve.pool.ServingPool` this is the *pool-wide* merged
    view (router + every replica registry) with per-source snapshots
  - ``GET /slo`` -- per-tenant SLO compliance, drift-monitor state and
    request-trace aggregates (gated like ``/admin/*``)

Both transports are duck-typed over the server argument: a
:class:`~repro.serve.server.MatchServer` and a
:class:`~repro.serve.pool.ServingPool` expose the same submit/score/admin
surface, so ``repro serve --replicas N`` swaps the pool in without
touching this module's request path.

Records use the dataset-bundle JSON shape (``{"id", "kind", "values"}``).
A shed request answers ``503 {"status": "overloaded"}`` -- explicit
backpressure, never silent buffering.

The ``/admin/*`` routes mutate the server (model swap from a filesystem
path, catalog edits), so they are gated: with an ``admin_token``
configured, callers must present it in the ``X-Admin-Token`` header;
without one, only loopback clients are accepted -- a server bound to a
non-local interface answers ``403`` rather than exposing model
replacement to the network.
"""

from __future__ import annotations

import base64
import hmac
import json
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..data.dataset import CandidatePair
from ..data.io import _record_from_dict, _record_to_dict
from ..obs import get_telemetry
from ..privacy.encoder import clk_from_bytes
from .bundle import ModelBundle
from .server import (
    ClkMatchResponse, MatchResponse, MatchServer, Overloaded, ScoreResponse,
)


class ProtocolError(ValueError):
    """A request dict is malformed (unknown op, missing fields)."""


# ----------------------------------------------------------------------
# JSON codec
# ----------------------------------------------------------------------
def score_response_to_dict(response: ScoreResponse) -> dict:
    body = {
        "status": "ok",
        "op": "score",
        "probs": [float(p) for p in response.probs],
        "prediction": response.prediction,
        "match_probability": response.match_probability,
        "model_version": response.model_version,
        "bundle": response.bundle_name,
        "batch_id": response.batch_id,
        "batch_size": response.batch_size,
        "replica": response.replica,
        "tenant": response.tenant,
    }
    if response.trace is not None:  # observability metadata, --trace only
        body["trace"] = response.trace
    return body


def match_response_to_dict(response: MatchResponse) -> dict:
    return {
        "status": "ok",
        "op": "match",
        "record_id": response.record_id,
        "candidates": [{
            "record": _record_to_dict(candidate.record),
            "block_score": candidate.block_score,
            "probability": candidate.probability,
            "is_match": candidate.is_match,
            "model_version": candidate.response.model_version,
        } for candidate in response.candidates],
    }


def clk_match_response_to_dict(response: ClkMatchResponse) -> dict:
    return {
        "status": "ok",
        "op": "clk_match",
        "record_id": response.record_id,
        "threshold": response.threshold,
        "candidates": [{
            "id": candidate.record_id,
            "score": candidate.score,
            "is_match": candidate.is_match,
        } for candidate in response.candidates],
    }


def _clk_from_request(request: dict):
    """Decode the base64 ``clk`` field of a request dict to packed uint64."""
    encoded = request.get("clk")
    if not isinstance(encoded, str) or not encoded:
        raise ProtocolError("clk_match request needs a base64 clk field")
    return clk_from_bytes(base64.b64decode(encoded))


def overloaded_to_dict(error: Overloaded) -> dict:
    return {"status": "overloaded", "detail": str(error),
            "queue_depth": error.queue_depth}


def handle_request(server: MatchServer, request: dict,
                   timeout: Optional[float] = 30.0) -> dict:
    """Dispatch one request dict; returns a response dict (including the
    explicit ``overloaded`` response when admission sheds)."""
    op = request.get("op", "score")
    tenant = request.get("tenant")
    try:
        if op == "score":
            try:
                pair = CandidatePair(_record_from_dict(request["left"]),
                                     _record_from_dict(request["right"]))
            except KeyError as missing:
                raise ProtocolError(f"score request needs {missing} record")
            return score_response_to_dict(
                server.score(pair, timeout=timeout, tenant=tenant))
        if op == "match":
            if "record" not in request:
                raise ProtocolError("match request needs a record")
            record = _record_from_dict(request["record"])
            k = request.get("k")
            return match_response_to_dict(
                server.match(record, k=k, timeout=timeout, tenant=tenant))
        if op == "clk_match":
            # synchronous: a popcount kernel answers without touching the
            # model queue, so there is no admission to shed
            clk = _clk_from_request(request)
            return clk_match_response_to_dict(
                server.clk_match(request.get("id", ""), clk,
                                 k=request.get("k")))
        raise ProtocolError(f"unknown op {op!r}")
    except Overloaded as error:
        return overloaded_to_dict(error)


def serve_requests(server: MatchServer, requests: Iterable[dict],
                   timeout: Optional[float] = 30.0,
                   window: Optional[int] = None) -> Iterator[dict]:
    """Pipelined batch driver: yield one response dict per request dict,
    in request order.

    Up to ``window`` requests (default: the server's ``max_batch_pairs``)
    are submitted before the oldest response is collected, so the
    scheduler can form real micro-batches from the stream instead of
    scoring one request at a time. Admission that sheds is retried after
    freeing queue space, preserving the mode's serve-everything
    semantics; only a stopped server yields ``overloaded`` responses.
    """
    if window is None:
        # a MatchServer's config carries max_batch_pairs directly; a
        # ServingPool nests it under config.server
        config = server.config
        window = getattr(config, "max_batch_pairs", None)
        if window is None:
            window = config.server.max_batch_pairs
    window = max(1, int(window))
    pending: Deque[Tuple[str, object]] = deque()

    def collect() -> dict:
        kind, item = pending.popleft()
        if not server.is_running:
            while not item.done():
                if not server.process_once():
                    break
        try:
            if kind == "score":
                return score_response_to_dict(item.result(timeout))
            return match_response_to_dict(item.result(timeout))
        except Overloaded as error:  # failed by stop(drain=False)
            return overloaded_to_dict(error)

    for request in requests:
        op = request.get("op", "score")
        tenant = request.get("tenant")
        if op == "score":
            try:
                pair = CandidatePair(_record_from_dict(request["left"]),
                                     _record_from_dict(request["right"]))
            except KeyError as missing:
                raise ProtocolError(f"score request needs {missing} record")

            def submit(p=pair, t=tenant):
                return "score", server.submit(p, tenant=t)
        elif op == "match":
            if "record" not in request:
                raise ProtocolError("match request needs a record")
            record = _record_from_dict(request["record"])
            k = request.get("k")

            def submit(r=record, k=k, t=tenant):
                return "match", server.submit_match(r, k=k, tenant=t)
        elif op == "clk_match":
            # answered inline (no queue); drain pending first so the
            # one-response-per-request order is preserved
            while pending:
                yield collect()
            yield handle_request(server, request, timeout=timeout)
            continue
        else:
            raise ProtocolError(f"unknown op {op!r}")
        while True:
            try:
                pending.append(submit())
                break
            except Overloaded as error:
                if pending:
                    yield collect()
                elif server.is_running:
                    time.sleep(0.0005)
                elif not server.process_once():
                    # nothing of ours queued and nothing to drain: the
                    # server is stopped (or another client owns the queue)
                    yield overloaded_to_dict(error)
                    break
        while len(pending) >= window:
            yield collect()
    while pending:
        yield collect()


def read_jsonl(path) -> List[dict]:
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
#: loopback peer addresses allowed to use /admin/* without a token
_LOOPBACK = ("127.0.0.1", "::1", "::ffff:127.0.0.1")


class _Handler(BaseHTTPRequestHandler):
    # set by MatchHTTPServer
    match_server: MatchServer = None
    request_timeout: float = 30.0
    admin_token: Optional[str] = None

    def _admin_allowed(self) -> bool:
        """Token when configured; otherwise loopback clients only."""
        if self.admin_token is not None:
            supplied = self.headers.get("X-Admin-Token", "")
            return hmac.compare_digest(supplied, self.admin_token)
        return self.client_address[0] in _LOOPBACK

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        if self.path == "/healthz":
            # ungated by design: a load balancer probes this; the payload
            # is liveness topology (versions, counts), not model surface
            payload = {"status": "ok",
                       "model_version": self.match_server.version}
            health = getattr(self.match_server, "health", None)
            if callable(health):
                payload.update(health())
            self._reply(200, payload)
        elif self.path == "/stats":
            self._reply(200, self.match_server.stats())
        elif self.path == "/metrics":
            if not self._admin_allowed():
                self._reply(403, {
                    "status": "error",
                    "detail": "metrics denied: present X-Admin-Token, or "
                              "connect from loopback when no token is set"})
                return
            telemetry = get_telemetry()
            snapshot = getattr(self.match_server, "metrics_snapshot", None)
            if callable(snapshot):
                # pool-aware path: router + replica registries, merged
                view = snapshot()
                self._reply(200, {"status": "ok",
                                  "enabled": telemetry.enabled,
                                  "metrics": view["merged"],
                                  "sources": view["sources"]})
            else:
                self._reply(200, {"status": "ok",
                                  "enabled": telemetry.enabled,
                                  "metrics": telemetry.metrics.snapshot()})
        elif self.path == "/slo":
            if not self._admin_allowed():
                self._reply(403, {
                    "status": "error",
                    "detail": "slo denied: present X-Admin-Token, or "
                              "connect from loopback when no token is set"})
                return
            snapshot = getattr(self.match_server, "slo_snapshot", None)
            if not callable(snapshot):
                self._reply(404, {"status": "error",
                                  "detail": "server has no SLO tracking"})
                return
            self._reply(200, {"status": "ok", **snapshot()})
        else:
            self._reply(404, {"status": "error", "detail": "unknown path"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        try:
            payload = self._read_json()
        except (ValueError, UnicodeDecodeError) as error:
            self._reply(400, {"status": "error", "detail": str(error)})
            return
        if self.path.startswith("/admin/") and not self._admin_allowed():
            self._reply(403, {
                "status": "error",
                "detail": "admin API denied: present X-Admin-Token, or "
                          "connect from loopback when no token is set"})
            return
        try:
            if self.path == "/score":
                response = handle_request(
                    self.match_server, {**payload, "op": "score"},
                    timeout=self.request_timeout)
            elif self.path == "/match":
                response = handle_request(
                    self.match_server, {**payload, "op": "match"},
                    timeout=self.request_timeout)
            elif self.path == "/clk/match":
                response = handle_request(
                    self.match_server, {**payload, "op": "clk_match"},
                    timeout=self.request_timeout)
            elif self.path == "/admin/swap":
                bundle = ModelBundle.load(payload["bundle"])
                version = self.match_server.swap(bundle)
                response = {"status": "ok", "model_version": version,
                            "bundle": bundle.name}
            elif self.path == "/admin/catalog":
                added = self.match_server.catalog_add(
                    _record_from_dict(r) for r in payload.get("add", []))
                removed = self.match_server.catalog_remove(
                    payload.get("remove", []))
                response = {"status": "ok", "added": added,
                            "removed": removed,
                            "size": self.match_server.catalog_size()}
            elif self.path == "/admin/clk-catalog":
                entries = [(str(entry["id"]),
                            clk_from_bytes(base64.b64decode(entry["clk"])))
                           for entry in payload.get("add", [])]
                added = self.match_server.catalog_add_clk(entries) \
                    if entries else 0
                removed = self.match_server.catalog_remove(
                    payload.get("remove", []))
                response = {"status": "ok", "added": added,
                            "removed": removed,
                            "size": self.match_server.clk_catalog_size()}
            elif self.path == "/admin/candidates":
                mode = self.match_server.set_candidate_mode(
                    payload.get("mode", ""))
                response = {"status": "ok", "candidate_mode": mode}
            else:
                self._reply(404, {"status": "error", "detail": "unknown path"})
                return
        except (ProtocolError, KeyError, ValueError) as error:
            self._reply(400, {"status": "error", "detail": str(error)})
            return
        if response.get("status") == "overloaded":
            self._reply(503, response)
        else:
            self._reply(200, response)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging goes through repro.obs, not stderr


class MatchHTTPServer:
    """HTTP wrapper owning a :class:`MatchServer` scheduler thread.

    ``admin_token`` gates the mutating ``/admin/*`` routes: when set,
    every admin call must carry it in ``X-Admin-Token``; when ``None``
    (the default), admin calls are only accepted from loopback peers, so
    binding a non-local ``host`` never exposes model swap or catalog
    edits without an explicit token.
    """

    def __init__(self, server: MatchServer, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 30.0,
                 admin_token: Optional[str] = None) -> None:
        self.match_server = server
        handler = type("BoundHandler", (_Handler,), {
            "match_server": server, "request_timeout": request_timeout,
            "admin_token": admin_token})
        self.httpd = ThreadingHTTPServer((host, port), handler)

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Blocking serve loop (the CLI's foreground mode)."""
        self.match_server.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.shutdown()

    def start_background(self) -> "MatchHTTPServer":
        """Run the accept loop on a daemon thread (tests)."""
        import threading

        self.match_server.start()
        thread = threading.Thread(target=self.httpd.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.match_server.stop()

    def __enter__(self) -> "MatchHTTPServer":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
