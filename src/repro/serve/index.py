"""ServingIndex: an incrementally maintained catalog for query-shaped EM.

The offline :class:`~repro.data.blocking.OverlapBlocker` builds its
inverted index from scratch for one ``left x right`` sweep. An online
matching service instead holds a long-lived catalog that records join and
leave while queries arrive, so this index supports:

* ``add`` / ``remove`` of individual records (re-adding an id replaces the
  old record atomically -- tokens of the previous version are unlinked);
* ``candidates(record, k)`` -- top-k catalog records by overlap
  coefficient, the same score the offline blocker thresholds on, with a
  deterministic ``(-score, record_id)`` ordering so equal scores never
  reorder between calls.

Token semantics are shared with the blocker through
:func:`repro.data.blocking.record_tokens`, which keeps offline candidate
generation and online retrieval consistent.

Mutations are guarded by an internal lock; ``candidates`` holds that lock
only long enough to snapshot the postings a query touches (plus token
sizes and record refs) and scores *outside* it, so the
:class:`~repro.serve.server.MatchServer` can mutate the catalog from
admin calls while its scheduler thread resolves ``match`` requests
without queries serializing every mutator behind the scoring loop.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from ..data.blocking import record_tokens
from ..data.records import EntityRecord
from ..obs import get_telemetry


class ServingIndex:
    """Inverted token index over a mutable catalog of entity records."""

    def __init__(self, threshold: float = 0.0, min_shared_tokens: int = 1,
                 default_k: int = 5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if min_shared_tokens < 1:
            raise ValueError("min_shared_tokens must be >= 1")
        if default_k < 1:
            raise ValueError("default_k must be >= 1")
        self.threshold = threshold
        self.min_shared_tokens = min_shared_tokens
        self.default_k = default_k
        self._lock = threading.RLock()
        self._records: Dict[str, EntityRecord] = {}
        self._tokens: Dict[str, Set[str]] = {}
        self._postings: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._records

    def get(self, record_id: str) -> Optional[EntityRecord]:
        with self._lock:
            return self._records.get(record_id)

    # ------------------------------------------------------------------
    def add(self, record: EntityRecord) -> bool:
        """Insert ``record``; returns False when it *replaced* an earlier
        record with the same id (the previous version is fully unlinked)."""
        tokens = record_tokens(record)
        with self._lock:
            fresh = record.record_id not in self._records
            if not fresh:
                self._unlink(record.record_id)
            self._records[record.record_id] = record
            self._tokens[record.record_id] = tokens
            for token in tokens:
                self._postings.setdefault(token, set()).add(record.record_id)
            size = len(self._records)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("serve.index.size").set(size)
        return fresh

    def add_many(self, records) -> int:
        """Bulk insert; returns the number of *new* ids."""
        return sum(1 for record in records if self.add(record))

    def remove(self, record_id: str) -> bool:
        """Drop a record by id; returns False when the id is unknown."""
        with self._lock:
            if record_id not in self._records:
                return False
            self._unlink(record_id)
            size = len(self._records)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("serve.index.size").set(size)
        return True

    def _unlink(self, record_id: str) -> None:
        # caller holds the lock
        for token in self._tokens.pop(record_id, ()):
            posting = self._postings.get(token)
            if posting is not None:
                posting.discard(record_id)
                if not posting:
                    del self._postings[token]
        del self._records[record_id]

    # ------------------------------------------------------------------
    def candidates(self, record: EntityRecord,
                   k: Optional[int] = None
                   ) -> List[Tuple[EntityRecord, float]]:
        """Top-k ``(record, overlap_coefficient)`` candidates for a query.

        A query with no tokens, or no shared tokens with any catalog
        record, returns an empty list rather than scoring everything at
        zero -- the service treats "nothing overlaps" as "no candidates".
        """
        k = self.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        query_tokens = record_tokens(record)
        if not query_tokens:
            return []
        # Snapshot under the lock, score outside it: the scoring loop is
        # the expensive part and used to serialize every mutator behind
        # every query.  One lock acquisition copies the postings touched
        # by the query plus the matching records' token sizes and record
        # refs, so the scored view is internally consistent (no torn
        # reads) while adds/removes proceed concurrently.
        with self._lock:
            postings = [tuple(self._postings.get(token, ()))
                        for token in query_tokens]
            sizes: Dict[str, int] = {}
            records: Dict[str, EntityRecord] = {}
            for posting in postings:
                for rid in posting:
                    if rid not in sizes:
                        sizes[rid] = len(self._tokens[rid])
                        records[rid] = self._records[rid]
        counts: Dict[str, int] = {}
        for posting in postings:
            for rid in posting:
                counts[rid] = counts.get(rid, 0) + 1
        scored: List[Tuple[float, str]] = []
        for rid, shared in counts.items():
            if shared < self.min_shared_tokens:
                continue
            smaller = min(len(query_tokens), sizes[rid])
            score = shared / smaller if smaller else 0.0
            if score >= self.threshold:
                scored.append((score, rid))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [(records[rid], score) for score, rid in scored[:k]]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "records": len(self._records),
                "tokens": len(self._postings),
                "postings": sum(len(p) for p in self._postings.values()),
            }
