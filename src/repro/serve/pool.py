"""ServingPool: replicated, sharded online matching.

One :class:`~repro.serve.server.MatchServer` is a single process with one
model copy and one catalog.  The pool keeps that server *as the replica
unit* and adds the multi-worker topology around it:

* **N replica workers** -- forked processes, each running the unmodified
  ``MatchServer`` scheduler loop over the same inference engine.  Model
  weights are **not** copied per replica: every replica maps the
  published :class:`~repro.serve.bundle.ModelBundle` weights zero-copy
  from the :class:`~repro.serve.weights.SharedBundleWeights` store
  (double-buffered shm slots built on
  :class:`repro.parallel.shm.SharedArray`), and adopts the newest version
  at its batch boundary -- so :meth:`ServingPool.swap` flips **all**
  replicas atomically via one version bump, and no batch ever mixes two
  versions (the store's overwrite guard keeps a slot intact until every
  live replica has moved past it).

* **A front router** -- per-replica bounded queues with load-aware
  dispatch: a request goes to the live replica with the fewest
  outstanding pairs, ties broken by the smaller outstanding token
  estimate (a cheap whitespace proxy for encoding length -- the router
  deliberately does not tokenize), then by replica index.  Admission is
  explicit: when the pool-wide queue bound or every per-replica queue is
  full, ``submit`` raises :class:`~repro.serve.server.Overloaded` -- the
  same shed-don't-buffer contract as the single server.

* **Fault containment** -- a replica that dies mid-flight is detected by
  its pipe EOF; its in-flight requests are *re-dispatched* to surviving
  replicas (scoring is pure, so re-execution is safe and an accepted
  request is never lost), and the replica is respawned: the fresh fork
  inherits the current catalog journal and adopts the current weight
  version, so the pool heals without draining.

* **A sharded candidate layer** -- the catalog is hash-partitioned by
  ``record_id`` (:func:`~repro.serve.shard.shard_of`); shard ``s`` lives
  inside replica ``s % N``, so postings and ANN rows scale out with the
  pool instead of piling into one process.  A match query scatters to
  every live replica (each answers for its own shards, dense queries are
  embedded once in the router), and the router merges the partial top-k
  lists in the deterministic ``(-score, record_id)`` order
  (:func:`~repro.serve.shard.merge_topk`).  ``catalog_add`` /
  ``catalog_remove`` route to the owning shard's replica; the router
  additionally keeps a per-shard **journal** of raw records -- the
  respawn source -- while the index structures themselves (postings,
  int8 ANN rows) exist only in the owning replica.

Where fork (or real shared memory) is unavailable the pool degrades to a
**serial fallback**: one in-process ``MatchServer`` over the same
:class:`~repro.serve.shard.ShardedServingIndex` /
:class:`~repro.serve.shard.ShardedDenseCandidateIndex` structures, same
API, zero processes -- mirroring :mod:`repro.parallel.pool`.

Everything is observable through :mod:`repro.obs`: per-replica queue
depth gauges (``pool.replica<i>.outstanding``), dispatch latency
(``pool.dispatch_seconds``), the swap-version gauge
(``pool.swap_version``), and counters for sheds, deaths, respawns and
re-dispatches.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing as mp
import queue
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import CandidatePair
from ..data.records import EntityRecord
from ..obs import get_telemetry, merge_snapshots
from ..obs.serving import (
    DriftMonitor, RequestTracer, SloTracker, TraceContext, stitch_trace,
)
from ..parallel.pool import fork_available
from .bundle import ModelBundle
from .index import ServingIndex
from .server import (
    MatchServer, Overloaded, PendingMatch, PendingResponse, ScoreResponse,
    ServerConfig,
)
from .shard import ShardedServingIndex, merge_topk, shard_of
from .weights import SharedBundleWeights


@dataclass
class PoolConfig:
    """Topology and routing knobs of a :class:`ServingPool`."""

    #: replica worker processes (each runs one MatchServer scheduler)
    replicas: int = 2
    #: candidate-catalog shards; shard s is owned by replica s % replicas.
    #: None -> one shard per replica
    shards: Optional[int] = None
    #: per-replica scheduler knobs (the MatchServer config inside each
    #: worker); ``max_queue`` doubles as the pool-wide admission bound
    server: ServerConfig = field(default_factory=ServerConfig)
    #: per-replica bounded queue: dispatch never puts more than this many
    #: outstanding pairs on one replica (re-dispatch after a death may)
    max_outstanding: int = 64
    #: scatter/gather wait for candidates / stats / acks
    gather_timeout_s: float = 10.0
    #: how long a publish may wait for a slow replica to vacate a slot
    guard_timeout_s: float = 5.0
    #: respawn dead replicas (the fault-containment loop)
    respawn: bool = True
    #: stop(drain=True) waits this long for in-flight work to finish
    drain_timeout_s: float = 30.0
    #: directory of per-tenant DeltaBundles; every replica builds its own
    #: TenantRegistry over it (deltas are KBs -- loading them per replica
    #: is cheap; only the backbone weights are shared via shm)
    tenants_dir: Optional[str] = None
    #: per-replica LRU capacity for resident tenant deltas
    tenant_capacity: int = 64
    #: how often (seconds) a replica pushes its metrics snapshot to the
    #: router when telemetry is enabled; <= 0 disables periodic pushes
    #: (the router can still pull, and the stop ack carries the final
    #: snapshot either way)
    metrics_interval_s: float = 2.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.shards is None:
            self.shards = self.replicas
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")


def _approx_tokens(pair: CandidatePair) -> int:
    """Cheap token-count proxy used for token-budget-aware dispatch.

    Whitespace words of both records' values: roughly proportional to the
    encoding length without importing the tokenizer into the router's hot
    path.  Only relative magnitudes matter (it breaks ties between
    equally-loaded replicas), so a proxy is enough.
    """
    count = 0
    for record in (pair.left, pair.right):
        for value in record.values.values():
            count += len(str(value).split())
    return max(count, 1)


class _ReplyGather:
    """Collects one control reply per wanted replica, with drop-on-death."""

    __slots__ = ("want", "replies", "event")

    def __init__(self, want) -> None:
        self.want = set(want)
        self.replies: Dict[int, object] = {}
        self.event = threading.Event()
        self._check()

    def _check(self) -> None:
        if self.want <= set(self.replies):
            self.event.set()

    def reply(self, replica: int, payload) -> None:
        self.replies[replica] = payload
        self._check()

    def drop(self, replica: int) -> None:
        self.want.discard(replica)
        self._check()

    def wait(self, timeout: float) -> Dict[int, object]:
        self.event.wait(timeout)
        return self.replies


class _Inflight:
    __slots__ = ("pending", "pair", "replica", "tokens", "arrived", "tenant",
                 "trace")

    def __init__(self, pending: PendingResponse, pair: CandidatePair,
                 replica: int, tokens: int, arrived: float,
                 tenant: Optional[str] = None,
                 trace: Optional[TraceContext] = None) -> None:
        self.pending = pending
        self.pair = pair
        self.replica = replica
        self.tokens = tokens
        self.arrived = arrived
        self.tenant = tenant
        self.trace = trace


class _Replica:
    """Router-side handle of one worker process."""

    __slots__ = ("index", "proc", "conn", "send_lock", "outstanding_pairs",
                 "outstanding_tokens", "live")

    def __init__(self, index: int, proc, conn) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        self.outstanding_pairs = 0
        self.outstanding_tokens = 0
        self.live = True

    def send(self, message) -> None:
        with self.send_lock:
            self.conn.send(message)


class ReplicaMatchServer(MatchServer):
    """A MatchServer whose model/version snapshot comes from the shared
    weight store instead of a local ``swap()``.

    The scheduler loop, batching, shedding and failure containment are
    inherited unchanged; only ``_snapshot`` -- the per-batch boundary --
    is redirected: it adopts the newest published version (rebinding the
    parameter views, threshold and bundle name) and reports that version,
    which is what extends the exactly-one-version-per-batch guarantee
    across the whole pool.
    """

    def __init__(self, bundle: ModelBundle, config: ServerConfig,
                 store: SharedBundleWeights, replica: int,
                 tenants=None) -> None:
        # monitor=False: the router owns the pool-level SLO tracker and
        # drift monitor (it sees every response); a replica-local view
        # would double-count and fragment the per-tenant windows
        super().__init__(bundle, config, tenants=tenants, monitor=False)
        self._store = store
        self._replica_index = replica
        self._seen_version = 0
        with self._swap_lock:
            self._adopt_locked()

    def _adopt_locked(self) -> None:
        if (self.tenants is not None
                and self._store.version != self._seen_version
                and self.tenants.model is self._bundle.model):
            # a publish landed: adoption re-points every parameter view,
            # which requires the pristine backbone topology -- a bound
            # adapter tenant adds parameters the store's fingerprint
            # check refuses, and a bound soft prompt would get the base
            # slot's weights written over its delta
            self.tenants.bind(None)
        version = self._store.adopt(self._bundle.model, self._replica_index,
                                    self._seen_version)
        if version != self._seen_version:
            self._seen_version = version
            name, threshold = self._store.read_meta(version)
            if name:
                self._bundle.name = name
            self._bundle.threshold = threshold
            self._version = version
            # adoption re-points the weights of the *same* model object, so
            # the registry's identity-based lazy re-attach never fires --
            # its backbone fingerprint (and any materialized deltas pinned
            # to it) must be recomputed here
            if self.tenants is not None:
                self.tenants.attach(self._bundle.model)

    def _snapshot(self) -> Tuple[ModelBundle, int]:
        with self._swap_lock:
            self._adopt_locked()
            return self._bundle, self._version

    def swap(self, bundle: ModelBundle) -> int:  # pragma: no cover - guard
        raise RuntimeError("replica servers adopt published weights; "
                           "swap through the pool")


# ----------------------------------------------------------------------
# Replica worker process
# ----------------------------------------------------------------------
def _owned_shards(replica: int, replicas: int, shards: int) -> List[int]:
    return [s for s in range(shards) if s % replicas == replica]


def _replica_main(conn, replica: int, bundle: ModelBundle,
                  store: SharedBundleWeights, config: ServerConfig,
                  pool_config: PoolConfig, journal: Sequence[dict],
                  encoder, dense_spec: Optional[dict],
                  candidate_mode: str, clk_spec: Optional[dict] = None,
                  clk_journal: Optional[Sequence[dict]] = None) -> None:
    """Worker entry point (fork start method: arguments arrive by
    inheritance, nothing is pickled).

    Runs three threads: the inherited MatchServer scheduler, a collector
    that streams resolved responses back in admission order, and the main
    thread serving the control pipe (score admission, candidate scatter,
    catalog ops for the shards this replica owns, stats, stop).
    """
    # detach the parent's telemetry session -- the run log must have
    # exactly one writer (the router) -- but keep observing: when the
    # parent had telemetry on at fork time, install a child-local session
    # (fresh registry, no run log, same trace flag) whose snapshots are
    # shipped back over this pipe for the router's pool-wide merge
    from ..obs import MetricsRegistry, Telemetry
    from ..obs import telemetry as _telemetry_module
    parent_tel = _telemetry_module._ACTIVE
    if parent_tel.enabled:
        child_tel = Telemetry(runlog=None,
                              trace=getattr(parent_tel, "trace", False),
                              metrics=MetricsRegistry())
        _telemetry_module._ACTIVE = child_tel
    else:
        child_tel = None
        _telemetry_module._ACTIVE = _telemetry_module.DISABLED

    owned = _owned_shards(replica, pool_config.replicas, pool_config.shards)
    # child-side scheduler: queue bound >= the pool-wide bound, so parent
    # admission (and death re-dispatch) can never be shed inside a replica
    child_config = dataclasses.replace(
        config, max_queue=max(config.max_queue * 2,
                              pool_config.max_outstanding * 2))
    tenants = None
    if pool_config.tenants_dir is not None:
        from .tenants import TenantRegistry

        # deltas are KBs each: every replica keeps its own registry over
        # the shared directory (only the backbone rides in shm)
        tenants = TenantRegistry(capacity=pool_config.tenant_capacity,
                                 tenants_dir=pool_config.tenants_dir)
    server = ReplicaMatchServer(bundle, child_config, store, replica,
                                tenants=tenants)

    # build the owned shards from the journal snapshot inherited at fork
    sparse: Dict[int, ServingIndex] = {}
    dense: Dict[int, object] = {}
    for shard in owned:
        index = ServingIndex(default_k=config.default_top_k)
        index.add_many(journal[shard].values())
        sparse[shard] = index
    if dense_spec is not None:
        from .dense import DenseCandidateIndex

        for shard in owned:
            dindex = DenseCandidateIndex(
                encoder, kind=dense_spec["kind"],
                default_k=config.default_top_k, seed=dense_spec["seed"],
                **dense_spec.get("kwargs", {}))
            dindex.add_many(list(journal[shard].values()))
            if dense_spec.get("train") and len(dindex):
                dindex.train()
            dense[shard] = dindex
    clk: Dict[int, object] = {}
    if clk_spec is not None:
        from ..privacy import ClkCandidateIndex

        # filter-only shards: the replica never holds the salt or any
        # plaintext for the CLK catalog -- entries arrive (and are
        # rebuilt on respawn) as packed uint64 filters + ids
        for shard in owned:
            cindex = ClkCandidateIndex(words=clk_spec["words"],
                                       default_k=config.default_top_k)
            if clk_journal is not None:
                cindex.add_clk_many(clk_journal[shard].items())
            clk[shard] = cindex
    mode = candidate_mode

    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # router gone: nothing to do
                pass

    results: "queue.Queue" = queue.Queue()

    def collect() -> None:
        while True:
            item = results.get()
            if item is None:
                return
            req_id, pending = item
            try:
                response = pending.result(timeout=None)
            except BaseException as error:
                send(("error", req_id, f"{type(error).__name__}: {error}"))
            else:
                send(("response", req_id, response.probs,
                      response.prediction, response.model_version,
                      response.bundle_name, response.batch_id,
                      response.batch_size, response.queue_seconds,
                      response.service_seconds, response.tenant,
                      response.trace))

    collector = threading.Thread(target=collect, name="repro-pool-collect",
                                 daemon=True)
    collector.start()
    server.start()

    def metrics_snapshot() -> dict:
        # samples ride along so the router's merged quantiles are exact
        return child_tel.metrics.snapshot(include_samples=True)

    push_halt = threading.Event()
    if child_tel is not None and pool_config.metrics_interval_s > 0:
        def push_metrics() -> None:
            interval = max(pool_config.metrics_interval_s, 0.05)
            while not push_halt.wait(interval):
                send(("metrics_push", replica, metrics_snapshot()))

        threading.Thread(target=push_metrics, name="repro-pool-metrics",
                         daemon=True).start()

    def shard_candidates(record, k, vector) -> list:
        partials = []
        for shard in owned:
            if mode == "dense" and dense:
                index = dense[shard]
                if vector is not None:
                    partials.append(index.candidates_from_vector(vector, k))
                else:
                    partials.append(index.candidates(record, k))
            else:
                partials.append(sparse[shard].candidates(record, k))
        return merge_topk(partials, k)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "score":
                _, req_id, pair, tenant = message
                try:
                    pending = server.submit(pair, tenant=tenant)
                except Overloaded as error:
                    send(("error", req_id, f"Overloaded: {error}"))
                except Exception as error:  # e.g. UnknownTenant on races
                    send(("error", req_id,
                          f"{type(error).__name__}: {error}"))
                else:
                    results.put((req_id, pending))
            elif kind == "candidates":
                _, qid, record, k, vector = message
                try:
                    send(("reply", qid, shard_candidates(record, k, vector)))
                except Exception as error:
                    send(("reply", qid, {"error": repr(error)}))
            elif kind == "catalog_add":
                _, qid, per_shard = message
                fresh = 0
                for shard, records in per_shard.items():
                    fresh += sparse[shard].add_many(records)
                    if shard in dense:
                        dense[shard].add_many(records)
                send(("reply", qid, fresh))
            elif kind == "catalog_remove":
                _, qid, per_shard = message
                removed = 0
                for shard, record_ids in per_shard.items():
                    for record_id in record_ids:
                        if sparse[shard].remove(record_id):
                            removed += 1
                        if shard in dense:
                            dense[shard].remove(record_id)
                        if shard in clk:
                            clk[shard].remove(record_id)
                send(("reply", qid, removed))
            elif kind == "clk_add":
                _, qid, per_shard = message
                fresh = 0
                for shard, entries in per_shard.items():
                    if shard in clk:
                        fresh += clk[shard].add_clk_many(entries)
                send(("reply", qid, fresh))
            elif kind == "clk_match":
                _, qid, query_clk, k = message
                try:
                    partials = [clk[shard].search(query_clk, k)
                                for shard in owned if shard in clk]
                    merged = sorted(
                        (pair for partial in partials for pair in partial),
                        key=lambda item: (-item[1], item[0]))[:k]
                    send(("reply", qid, merged))
                except Exception as error:
                    send(("reply", qid, {"error": repr(error)}))
            elif kind == "candidate_mode":
                mode = message[1]
            elif kind == "stats":
                _, qid = message
                stats = server.stats()
                stats["replica"] = replica
                stats["shards"] = sorted(owned)
                stats["candidate_mode"] = mode
                send(("reply", qid, stats))
            elif kind == "batch_log":
                _, qid = message
                send(("reply", qid, list(server.batch_log)))
            elif kind == "metrics":
                _, qid = message
                send(("reply", qid,
                      metrics_snapshot() if child_tel is not None else {}))
            elif kind == "stop":
                _, qid, drain = message
                push_halt.set()
                server.stop(drain=drain)
                results.put(None)
                collector.join(timeout=10.0)
                ack = {"replica": replica,
                       "responses": server.response_count}
                if child_tel is not None:
                    # final snapshot: counts from the drain are included
                    ack["metrics"] = metrics_snapshot()
                send(("reply", qid, ack))
                break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Router / pool
# ----------------------------------------------------------------------
class ServingPool:
    """Replicated, sharded serving over one shared-memory weight map.

    API-compatible with :class:`MatchServer` where the front ends touch
    it: ``submit`` / ``submit_match`` / ``score`` / ``score_batch`` /
    ``match`` / ``swap`` / ``catalog_add`` / ``catalog_remove`` /
    ``set_candidate_mode`` / ``stats`` / ``version`` / ``stop`` -- the
    HTTP and JSONL transports drive either interchangeably.
    """

    def __init__(self, bundle: ModelBundle,
                 config: Optional[PoolConfig] = None,
                 encoder=None, dense_kind: str = "ivf", dense_seed: int = 0,
                 dense_kwargs: Optional[dict] = None,
                 dense_train: bool = True,
                 clk_words: Optional[int] = None,
                 clk_encoder=None,
                 clk_threshold: float = 0.8,
                 candidate_mode: str = "sparse",
                 slo: Optional[SloTracker] = None,
                 drift: Optional[DriftMonitor] = None) -> None:
        self.config = config if config is not None else PoolConfig()
        self._bundle = bundle
        self._encoder = encoder
        self._dense_spec = None if encoder is None else {
            "kind": dense_kind, "seed": dense_seed,
            "kwargs": dict(dense_kwargs or {}), "train": dense_train}
        #: CLK (PPRL) serving: ``clk_encoder`` enables the single-party
        #: shape (the router encodes its own plaintext catalog adds);
        #: ``clk_words`` alone enables cross-party mode, where the pool
        #: only ever handles pre-encoded filters + ids. Either way the
        #: replicas hold filter-only shards -- no salt, no plaintext.
        self._clk_encoder = clk_encoder
        if clk_encoder is not None:
            clk_inferred = clk_encoder.config.words
            if clk_words is not None and clk_words != clk_inferred:
                raise ValueError(
                    f"clk_words={clk_words} conflicts with clk_encoder "
                    f"({clk_inferred} words)")
            clk_words = clk_inferred
        self._clk_spec = None if clk_words is None else {
            "words": int(clk_words)}
        self.clk_threshold = clk_threshold
        if candidate_mode not in ("sparse", "dense", "clk"):
            raise ValueError(
                "candidate_mode must be 'sparse', 'dense', or 'clk'")
        if candidate_mode == "dense" and encoder is None:
            raise ValueError("dense candidate_mode needs an encoder")
        if candidate_mode == "clk" and self._clk_spec is None:
            raise ValueError(
                "clk candidate_mode needs clk_words or a clk_encoder")
        self._candidate_mode = candidate_mode

        # router-side tenant registry: in forked mode it only validates
        # tenant ids at admission (paths, no model); the serial fallback
        # hands it whole to its in-process MatchServer
        self._tenants = None
        if self.config.tenants_dir is not None:
            from .tenants import TenantRegistry

            self._tenants = TenantRegistry(
                capacity=self.config.tenant_capacity,
                tenants_dir=self.config.tenants_dir)

        #: per-shard journal of raw records: the source respawned replicas
        #: rebuild their shards from (the postings/ANN structures
        #: themselves live only inside the owning replica)
        self._catalog: List[Dict[str, EntityRecord]] = [
            {} for _ in range(self.config.shards)]
        #: per-shard journal of packed CLK filters (same role as
        #: ``_catalog`` for the filter-only path: respawned replicas
        #: rebuild their CLK shards from it); guarded by the same lock so
        #: a fork snapshots both journals consistently
        self._clk_catalog: List[Dict[str, object]] = [
            {} for _ in range(self.config.shards)]
        self._catalog_lock = threading.RLock()

        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight: Dict[int, _Inflight] = {}
        self._gathers: Dict[int, _ReplyGather] = {}
        self._req_ids = itertools.count(1)
        self._replicas: List[_Replica] = []
        self._collector: Optional[threading.Thread] = None
        self._wake_recv = None
        self._wake_send = None
        self._store: Optional[SharedBundleWeights] = None
        self._server: Optional[MatchServer] = None   # serial fallback
        self._serial = False
        self._started = False
        self._closed = False
        self._stopping = False      # suppresses respawn/redispatch
        self._collector_halt = False  # router thread exit flag
        self._swap_lock = threading.Lock()

        self.request_count = 0
        self.response_count = 0
        self.shed_count = 0
        self.redispatch_count = 0
        self.respawn_count = 0
        self.death_count = 0

        # router-owned observability: the router sees every admission,
        # response, shed and error, so pool-level SLO/drift tracking lives
        # here (replicas run monitor=False); the serial fallback hands
        # these same objects to its in-process server
        self._slo = slo if slo is not None else SloTracker()
        self._drift = drift if drift is not None else DriftMonitor()
        self.request_tracer = RequestTracer()
        #: label -> most recent metrics snapshot shipped by that replica
        self._replica_metrics: Dict[str, dict] = {}
        self._metrics_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._started and not self._closed

    @property
    def serial(self) -> bool:
        """True when running the in-process fallback (no fork / no shm)."""
        return self._serial

    def start(self) -> "ServingPool":
        if self._started:
            return self
        self._closed = False
        self._stopping = False
        self._collector_halt = False
        if fork_available():
            store = SharedBundleWeights(
                self._bundle.model, replicas=self.config.replicas,
                guard_timeout_s=self.config.guard_timeout_s)
            if store.is_shared:
                self._store = store
                self._store.publish(self._bundle.model, self._bundle.name,
                                    self._bundle.threshold,
                                    live=())  # nobody to guard against yet
            else:  # no /dev/shm: publishes would be invisible after fork
                store.close()
        if self._store is None:
            self._start_serial()
        else:
            self._start_forked()
        self._started = True
        return self

    def _start_serial(self) -> None:
        self._serial = True
        index = ShardedServingIndex(self.config.shards,
                                    default_k=self.config.server.default_top_k)
        dense_index = None
        if self._encoder is not None:
            from .shard import ShardedDenseCandidateIndex

            spec = self._dense_spec
            dense_index = ShardedDenseCandidateIndex(
                self._encoder, self.config.shards, kind=spec["kind"],
                default_k=self.config.server.default_top_k,
                seed=spec["seed"], **spec["kwargs"])
        clk_index = None
        if self._clk_spec is not None:
            from ..privacy import ClkCandidateIndex

            clk_index = ClkCandidateIndex(
                words=self._clk_spec["words"], encoder=self._clk_encoder,
                default_k=self.config.server.default_top_k)
            with self._catalog_lock:
                entries = [(rid, filt) for shard in self._clk_catalog
                           for rid, filt in shard.items()]
            clk_index.add_clk_many(entries)
        self._server = MatchServer(self._bundle, self.config.server,
                                   index=index, dense_index=dense_index,
                                   clk_index=clk_index,
                                   clk_threshold=self.clk_threshold,
                                   candidate_mode=self._candidate_mode,
                                   tenants=self._tenants,
                                   slo=self._slo, drift=self._drift)
        with self._catalog_lock:
            records = [record for shard in self._catalog
                       for record in shard.values()]
        if records:
            self._server.catalog_add(records)
            if dense_index is not None and self._dense_spec.get("train"):
                dense_index.train()
        self._server.start()

    def _start_forked(self) -> None:
        ctx = mp.get_context("fork")
        self._wake_recv, self._wake_send = ctx.Pipe(duplex=False)
        self._replicas = [self._spawn_replica(index)
                          for index in range(self.config.replicas)]
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="repro-pool-router",
                                           daemon=True)
        self._collector.start()

    def _spawn_replica(self, index: int) -> _Replica:
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        # hold the catalog lock across the fork so the journal the child
        # inherits is not mid-mutation
        with self._catalog_lock:
            proc = ctx.Process(
                target=_replica_main,
                args=(child_conn, index, self._bundle, self._store,
                      self.config.server, self.config, self._catalog,
                      self._encoder, self._dense_spec, self._candidate_mode,
                      self._clk_spec, self._clk_catalog),
                daemon=True, name=f"repro-pool-replica-{index}")
            proc.start()
        child_conn.close()
        return _Replica(index, proc, parent_conn)

    def __enter__(self) -> "ServingPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Pool-wide graceful stop: close admission, finish (or fail) the
        in-flight work, stop every replica with the same ``drain``
        semantics, reap the processes and release the shared segments."""
        if not self._started:
            self._closed = True
            return
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        with self._lock:
            self._closed = True
        if self._serial:
            self._server.stop(drain=drain)
            self._started = False
            return
        if drain:
            deadline = time.monotonic() + timeout
            with self._drained:
                while self._inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(remaining)
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
            for replica in self._replicas:
                replica.outstanding_pairs = 0
                replica.outstanding_tokens = 0
        for inflight in leftovers:
            try:
                inflight.pending._fail(
                    Overloaded("pool stopped before scoring"))
            except RuntimeError:  # pragma: no cover - resolved in a race
                pass
        self._stopping = True
        # the collector keeps running here: it must still deliver the
        # replicas' final responses and the stop acks
        acks = self._scatter_control(("stop", None, drain),
                                     timeout=max(timeout, 1.0))
        # best-effort: a wedged replica is terminated below. Acks that did
        # arrive carry each replica's final metrics snapshot -- harvest
        # them so a post-stop metrics_snapshot() still sums the whole run
        for index, ack in acks.items():
            if isinstance(ack, dict) and "metrics" in ack:
                with self._metrics_lock:
                    self._replica_metrics[f"replica{index}"] = ack["metrics"]
        for replica in self._replicas:
            replica.proc.join(timeout=5.0)
            if replica.proc.is_alive():  # pragma: no cover - wedged child
                replica.proc.terminate()
                replica.proc.join(timeout=1.0)
            if replica.proc.is_alive():  # pragma: no cover - SIGTERM is
                # caught or masked in the child (forked replicas inherit
                # whatever handlers the host application installed)
                replica.proc.kill()
                replica.proc.join(timeout=1.0)
            replica.live = False
        self._collector_halt = True
        self._wake()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            self._collector = None
        for replica in self._replicas:
            try:
                replica.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._store is not None:
            self._store.close()
            self._store = None
        self._started = False

    def _wake(self) -> None:
        if self._wake_send is not None:
            try:
                self._wake_send.send(0)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pick_replica(self) -> Optional[_Replica]:
        """Least-outstanding-pairs dispatch with a token-estimate
        tiebreak; None when every live replica is at its queue bound.
        Caller holds ``_lock``."""
        best = None
        for replica in self._replicas:
            if not replica.live:
                continue
            if replica.outstanding_pairs >= self.config.max_outstanding:
                continue
            key = (replica.outstanding_pairs, replica.outstanding_tokens,
                   replica.index)
            if best is None or key < best[0]:
                best = (key, replica)
        return best[1] if best is not None else None

    def submit(self, pair: CandidatePair,
               tenant: Optional[str] = None) -> PendingResponse:
        """Queue one score request on the least-loaded replica; raises
        :class:`Overloaded` when the pool (or every replica queue) is
        full."""
        return self._submit_many([pair], tenant=tenant)[0]

    def _submit_many(self, pairs: Sequence[CandidatePair],
                     tenant: Optional[str] = None) -> List[PendingResponse]:
        """All-or-nothing admission of a request group (a match query's
        candidate fan-out is one group, like the single server's)."""
        if tenant is not None and not self._serial:
            # validate at the router, against a paths-only registry: an
            # unknown tenant must fail fast in the caller, not surface as
            # an opaque error reply from a replica
            registry = self._tenants
            if registry is None or not registry.has(tenant):
                from .tenants import UnknownTenant

                raise UnknownTenant(tenant)
        if self._serial:
            return self._server._submit_many(pairs, tenant=tenant)
        started = time.perf_counter()
        tel = get_telemetry()
        tracing = tel.enabled and getattr(tel, "trace", False)
        assignments: List[Tuple[int, _Replica]] = []
        pendings: List[PendingResponse] = []
        with self._lock:
            if self._closed or not self._started:
                raise Overloaded("pool is stopped",
                                 queue_depth=len(self._inflight))
            if len(self._inflight) + len(pairs) > self.config.server.max_queue:
                self.shed_count += 1
                self._slo.observe_shed(tenant, len(pairs))
                if tel.enabled:
                    tel.metrics.counter("pool.shed").inc()
                raise Overloaded(
                    f"pool queue full ({len(self._inflight)}"
                    f"/{self.config.server.max_queue})",
                    queue_depth=len(self._inflight))
            staged: List[Tuple[_Replica, int]] = []
            for pair in pairs:
                replica = self._pick_replica()
                if replica is None:
                    for staged_replica, tokens in staged:  # roll back
                        staged_replica.outstanding_pairs -= 1
                        staged_replica.outstanding_tokens -= tokens
                    self.shed_count += 1
                    self._slo.observe_shed(tenant, len(pairs))
                    if tel.enabled:
                        tel.metrics.counter("pool.shed").inc()
                    raise Overloaded("every replica queue is full",
                                     queue_depth=len(self._inflight))
                tokens = _approx_tokens(pair)
                replica.outstanding_pairs += 1
                replica.outstanding_tokens += tokens
                staged.append((replica, tokens))
            arrived = time.perf_counter()
            for pair, (replica, tokens) in zip(pairs, staged):
                req_id = next(self._req_ids)
                pending = PendingResponse()
                ctx = None
                if tracing:
                    # admission spans router-side staging; dispatch is
                    # stamped here (the pipe write below is fire-and-
                    # forget), so pipe transit lands in the respond span
                    ctx = TraceContext.admit(tenant, now=started)
                    ctx.dispatched(replica.index, now=arrived)
                self._inflight[req_id] = _Inflight(pending, pair,
                                                   replica.index, tokens,
                                                   arrived, tenant=tenant,
                                                   trace=ctx)
                pendings.append(pending)
                assignments.append((req_id, replica))
            self.request_count += len(pairs)
        dead: List[Tuple[int, _Replica]] = []
        for (req_id, replica), pair in zip(assignments, pairs):
            try:
                replica.send(("score", req_id, pair, tenant))
            except (BrokenPipeError, OSError):
                dead.append((req_id, replica))
        for req_id, replica in dead:
            self._on_replica_death(replica)
        if tel.enabled:
            tel.metrics.counter("pool.dispatches").inc(len(pairs))
            tel.metrics.timer("pool.dispatch_seconds").observe(
                time.perf_counter() - started)
            self._gauge_outstanding(tel)
        return pendings

    def _gauge_outstanding(self, tel) -> None:
        for replica in self._replicas:
            tel.metrics.gauge(
                f"pool.replica{replica.index}.outstanding").set(
                    replica.outstanding_pairs)

    def submit_match(self, record: EntityRecord,
                     k: Optional[int] = None,
                     tenant: Optional[str] = None) -> PendingMatch:
        """Scatter the candidate query across every replica's shards,
        merge the per-shard top-k, then admit one score request per
        candidate (atomically, like the single server)."""
        if self._candidate_mode == "clk":
            # the pool-level privacy pin: in CLK mode no plaintext record
            # may enter the serving path, in serial and forked mode alike
            raise ValueError(
                "clk candidate mode serves clk_match queries only; "
                "plaintext match needs candidate_mode sparse or dense")
        if self._serial:
            return self._server.submit_match(record, k, tenant=tenant)
        k = self.config.server.default_top_k if k is None else int(k)
        candidates = self._gather_candidates(record, k)
        if not candidates:
            return PendingMatch(record.record_id, [])
        pairs = [CandidatePair(record, candidate)
                 for candidate, _ in candidates]
        pendings = self._submit_many(pairs, tenant=tenant)
        entries = [(candidate, score, pending)
                   for (candidate, score), pending in zip(candidates,
                                                          pendings)]
        return PendingMatch(record.record_id, entries)

    def clk_match(self, record_id: str, clk, k: Optional[int] = None):
        """Dice top-k over the pool's CLK shards for one pre-encoded
        query filter: scatter the filter, merge per-shard ``(id, score)``
        partials with the deterministic ``(-score, id)`` rule, flag
        matches at ``clk_threshold``.  Requests and replies carry only
        filter bytes, ids, and scores."""
        from .server import ClkCandidate, ClkMatchResponse

        if self._clk_spec is None:
            raise ValueError("no clk index configured")
        if self._serial:
            return self._server.clk_match(record_id, clk, k)
        k = self.config.server.default_top_k if k is None else int(k)
        started = time.perf_counter()
        clk = np.asarray(clk, dtype=np.uint64)
        replies = self._scatter_control(
            ("clk_match", None, clk, k),
            timeout=self.config.gather_timeout_s)
        partials = [payload for payload in replies.values()
                    if isinstance(payload, list)]
        if len(partials) < len(replies) or not replies:
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter("pool.partial_gathers").inc()
        merged = sorted(
            ((str(rid), float(score))
             for partial in partials for rid, score in partial),
            key=lambda item: (-item[1], item[0]))[:k]
        self.request_count += 1
        self.response_count += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("privacy.clk.requests").inc()
            tel.metrics.quantiles("privacy.clk.match_seconds").observe(
                time.perf_counter() - started)
            tel.metrics.histogram("privacy.clk.candidates").observe(
                len(merged))
        return ClkMatchResponse(
            record_id=record_id,
            candidates=[ClkCandidate(rid, score,
                                     score >= self.clk_threshold)
                        for rid, score in merged],
            threshold=self.clk_threshold)

    def _gather_candidates(self, record: EntityRecord, k: int
                           ) -> List[Tuple[EntityRecord, float]]:
        vector = None
        if self._candidate_mode == "dense" and self._encoder is not None:
            # embed once in the router; every shard re-ranks this vector
            vector = self._encoder.encode_record(record)
        replies = self._scatter_control(
            ("candidates", None, record, k, vector),
            timeout=self.config.gather_timeout_s)
        partials = [payload for payload in replies.values()
                    if isinstance(payload, list)]
        if len(partials) < len(replies) or not replies:
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter("pool.partial_gathers").inc()
        return merge_topk(partials, k)

    def _scatter_control(self, template: tuple, timeout: float
                         ) -> Dict[int, object]:
        """Send ``template`` (with the qid filled into slot 1) to every
        live replica and gather one reply per survivor."""
        with self._lock:
            live = [replica for replica in self._replicas if replica.live]
            qid = next(self._req_ids)
            gather = _ReplyGather(replica.index for replica in live)
            self._gathers[qid] = gather
        message = (template[0], qid) + template[2:]
        for replica in live:
            try:
                replica.send(message)
            except (BrokenPipeError, OSError):
                self._on_replica_death(replica)
        replies = gather.wait(timeout)
        with self._lock:
            self._gathers.pop(qid, None)
        return dict(replies)

    # ------------------------------------------------------------------
    # Collector / fault containment
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while not self._collector_halt:
            with self._lock:
                conns = {replica.conn: replica
                         for replica in self._replicas if replica.live}
            try:
                ready = _conn_wait(list(conns) + [self._wake_recv],
                                   timeout=0.25)
            except OSError:  # pragma: no cover - torn down mid-wait
                continue
            for obj in ready:
                if obj is self._wake_recv:
                    try:
                        self._wake_recv.recv()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
                    continue
                replica = conns.get(obj)
                if replica is None:
                    continue
                try:
                    message = obj.recv()
                except (EOFError, OSError):
                    self._on_replica_death(replica)
                    continue
                self._handle_message(replica, message)

    def _handle_message(self, replica: _Replica, message) -> None:
        kind = message[0]
        if kind == "response":
            (_, req_id, probs, prediction, version, bundle_name,
             batch_id, batch_size, queue_seconds, service_seconds,
             tenant, trace) = message
            self._resolve(req_id, replica, ScoreResponse(
                probs=np.asarray(probs), prediction=int(prediction),
                model_version=int(version), bundle_name=bundle_name,
                batch_id=int(batch_id), batch_size=int(batch_size),
                queue_seconds=float(queue_seconds),
                service_seconds=float(service_seconds),
                replica=replica.index, tenant=tenant, trace=trace))
        elif kind == "error":
            _, req_id, detail = message
            inflight = self._finish(req_id, replica)
            if inflight is not None:
                self._slo.observe_error(inflight.tenant)
                try:
                    inflight.pending._fail(RuntimeError(detail))
                except RuntimeError:  # pragma: no cover - double resolve
                    pass
        elif kind == "metrics_push":
            _, index, snapshot = message
            with self._metrics_lock:
                self._replica_metrics[f"replica{index}"] = snapshot
        elif kind == "reply":
            _, qid, payload = message
            with self._lock:
                gather = self._gathers.get(qid)
            if gather is not None:
                gather.reply(replica.index, payload)

    def _finish(self, req_id: int, replica: _Replica) -> Optional[_Inflight]:
        with self._lock:
            inflight = self._inflight.pop(req_id, None)
            if inflight is not None:
                replica.outstanding_pairs -= 1
                replica.outstanding_tokens -= inflight.tokens
                if not self._inflight:
                    self._drained.notify_all()
        return inflight

    def _resolve(self, req_id: int, replica: _Replica,
                 response: ScoreResponse) -> None:
        inflight = self._finish(req_id, replica)
        if inflight is None:  # late answer for a re-dispatched request
            return
        self.response_count += 1
        now = time.perf_counter()
        tel = get_telemetry()
        if inflight.trace is not None:
            # stitch the replica-reported stage timings into the parent-
            # side tree BEFORE resolving, so the client's response carries
            # the finished tree rather than the raw replica payload
            payload = response.trace if isinstance(response.trace, dict) \
                else {}
            encode = float(payload.get("encode_seconds", 0.0))
            tree = stitch_trace(
                inflight.trace, t_done=now,
                queue_seconds=max(response.queue_seconds - encode, 0.0),
                batch_seconds=encode,
                forward_seconds=response.service_seconds,
                forward_cpu_seconds=payload.get("forward_cpu_seconds"),
                batch_id=response.batch_id,
                batch_size=response.batch_size,
                replica=replica.index)
            response.trace = tree
            self.request_tracer.record(tree)
            if tel.enabled:
                tel.event("serve.trace", **tree)
        try:
            inflight.pending._resolve(response)
        except RuntimeError:  # pragma: no cover - double resolve
            pass
        self._slo.observe(inflight.tenant, now - inflight.arrived)
        fired = self._drift.observe(
            inflight.tenant, [float(response.probs[1])],
            [int(response.prediction)],
            version=f"{response.bundle_name}@{response.model_version}")
        if tel.enabled:
            for event in fired:
                tel.metrics.counter("serve.drift.events").inc()
                tel.event("serve.drift", **event)
            tel.metrics.gauge("serve.drift.active").set(
                1.0 if self._drift.active else 0.0)
            tel.metrics.counter("pool.responses").inc()
            tel.metrics.quantiles("pool.request_seconds").observe(
                now - inflight.arrived)

    def _on_replica_death(self, replica: _Replica) -> None:
        """Contain a dead worker: detach it, re-dispatch its in-flight
        requests to survivors (scoring is pure; nothing accepted is
        lost), and respawn a replacement over the current journal."""
        with self._lock:
            if not replica.live:
                return
            replica.live = False
            orphans = [(req_id, inflight)
                       for req_id, inflight in self._inflight.items()
                       if inflight.replica == replica.index]
            for gather in self._gathers.values():
                gather.drop(replica.index)
        self.death_count += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("pool.replica_deaths").inc()
        try:
            replica.conn.close()
        except OSError:  # pragma: no cover
            pass
        if not self._stopping and self.config.respawn:
            fresh = self._spawn_replica(replica.index)
            with self._lock:
                self._replicas[replica.index] = fresh
            self.respawn_count += 1
            if tel.enabled:
                tel.metrics.counter("pool.respawns").inc()
            self._wake()  # collector must add the new pipe to its wait set
        for req_id, inflight in orphans:
            self._redispatch(req_id, inflight)

    def _redispatch(self, req_id: int, inflight: _Inflight) -> None:
        """Move an accepted request to a live replica.  Queue bounds are
        deliberately ignored: admission happened once; a death must not
        turn an accepted request into a shed one."""
        while True:
            with self._lock:
                if req_id not in self._inflight:
                    return
                target = None
                for replica in self._replicas:
                    if replica.live and (
                            target is None
                            or replica.outstanding_pairs
                            < target.outstanding_pairs):
                        target = replica
                if target is None:
                    inflight_obj = self._inflight.pop(req_id)
                    if not self._inflight:
                        self._drained.notify_all()
                else:
                    inflight.replica = target.index
                    target.outstanding_pairs += 1
                    target.outstanding_tokens += inflight.tokens
            if target is None:
                try:
                    inflight.pending._fail(Overloaded(
                        "request lost: no live replica to re-dispatch to"))
                except RuntimeError:  # pragma: no cover
                    pass
                return
            try:
                target.send(("score", req_id, inflight.pair,
                             inflight.tenant))
            except (BrokenPipeError, OSError):
                self._on_replica_death(target)
                continue
            self.redispatch_count += 1
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter("pool.redispatched").inc()
            return

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        if self._serial:
            return self._server.version
        if self._store is not None:
            return self._store.version
        return 1

    @property
    def bundle(self) -> ModelBundle:
        return self._bundle

    def swap(self, bundle: ModelBundle) -> int:
        """Publish ``bundle`` into the shared store: one version bump
        atomically flips every replica at its next batch boundary."""
        with self._swap_lock:
            if self._serial:
                self._bundle = bundle
                return self._server.swap(bundle)
            if self._store is None:
                raise RuntimeError("pool is not started")
            with self._lock:
                live = [replica.index for replica in self._replicas
                        if replica.live]
            version = self._store.publish(bundle.model, bundle.name,
                                          bundle.threshold, live=live)
            self._bundle = bundle
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("pool.swaps").inc()
            tel.event("pool.swap", version=version, bundle=bundle.name)
        return version

    # ------------------------------------------------------------------
    # Candidate catalog
    # ------------------------------------------------------------------
    @property
    def candidate_mode(self) -> str:
        if self._serial and self._server is not None:
            return self._server.candidate_mode
        return self._candidate_mode

    def set_candidate_mode(self, mode: str) -> str:
        """Flip the candidate generator pool-wide; replicas adopt it for
        every subsequent scatter (in-flight gathers finish on the old)."""
        if mode not in ("sparse", "dense", "clk"):
            raise ValueError(
                "candidate_mode must be 'sparse', 'dense', or 'clk'")
        if mode == "dense" and self._encoder is None:
            raise ValueError("no dense index configured")
        if mode == "clk" and self._clk_spec is None:
            raise ValueError("no clk index configured")
        if self._serial:
            self._server.set_candidate_mode(mode)
            self._candidate_mode = mode
            return mode
        self._candidate_mode = mode
        with self._lock:
            live = [replica for replica in self._replicas if replica.live]
        for replica in live:
            try:
                replica.send(("candidate_mode", mode))
            except (BrokenPipeError, OSError):
                self._on_replica_death(replica)
        tel = get_telemetry()
        if tel.enabled:
            tel.event("pool.candidate_mode", mode=mode)
        return mode

    def catalog_size(self) -> int:
        with self._catalog_lock:
            return sum(len(shard) for shard in self._catalog)

    def catalog_add(self, records) -> int:
        """Route records to their owning shards (journal + live replica);
        returns the number of ids new to the catalog.

        With a ``clk_encoder`` configured (single-party mode) each record
        is also encoded *here, once, router-side* and the filter routed to
        the owning CLK shard -- replicas never need the salt."""
        records = list(records)
        clk_per_shard: Dict[int, list] = {}
        if self._clk_encoder is not None and records:
            filters = self._clk_encoder.encode_records(records)
        per_shard: Dict[int, List[EntityRecord]] = {}
        fresh = 0
        with self._catalog_lock:
            for i, record in enumerate(records):
                shard = shard_of(record.record_id, self.config.shards)
                if record.record_id not in self._catalog[shard]:
                    fresh += 1
                self._catalog[shard][record.record_id] = record
                per_shard.setdefault(shard, []).append(record)
                if self._clk_encoder is not None:
                    self._clk_catalog[shard][record.record_id] = filters[i]
                    clk_per_shard.setdefault(shard, []).append(
                        (record.record_id, filters[i]))
        if self._serial and self._server is not None:
            self._server.catalog_add(records)
        elif self._started:
            self._route_catalog("catalog_add", per_shard)
            if clk_per_shard:
                self._route_catalog("clk_add", clk_per_shard)
        return fresh

    def catalog_add_clk(self, entries) -> int:
        """Route pre-encoded ``(record_id, packed filter)`` entries to
        their owning CLK shards (journal + live replica); returns the
        number of new ids.  The cross-party ingest path: no plaintext
        exists anywhere in this flow."""
        if self._clk_spec is None:
            raise ValueError("no clk index configured")
        entries = [(str(rid), np.asarray(filt, dtype=np.uint64))
                   for rid, filt in entries]
        per_shard: Dict[int, list] = {}
        fresh = 0
        with self._catalog_lock:
            for record_id, filt in entries:
                shard = shard_of(record_id, self.config.shards)
                if record_id not in self._clk_catalog[shard]:
                    fresh += 1
                self._clk_catalog[shard][record_id] = filt
                per_shard.setdefault(shard, []).append((record_id, filt))
        if self._serial and self._server is not None:
            self._server.catalog_add_clk(
                pair for pairs in per_shard.values() for pair in pairs)
        elif self._started:
            self._route_catalog("clk_add", per_shard)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("privacy.clk.catalog_adds").inc()
        return fresh

    def clk_catalog_size(self) -> int:
        with self._catalog_lock:
            return sum(len(shard) for shard in self._clk_catalog)

    def catalog_remove(self, record_ids) -> int:
        removed = 0
        per_shard: Dict[int, List[str]] = {}
        with self._catalog_lock:
            for record_id in record_ids:
                shard = shard_of(record_id, self.config.shards)
                plain = self._catalog[shard].pop(record_id, None) is not None
                filt = self._clk_catalog[shard].pop(record_id,
                                                    None) is not None
                if plain or filt:
                    removed += 1
                per_shard.setdefault(shard, []).append(record_id)
        if self._serial and self._server is not None:
            self._server.catalog_remove(
                [rid for rids in per_shard.values() for rid in rids])
        elif self._started:
            self._route_catalog("catalog_remove", per_shard)
        return removed

    def _route_catalog(self, op: str, per_shard: Dict[int, list]) -> None:
        """Forward per-shard catalog mutations to the owning replicas and
        wait for their acks (read-your-writes for subsequent matches).  A
        dead owner is skipped: its respawn rebuilds from the journal,
        which was already updated."""
        by_replica: Dict[int, Dict[int, list]] = {}
        for shard, payload in per_shard.items():
            owner = shard % self.config.replicas
            by_replica.setdefault(owner, {})[shard] = payload
        gathers = []
        with self._lock:
            live = {replica.index: replica for replica in self._replicas
                    if replica.live}
        for owner, shard_payload in by_replica.items():
            replica = live.get(owner)
            if replica is None:
                continue
            with self._lock:
                qid = next(self._req_ids)
                gather = _ReplyGather((owner,))
                self._gathers[qid] = gather
            try:
                replica.send((op, qid, shard_payload))
                gathers.append((qid, gather))
            except (BrokenPipeError, OSError):
                with self._lock:
                    self._gathers.pop(qid, None)
                self._on_replica_death(replica)
        for qid, gather in gathers:
            gather.wait(self.config.gather_timeout_s)
            with self._lock:
                self._gathers.pop(qid, None)

    # ------------------------------------------------------------------
    # Synchronous conveniences (mirror MatchServer's)
    # ------------------------------------------------------------------
    def process_once(self, wait: bool = False) -> int:
        """Pool scheduling happens in the replicas; there is nothing to
        drive inline.  Exists for front-end compatibility."""
        return 0

    def score(self, pair: CandidatePair,
              timeout: Optional[float] = None,
              tenant: Optional[str] = None) -> ScoreResponse:
        return self.submit(pair, tenant=tenant).result(timeout)

    def score_batch(self, pairs: Sequence[CandidatePair],
                    timeout: Optional[float] = None,
                    tenants: Optional[Sequence[Optional[str]]] = None
                    ) -> List[ScoreResponse]:
        if tenants is None:
            tenants = [None] * len(pairs)
        if len(tenants) != len(pairs):
            raise ValueError(f"tenants has {len(tenants)} entries for "
                             f"{len(pairs)} pairs")
        pendings = []
        for pair, tenant in zip(pairs, tenants):
            while True:
                try:
                    pendings.append(self.submit(pair, tenant=tenant))
                    break
                except Overloaded:
                    if not self.is_running:
                        raise
                    time.sleep(0.0005)
        return [pending.result(timeout) for pending in pendings]

    def match(self, record: EntityRecord, k: Optional[int] = None,
              timeout: Optional[float] = None,
              tenant: Optional[str] = None):
        return self.submit_match(record, k, tenant=tenant).result(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def batch_logs(self) -> Dict[int, list]:
        """Per-replica micro-batch logs (requires ``record_batches``);
        the pool benchmark replays these offline for the bit-identity
        contract."""
        if self._serial:
            return {0: list(self._server.batch_log)}
        replies = self._scatter_control(("batch_log", None),
                                        timeout=self.config.gather_timeout_s)
        return {replica: payload for replica, payload in replies.items()
                if isinstance(payload, list)}

    # ------------------------------------------------------------------
    # Observability surfaces (duck-typed: MatchServer offers the same)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness payload for ``GET /healthz``: no scatter, no
        scoring -- only router-side state, safe for LB probes."""
        with self._lock:
            live = [replica.index for replica in self._replicas
                    if replica.live]
            outstanding = {str(replica.index): replica.outstanding_pairs
                           for replica in self._replicas}
            depth = len(self._inflight)
        payload = {
            "mode": "serial" if self._serial else "pool",
            "model_version": self.version,
            "bundle": self._bundle.name,
            "catalog_size": self.catalog_size(),
            "candidate_mode": self.candidate_mode,
            "candidate_index": self._candidate_index_kind(),
            "queue_depth": depth,
            "replicas": {
                "configured": self.config.replicas,
                "live": live,
                "outstanding": outstanding,
                "deaths": self.death_count,
                "respawns": self.respawn_count,
            },
        }
        if self._clk_spec is not None:
            payload["clk_catalog_size"] = self.clk_catalog_size()
        if self._tenants is not None:
            tstats = self._tenants.stats()
            payload["tenants"] = {
                "registered": tstats["registered"],
                "loaded": tstats["loaded"],
                "capacity": tstats["capacity"],
            }
        return payload

    def _candidate_index_kind(self) -> str:
        """Human-readable kind of the index behind ``candidate_mode``
        (lock-free, mirrors ``MatchServer._candidate_index_kind``)."""
        mode = self.candidate_mode
        if mode == "dense":
            kind = self._dense_spec["kind"] if self._dense_spec else "?"
            return f"dense:{kind}"
        if mode == "clk":
            return "clk"
        return "sparse:token-overlap"

    def slo_snapshot(self) -> dict:
        """Per-tenant SLO compliance plus drift state for ``GET /slo``."""
        tracer = self.request_tracer
        if self._serial and self._server is not None \
                and self._server.request_tracer is not None:
            # the in-process fallback server stitches its own traces (it
            # shares the pool's SLO/drift objects, so those are one view)
            tracer = self._server.request_tracer
        return {
            "slo": self._slo.snapshot(),
            "drift": self._drift.snapshot(),
            "traces": tracer.snapshot(),
        }

    def metrics_snapshot(self, pull: bool = True) -> dict:
        """Pool-wide merged metrics: the router's registry plus the most
        recent snapshot of every replica, merged per metric kind.

        ``pull=True`` (the default) scatters a ``metrics`` control
        message first so the merge reflects right-now counts instead of
        the last periodic push; pass ``False`` for a cheap cached read.
        """
        tel = get_telemetry()
        router = tel.metrics.snapshot(include_samples=True) \
            if tel.enabled else {}
        sources: Dict[str, dict] = {"router": router}
        if not self._serial:
            if pull and self._started and not self._closed:
                replies = self._scatter_control(
                    ("metrics", None), timeout=self.config.gather_timeout_s)
                with self._metrics_lock:
                    for index, snapshot in replies.items():
                        if isinstance(snapshot, dict):
                            self._replica_metrics[f"replica{index}"] = \
                                snapshot
            with self._metrics_lock:
                sources.update({label: dict(snapshot) for label, snapshot
                                in self._replica_metrics.items()})
        merged = merge_snapshots(sources, strict=False)
        return {"merged": merged,
                "sources": dict(sorted(sources.items()))}

    def stats(self) -> dict:
        with self._lock:
            outstanding = {replica.index: replica.outstanding_pairs
                           for replica in self._replicas}
            live = [replica.index for replica in self._replicas
                    if replica.live]
            depth = len(self._inflight)
        stats = {
            "mode": "serial" if self._serial else "pool",
            "replicas": self.config.replicas,
            "shards": self.config.shards,
            "live": live,
            "model_version": self.version,
            "candidate_mode": self.candidate_mode,
            "queue_depth": depth,
            "outstanding": outstanding,
            "requests": self.request_count,
            "responses": self.response_count,
            "shed": self.shed_count,
            "redispatched": self.redispatch_count,
            "deaths": self.death_count,
            "respawns": self.respawn_count,
            "catalog_records": self.catalog_size(),
        }
        if self._clk_spec is not None:
            stats["clk_catalog_records"] = self.clk_catalog_size()
            stats["clk_threshold"] = self.clk_threshold
        if self._serial and self._server is not None:
            stats["server"] = self._server.stats()
            stats["requests"] = self._server.request_count
            stats["responses"] = self._server.response_count
            stats["shed"] = self._server.shed_count
        elif self._started:
            replies = self._scatter_control(
                ("stats", None), timeout=self.config.gather_timeout_s)
            stats["replica_stats"] = {index: payload for index, payload
                                      in sorted(replies.items())}
        return stats
