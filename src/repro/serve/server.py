"""MatchServer: dynamic micro-batching over a bounded request queue.

Request path
------------

Clients ``submit()`` score requests (or ``submit_match()`` queries, which
fan out into per-candidate score requests through the same queue). A
scheduler -- either the background thread started by :meth:`start` or the
caller itself via the synchronous :meth:`process_once` driver -- forms
micro-batches:

* the first queued request opens a batch and starts its **max-wait
  deadline**; the batch closes when the deadline passes, when
  ``max_batch_pairs`` rows are gathered, or when admitting the next
  request would push ``rows x longest-encoding`` past ``token_budget``
  (the same packing rule as :func:`repro.infer.engine.pack_buckets`,
  which the engine re-applies inside the batch);
* the scheduler snapshots ``(bundle, version)`` **once per batch** under
  the swap lock, so every request in a batch -- and therefore every
  response -- is attributable to exactly one model version even while
  :meth:`swap` installs a new :class:`~repro.serve.bundle.ModelBundle`;
* the batch is scored by ``InferenceEngine.predict_proba`` -- the exact
  offline inference path, so served probabilities are bit-identical to an
  offline engine replaying the same micro-batches (``bench_serving.py``
  asserts this).

Backpressure is explicit: a full queue rejects the request with
:class:`Overloaded` at admission time (counted on the ``serve.shed``
metric) instead of buffering unboundedly; clients decide whether to retry.

Failures are contained the same way: a record that cannot be encoded
fails only its own request (``serve.request_errors``), and a batch whose
scoring raises fails only that batch's pendings (``serve.batch_errors``)
-- the scheduler thread survives both and keeps serving the rest of the
queue.

Hot swap reuses the version-counter pattern of
:class:`repro.parallel.shm.ParameterPublisher`: ``swap()`` bumps a
monotonic counter under a lock, the scheduler adopts the newest
``(bundle, version)`` at its next batch boundary, and in-flight batches
finish on the snapshot they started with.

Everything is instrumented through :mod:`repro.obs` when a telemetry
session is active: ``serve.queue_depth`` gauge, ``serve.batch_size`` and
``serve.batch_seconds`` histograms, ``serve.request_seconds`` quantiles,
``serve.shed`` / ``serve.requests`` / ``serve.responses`` counters, and a
``serve.batch`` span per scored batch (recorded from the scheduler
thread).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import CandidatePair
from ..data.records import EntityRecord
from ..infer import EngineConfig, InferenceEngine
from ..obs import get_telemetry
from ..obs.serving import (
    DriftMonitor, RequestTracer, SloTracker, TraceContext, stitch_trace,
)
from .bundle import ModelBundle
from .index import ServingIndex


class Overloaded(RuntimeError):
    """Admission control rejected the request: the queue is full (or the
    server has been stopped). Carries ``queue_depth`` at rejection time."""

    def __init__(self, message: str, queue_depth: int = 0) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth


@dataclass
class ServerConfig:
    """Scheduler and admission-control knobs."""

    #: bounded queue size; admission beyond this sheds with Overloaded
    max_queue: int = 256
    #: hard cap on requests per micro-batch
    max_batch_pairs: int = 32
    #: close a batch when rows x longest-encoding would exceed this
    #: (the engine re-buckets inside the batch under the same budget)
    token_budget: int = 2048
    #: how long the first request of a batch waits for company (seconds)
    max_wait_s: float = 0.002
    #: encoding-cache entries shared across batches and bundle versions
    cache_capacity: int = 8192
    #: top-k candidates a match query scores when the caller passes none
    default_top_k: int = 5
    #: keep (batch_id, version, pairs) tuples for offline replay/audit
    record_batches: bool = False
    #: allow one micro-batch to mix rows of different soft-prompt tenants
    #: (scored in a single fused fastpath call); adapter tenants always
    #: batch same-tenant-only regardless of this flag
    fuse_tenants: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be >= 1")
        if self.token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class ScoreResponse:
    """One scored pair, tagged with the model version that produced it."""

    probs: np.ndarray            # (2,) class probabilities
    prediction: int              # thresholded (or argmax) decision
    model_version: int           # server-side monotonic bundle version
    bundle_name: str
    batch_id: int
    batch_size: int
    queue_seconds: float         # admission -> batch formation
    service_seconds: float       # batch formation -> response
    replica: Optional[int] = None  # which pool replica scored it (pool mode)
    tenant: Optional[str] = None   # which tenant delta scored it (if any)
    #: per-stage timing payload (tracing only); never part of the scored
    #: output -- determinism comparisons ignore it
    trace: Optional[dict] = None

    @property
    def match_probability(self) -> float:
        return float(self.probs[1])


@dataclass
class MatchCandidate:
    """One ranked candidate of a match query."""

    record: EntityRecord
    block_score: float           # overlap coefficient (sparse mode) or
                                 # quantized cosine (dense mode)
    response: ScoreResponse

    @property
    def probability(self) -> float:
        return self.response.match_probability

    @property
    def is_match(self) -> bool:
        return bool(self.response.prediction)


@dataclass
class MatchResponse:
    """Ranked candidates for one query record (highest probability first)."""

    record_id: str
    candidates: List[MatchCandidate] = field(default_factory=list)

    @property
    def best(self) -> Optional[MatchCandidate]:
        return self.candidates[0] if self.candidates else None

    def matches(self) -> List[MatchCandidate]:
        return [c for c in self.candidates if c.is_match]


@dataclass
class ClkCandidate:
    """One ranked candidate of a CLK match query.

    Deliberately carries *no* :class:`EntityRecord` -- in cross-party mode
    the server never holds one, and the response must not either."""

    record_id: str
    score: float                 # Dice similarity over packed filters
    is_match: bool               # score >= the server's clk_threshold


@dataclass
class ClkMatchResponse:
    """Ranked CLK candidates for one query filter (ids + scores only)."""

    record_id: str
    candidates: List[ClkCandidate] = field(default_factory=list)
    threshold: float = 0.8

    @property
    def best(self) -> Optional[ClkCandidate]:
        return self.candidates[0] if self.candidates else None

    def matches(self) -> List[ClkCandidate]:
        return [c for c in self.candidates if c.is_match]


class PendingResponse:
    """A one-shot future for a queued request.

    Resolution is guarded: resolving twice raises, which is how the
    hot-swap test proves no request is ever double-answered.
    """

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[ScoreResponse] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ScoreResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("request not resolved in time")
        if self._error is not None:
            raise self._error
        return self._response

    def _resolve(self, response: ScoreResponse) -> None:
        if self._event.is_set():
            raise RuntimeError("request resolved twice")
        self._response = response
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        if self._event.is_set():
            raise RuntimeError("request resolved twice")
        self._error = error
        self._event.set()


class PendingMatch:
    """Aggregates the per-candidate pendings of one match query."""

    __slots__ = ("record_id", "_entries")

    def __init__(self, record_id: str,
                 entries: List[Tuple[EntityRecord, float, PendingResponse]]
                 ) -> None:
        self.record_id = record_id
        self._entries = entries

    def done(self) -> bool:
        return all(pending.done() for _, _, pending in self._entries)

    def result(self, timeout: Optional[float] = None) -> MatchResponse:
        deadline = None if timeout is None else time.monotonic() + timeout
        candidates = []
        for record, block_score, pending in self._entries:
            remaining = None if deadline is None \
                else max(deadline - time.monotonic(), 0.0)
            response = pending.result(remaining)
            candidates.append(MatchCandidate(record, block_score, response))
        candidates.sort(key=lambda c: (-c.probability, -c.block_score,
                                       c.record.record_id))
        return MatchResponse(record_id=self.record_id, candidates=candidates)


class _Request:
    __slots__ = ("pair", "pending", "arrived", "tenant", "trace",
                 "encode_seconds")

    def __init__(self, pair: CandidatePair, pending: PendingResponse,
                 arrived: float, tenant: Optional[str] = None,
                 trace: Optional[TraceContext] = None) -> None:
        self.pair = pair
        self.pending = pending
        self.arrived = arrived
        self.tenant = tenant
        self.trace = trace
        self.encode_seconds = 0.0


class MatchServer:
    """Online matching service over a hot-swappable model bundle.

    Use either mode:

    * **threaded** -- ``with server: ...`` (or ``start()``/``stop()``)
      runs the scheduler on a daemon thread; clients block on
      ``PendingResponse.result()``;
    * **synchronous driver** -- skip ``start()`` and call
      :meth:`process_once` / :meth:`score_batch` / :meth:`match` from the
      test or benchmark thread; batch formation is identical, minus the
      waiting.
    """

    def __init__(self, bundle: ModelBundle,
                 config: Optional[ServerConfig] = None,
                 index: Optional[ServingIndex] = None,
                 dense_index=None,
                 clk_index=None,
                 clk_threshold: float = 0.8,
                 candidate_mode: str = "sparse",
                 tenants=None,
                 slo: Optional[SloTracker] = None,
                 drift: Optional[DriftMonitor] = None,
                 monitor: bool = True) -> None:
        self.config = config if config is not None else ServerConfig()
        #: per-tenant SLO bookkeeping and score-drift monitoring. Both are
        #: pure accounting over values the scoring path already computed
        #: (no rng, no output effect), so they default on. ``monitor=False``
        #: disables them -- pool replicas run that way because the router
        #: owns the pool-level trackers and a per-replica view would
        #: double-count. Pass explicit instances to share trackers (the
        #: pool's serial fallback does).
        if monitor:
            self.slo: Optional[SloTracker] = slo if slo is not None \
                else SloTracker()
            self.drift: Optional[DriftMonitor] = drift if drift is not None \
                else DriftMonitor()
        else:
            self.slo = slo
            self.drift = drift
        self._monitor = monitor
        #: stitched request traces (tracing sessions only, lazily built)
        self.request_tracer: Optional[RequestTracer] = None
        #: optional repro.serve.tenants.TenantRegistry; when present,
        #: requests may carry a tenant id and the scheduler binds that
        #: tenant's delta (or fuses several soft-prompt tenants into one
        #: batch) before scoring
        self.tenants = tenants
        if tenants is not None:
            tenants.attach(bundle.model)
        self.index = index if index is not None else ServingIndex()
        #: optional repro.serve.dense.DenseCandidateIndex; when present the
        #: catalog helpers keep it in lockstep with the sparse index and
        #: ``candidate_mode`` selects which one answers match queries
        self.dense_index = dense_index
        #: optional repro.privacy.ClkCandidateIndex; the PPRL catalog of
        #: packed Bloom filters. With an encoder attached (single-party
        #: mode) it tracks the plaintext catalog and can answer regular
        #: match queries; without one (cross-party mode) it only ever sees
        #: filter bytes + ids, and Dice scoring via :meth:`clk_match` is
        #: the sole query path -- the server holds nothing reversible
        self.clk_index = clk_index
        #: Dice score at or above which a CLK candidate counts as a match
        self.clk_threshold = clk_threshold
        self._candidate_mode = "sparse"
        self.set_candidate_mode(candidate_mode)
        self._swap_lock = threading.Lock()
        self._bundle = bundle
        self._version = 1
        self._queue: Deque[_Request] = deque()
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._closed = False
        self._batch_id = 0
        self.batch_log: List[dict] = []
        self.shed_count = 0
        self.request_count = 0
        self.response_count = 0
        self.error_count = 0
        self.engine = InferenceEngine(EngineConfig(
            token_budget=self.config.token_budget,
            max_batch_pairs=self.config.max_batch_pairs,
            cache_capacity=self.config.cache_capacity))

    # ------------------------------------------------------------------
    # Bundle management
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        with self._swap_lock:
            return self._version

    @property
    def bundle(self) -> ModelBundle:
        with self._swap_lock:
            return self._bundle

    def swap(self, bundle: ModelBundle) -> int:
        """Atomically install ``bundle``; scheduler adopts it at the next
        batch boundary. Returns the new version number."""
        with self._swap_lock:
            self._bundle = bundle
            self._version += 1
            version = self._version
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("serve.swaps").inc()
            tel.metrics.gauge("serve.model_version").set(version)
            tel.event("serve.swap", version=version, bundle=bundle.name)
        return version

    def _snapshot(self) -> Tuple[ModelBundle, int]:
        with self._swap_lock:
            return self._bundle, self._version

    # ------------------------------------------------------------------
    # Candidate generation (sparse token index vs dense ANN index)
    # ------------------------------------------------------------------
    @property
    def candidate_mode(self) -> str:
        return self._candidate_mode

    def set_candidate_mode(self, mode: str) -> str:
        """Select the candidate generator for match queries: ``"sparse"``
        (token overlap, always available), ``"dense"`` (ANN over
        embeddings; requires a ``dense_index``), or ``"clk"`` (Dice over
        packed Bloom filters; requires a ``clk_index``). Admin-flippable
        at runtime -- in-flight queries finish on the index they probed."""
        if mode not in ("sparse", "dense", "clk"):
            raise ValueError(
                "candidate_mode must be 'sparse', 'dense', or 'clk'")
        if mode == "dense" and self.dense_index is None:
            raise ValueError("no dense index configured")
        if mode == "clk" and self.clk_index is None:
            raise ValueError("no clk index configured")
        self._candidate_mode = mode
        tel = get_telemetry()
        if tel.enabled:
            tel.event("serve.candidate_mode", mode=mode)
        return mode

    def _candidate_index(self):
        if self._candidate_mode == "dense":
            return self.dense_index
        if self._candidate_mode == "clk":
            return self.clk_index
        return self.index

    def _candidate_index_kind(self) -> str:
        """Human-readable kind of the index behind ``candidate_mode``
        (lock-free: healthz includes it on every probe)."""
        if self._candidate_mode == "dense":
            ann = type(self.dense_index.index).__name__ \
                if self.dense_index is not None else "?"
            return f"dense:{ann.replace('Index', '').lower()}"
        if self._candidate_mode == "clk":
            return "clk"
        return "sparse:token-overlap"

    def catalog_add(self, records) -> int:
        """Add records to every configured candidate index (sparse always,
        dense when present, clk when it can encode), keeping the catalogs
        hot-add consistent. Returns the number of ids new to the sparse
        index."""
        records = list(records)
        fresh = self.index.add_many(records)
        if self.dense_index is not None:
            self.dense_index.add_many(records)
        if self.clk_index is not None and self.clk_index.encoder is not None:
            # single-party mode only: a cross-party clk index holds no
            # salt, so plaintext adds cannot reach it -- filters arrive
            # pre-encoded via catalog_add_clk instead
            self.clk_index.add_many(records)
        return fresh

    def catalog_size(self) -> int:
        """Records in the (sparse) catalog -- the transports use this so a
        :class:`~repro.serve.pool.ServingPool` can stand in for a server."""
        return len(self.index)

    def catalog_remove(self, record_ids) -> int:
        """Remove ids from every configured candidate index; returns how
        many held the id somewhere (sparse or clk -- in a filters-only
        deployment the sparse index is empty, mirroring the pool's
        plain-or-filter accounting)."""
        removed = 0
        for record_id in record_ids:
            dropped = self.index.remove(record_id)
            if self.dense_index is not None:
                self.dense_index.remove(record_id)
            if self.clk_index is not None:
                dropped = self.clk_index.remove(record_id) or dropped
            if dropped:
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # CLK-only path (cross-party PPRL; see docs/PRIVACY.md)
    # ------------------------------------------------------------------
    def catalog_add_clk(self, entries) -> int:
        """Add pre-encoded ``(record_id, packed filter)`` entries.

        The cross-party ingest path: nothing here touches the sparse or
        dense indexes (there is no plaintext to give them), and in a
        filters-only deployment this is the *only* write path -- which is
        what the no-plaintext serving test leans on. Returns the number
        of new ids (re-adds replace in place)."""
        if self.clk_index is None:
            raise ValueError("no clk index configured")
        fresh = self.clk_index.add_clk_many(entries)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("privacy.clk.catalog_adds").inc()
        return fresh

    def clk_catalog_size(self) -> int:
        """Filters in the CLK catalog (transport symmetry with
        :meth:`catalog_size`; a pool exposes the same method)."""
        if self.clk_index is None:
            raise ValueError("no clk index configured")
        return len(self.clk_index)

    def clk_match(self, record_id: str, clk, k: Optional[int] = None
                  ) -> "ClkMatchResponse":
        """Dice top-k over the CLK catalog for one pre-encoded query.

        This is the CLK-only *scoring* mode: the similarity itself is the
        score (no model forward, no queue -- a popcount kernel answers in
        microseconds), and candidates at or above ``clk_threshold`` are
        flagged as matches. Request and response carry only ids, filter
        bytes, and scores."""
        if self.clk_index is None:
            raise ValueError("no clk index configured")
        k = self.config.default_top_k if k is None else k
        started = time.perf_counter()
        found = self.clk_index.search(np.asarray(clk, dtype=np.uint64), k)
        candidates = [
            ClkCandidate(rid, score, score >= self.clk_threshold)
            for rid, score in found]
        self.request_count += 1
        self.response_count += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("privacy.clk.requests").inc()
            tel.metrics.quantiles("privacy.clk.match_seconds").observe(
                time.perf_counter() - started)
            tel.metrics.histogram("privacy.clk.candidates").observe(
                len(candidates))
        return ClkMatchResponse(record_id=record_id, candidates=candidates,
                                threshold=self.clk_threshold)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, pair: CandidatePair,
               tenant: Optional[str] = None) -> PendingResponse:
        """Queue one score request; raises :class:`Overloaded` when full.

        ``tenant`` routes the request to that tenant's delta; unknown
        tenants are rejected here, at admission, so a typo never costs a
        queue slot."""
        return self._submit_many([pair], tenant=tenant)[0]

    def _submit_many(self, pairs: Sequence[CandidatePair],
                     tenant: Optional[str] = None) -> List[PendingResponse]:
        """All-or-nothing admission of a request group."""
        if tenant is not None:
            from .tenants import UnknownTenant

            if self.tenants is None or not self.tenants.has(tenant):
                raise UnknownTenant(tenant)
        now = time.perf_counter()
        tel = get_telemetry()
        tracing = self._monitor and tel.enabled and getattr(tel, "trace",
                                                            False)
        with self._cond:
            if self._closed:
                raise Overloaded("server is stopped",
                                 queue_depth=len(self._queue))
            if len(self._queue) + len(pairs) > self.config.max_queue:
                self.shed_count += 1
                depth = len(self._queue)
                if self.slo is not None:
                    self.slo.observe_shed(tenant, len(pairs))
                if tel.enabled:
                    tel.metrics.counter("serve.shed").inc()
                raise Overloaded(
                    f"queue full ({depth}/{self.config.max_queue})",
                    queue_depth=depth)
            pendings = []
            for pair in pairs:
                pending = PendingResponse()
                ctx = None
                if tracing:
                    ctx = TraceContext.admit(tenant, now=now)
                    # standalone server: dispatch == admission (no router
                    # hop); the pool stamps real dispatch times itself
                    ctx.dispatched(now=now)
                self._queue.append(_Request(pair, pending, now,
                                            tenant=tenant, trace=ctx))
                pendings.append(pending)
            self.request_count += len(pairs)
            depth = len(self._queue)
            self._cond.notify_all()
        if tel.enabled:
            tel.metrics.counter("serve.requests").inc(len(pairs))
            tel.metrics.gauge("serve.queue_depth").set(depth)
        return pendings

    def submit_match(self, record: EntityRecord,
                     k: Optional[int] = None,
                     tenant: Optional[str] = None) -> PendingMatch:
        """Queue a match query: top-k index candidates, one score request
        each (admitted atomically). No candidates -> an empty, already
        resolved response."""
        k = self.config.default_top_k if k is None else k
        candidates = self._candidate_index().candidates(record, k)
        if not candidates:
            return PendingMatch(record.record_id, [])
        pairs = [CandidatePair(record, candidate)
                 for candidate, _ in candidates]
        pendings = self._submit_many(pairs, tenant=tenant)
        entries = [(candidate, score, pending)
                   for (candidate, score), pending in zip(candidates, pendings)]
        return PendingMatch(record.record_id, entries)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _encoding_length(self, model, pair: CandidatePair) -> int:
        return len(self.engine.encodings(model, [pair])[0])

    def _safe_length(self, model, request: _Request) -> Optional[int]:
        """Encoding length of a request, failing its pending on encode
        errors so one malformed record rejects one request instead of
        poisoning the batch (or the scheduler loop) it would have joined."""
        try:
            started = time.perf_counter()
            length = self._encoding_length(model, request.pair)
            request.encode_seconds = time.perf_counter() - started
            return length
        except Exception as error:
            request.pending._fail(error)
            self.error_count += 1
            if self.slo is not None:
                self.slo.observe_error(request.tenant)
            tel = get_telemetry()
            if tel.enabled:
                tel.metrics.counter("serve.request_errors").inc()
            return None

    def _batch_compatible(self, batch: List[_Request],
                          request: _Request) -> bool:
        """May ``request`` join ``batch``? Same tenant always; different
        tenants only when fusion is on and both sides are pure soft-prompt
        deltas (or the base model), so one fused fastpath call can score
        the whole batch. Adapter tenants mutate the transformer stack and
        therefore batch same-tenant-only."""
        anchor = batch[0].tenant
        if request.tenant == anchor:
            return True
        registry = self.tenants
        if registry is None or not self.config.fuse_tenants:
            return False
        try:
            return registry.fusable(anchor) and registry.fusable(request.tenant)
        except Exception:
            return False

    def _form_batch(self, model, wait: bool) -> List[_Request]:
        """Drain a micro-batch: first request opens it, the max-wait
        deadline / row cap / token budget close it. FIFO order is kept; a
        request that would blow the budget -- or that names a tenant the
        open batch cannot share a forward pass with -- is pushed back (in
        arrival order) for the next batch, and a request whose record
        cannot be encoded is failed individually and skipped."""
        cfg = self.config
        batch: List[_Request] = []
        deferred: List[_Request] = []
        longest = 0
        deadline = None
        while len(batch) < cfg.max_batch_pairs:
            with self._cond:
                if batch and not self._queue and deadline is not None:
                    remaining = deadline - time.monotonic()
                    while remaining > 0 and not self._queue and self._running:
                        self._cond.wait(remaining)
                        remaining = deadline - time.monotonic()
                if not self._queue:
                    break
                request = self._queue.popleft()
            if batch and not self._batch_compatible(batch, request):
                deferred.append(request)
                continue
            length = self._safe_length(model, request)
            if length is None:
                continue
            if batch and (len(batch) + 1) * max(longest, length) \
                    > cfg.token_budget:
                deferred.append(request)
                break
            batch.append(request)
            longest = max(longest, length)
            if deadline is None and wait:
                deadline = time.monotonic() + cfg.max_wait_s
        if deferred:
            # back to the FRONT in original relative order: the next batch
            # opens with the oldest deferred request, so an incompatible
            # tenant is delayed at most one batch, never starved
            with self._cond:
                self._queue.extendleft(reversed(deferred))
        return batch

    def _score_pairs(self, model, pairs: Sequence[CandidatePair],
                     tenants: Sequence[Optional[str]]) -> np.ndarray:
        """Score one formed batch, binding tenant deltas as needed.

        Single-tenant batches bind that tenant's delta onto the backbone
        and run the exact offline engine path (served probabilities stay
        bit-identical to an offline replay with the delta bound); mixed
        batches go through the registry's fused soft-prompt kernel. The
        registry re-attaches lazily after a hot swap so a batch scored on
        the pre-swap snapshot binds deltas onto that same snapshot."""
        registry = self.tenants
        if registry is None:
            return self.engine.predict_proba(model, pairs)
        if registry.model is not model:
            registry.attach(model)
        unique = set(tenants)
        if len(unique) == 1:
            registry.bind(next(iter(unique)))
            return self.engine.predict_proba(model, pairs)
        return registry.fused_probs(self.engine, pairs, tenants)

    def process_once(self, wait: bool = False) -> int:
        """Form and score one micro-batch inline; returns requests served.

        This is the synchronous driver: benchmarks and tests call it in a
        loop (or via :meth:`score_batch`) instead of running the thread.
        """
        bundle, version = self._snapshot()
        model = bundle.model
        batch = self._form_batch(model, wait=wait)
        if not batch:
            return 0
        formed = time.perf_counter()
        tel = get_telemetry()
        batch_id = self._batch_id
        self._batch_id += 1
        pairs = [request.pair for request in batch]
        tenants = [request.tenant for request in batch]
        tracing = tel.enabled and getattr(tel, "trace", False)
        forward_cpu = 0.0
        try:
            if tel.enabled:
                cpu_started = time.process_time() if tracing else 0.0
                with tel.span("serve.batch", size=len(batch),
                              version=version):
                    probs = self._score_pairs(model, pairs, tenants)
                if tracing:
                    forward_cpu = time.process_time() - cpu_started
            else:
                probs = self._score_pairs(model, pairs, tenants)
        except BaseException as error:
            for request in batch:
                request.pending._fail(error)
            if self.slo is not None:
                for request in batch:
                    self.slo.observe_error(request.tenant)
            raise
        served = time.perf_counter()
        threshold = bundle.threshold
        registry = self.tenants
        if registry is None or all(t is None for t in tenants):
            if threshold is None:
                predictions = probs.argmax(axis=1)
            else:
                predictions = (probs[:, 1] > threshold).astype(np.int64)
        else:
            # per-row decision thresholds: each tenant tunes its own
            predictions = np.zeros(len(batch), dtype=np.int64)
            for row, tenant in enumerate(tenants):
                cut = registry.threshold_for(tenant, threshold)
                predictions[row] = (int(probs[row].argmax()) if cut is None
                                    else int(probs[row, 1] > cut))
        cpu_share = forward_cpu / len(batch) if tracing else 0.0
        for row, request in enumerate(batch):
            trace_payload = None
            if tracing:
                trace_payload = {
                    "encode_seconds": request.encode_seconds,
                    "forward_cpu_seconds": cpu_share,
                }
            if request.trace is not None:
                # standalone tracing mode: stitch the tree right here (the
                # pool stitches router-side instead, from the pipe
                # payload) and hand the caller the finished tree
                if self.request_tracer is None:
                    self.request_tracer = RequestTracer()
                queue_wall = max(formed - request.arrived
                                 - request.encode_seconds, 0.0)
                tree = stitch_trace(
                    request.trace, t_done=served,
                    queue_seconds=queue_wall,
                    batch_seconds=request.encode_seconds,
                    forward_seconds=served - formed,
                    forward_cpu_seconds=cpu_share,
                    batch_id=batch_id, batch_size=len(batch))
                self.request_tracer.record(tree)
                tel.event("serve.trace", **tree)
                trace_payload = tree
            request.pending._resolve(ScoreResponse(
                probs=probs[row], prediction=int(predictions[row]),
                model_version=version, bundle_name=bundle.name,
                batch_id=batch_id, batch_size=len(batch),
                queue_seconds=formed - request.arrived,
                service_seconds=served - formed,
                tenant=request.tenant, trace=trace_payload))
        self.response_count += len(batch)
        self._observe_served(batch, probs, predictions, bundle, version,
                             served, tel)
        if registry is not None:
            for tenant in set(tenants):
                registry.note_request(tenant, tenants.count(tenant))
        if self.config.record_batches:
            self.batch_log.append({"batch_id": batch_id, "version": version,
                                   "pairs": pairs, "tenants": tenants})
        if tel.enabled:
            metrics = tel.metrics
            metrics.counter("serve.responses").inc(len(batch))
            metrics.counter("serve.batches").inc()
            metrics.histogram("serve.batch_size").observe(len(batch))
            metrics.timer("serve.batch_seconds").observe(served - formed)
            quantiles = metrics.quantiles("serve.request_seconds")
            for request in batch:
                quantiles.observe(served - request.arrived)
            with self._cond:
                depth = len(self._queue)
            metrics.gauge("serve.queue_depth").set(depth)
        return len(batch)

    def _observe_served(self, batch: List[_Request], probs: np.ndarray,
                        predictions: np.ndarray, bundle: ModelBundle,
                        version: int, served: float, tel) -> None:
        """Feed the SLO tracker and drift monitor from one scored batch.

        Pure bookkeeping over values scoring already produced -- it runs
        after every pending is resolved and can change nothing a client
        sees, which is what keeps telemetry-on/off outputs bit-identical.
        """
        if self.slo is not None:
            for request in batch:
                self.slo.observe(request.tenant, served - request.arrived)
        if self.drift is None:
            return
        version_key = f"{bundle.name}@{version}"
        rows_by_tenant: dict = {}
        for row, request in enumerate(batch):
            rows_by_tenant.setdefault(request.tenant, []).append(row)
        fired = []
        for tenant, rows in sorted(rows_by_tenant.items(),
                                   key=lambda item: item[0] or ""):
            fired.extend(self.drift.observe(
                tenant,
                [float(probs[row, 1]) for row in rows],
                [int(predictions[row]) for row in rows],
                version=version_key))
        if tel.enabled:
            for event in fired:
                tel.metrics.counter("serve.drift.events").inc()
                tel.event("serve.drift", **event)
            tel.metrics.gauge("serve.drift.active").set(
                1.0 if self.drift.active else 0.0)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._running and not self._queue:
                    return
            try:
                self.process_once(wait=True)
            except Exception:
                # process_once already failed the batch's pendings before
                # re-raising, so those clients got the error; the scheduler
                # must outlive a bad batch or everything still queued (and
                # every future request) would hang until timeout.
                self.error_count += 1
                tel = get_telemetry()
                if tel.enabled:
                    tel.metrics.counter("serve.batch_errors").inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MatchServer":
        if self.is_running:
            return self
        with self._cond:
            self._closed = False
            self._running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-scheduler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting requests; by default the scheduler finishes the
        queue before exiting so nothing queued is dropped."""
        thread = self._thread
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    request = self._queue.popleft()
                    request.pending._fail(
                        Overloaded("server stopped before scoring"))
            self._running = False
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if drain:
            while True:
                with self._cond:
                    depth = len(self._queue)
                try:
                    if not self.process_once():
                        break
                except Exception as error:
                    # the failed batch's pendings carry the error; keep
                    # draining so the rest of the queue is still answered
                    self.error_count += 1
                    with self._cond:
                        stuck = len(self._queue) >= depth
                        leftovers = list(self._queue) if stuck else []
                        if stuck:
                            self._queue.clear()
                    if stuck:
                        # no progress: the failure precedes batch
                        # formation (e.g. a snapshot/adopt error), so
                        # retrying would spin forever -- fail what's
                        # left and bail out
                        for request in leftovers:
                            try:
                                request.pending._fail(error)
                            except RuntimeError:  # resolved in a race
                                pass
                        break

    def __enter__(self) -> "MatchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Synchronous conveniences
    # ------------------------------------------------------------------
    def score(self, pair: CandidatePair,
              timeout: Optional[float] = None,
              tenant: Optional[str] = None) -> ScoreResponse:
        """Submit one pair and wait for its response (threaded mode), or
        score it inline when no scheduler thread is running."""
        pending = self.submit(pair, tenant=tenant)
        if not self.is_running:
            while not pending.done():
                self.process_once()
        return pending.result(timeout)

    def score_batch(self, pairs: Sequence[CandidatePair],
                    timeout: Optional[float] = None,
                    tenants: Optional[Sequence[Optional[str]]] = None
                    ) -> List[ScoreResponse]:
        """Score many pairs through the full admission + batching path.

        Respects the queue bound by draining inline (no thread) or backing
        off briefly (threaded) when admission sheds. ``tenants`` routes
        each pair to its tenant's delta (one id per pair).
        """
        if tenants is None:
            tenants = [None] * len(pairs)
        elif len(tenants) != len(pairs):
            raise ValueError("one tenant id per pair required")
        pendings: List[PendingResponse] = []
        for pair, tenant in zip(pairs, tenants):
            while True:
                try:
                    pendings.append(self.submit(pair, tenant=tenant))
                    break
                except Overloaded:
                    if self.is_running:
                        time.sleep(0.0005)
                    else:
                        self.process_once()
        if not self.is_running:
            while any(not pending.done() for pending in pendings):
                if not self.process_once():
                    break
        return [pending.result(timeout) for pending in pendings]

    def match(self, record: EntityRecord, k: Optional[int] = None,
              timeout: Optional[float] = None,
              tenant: Optional[str] = None) -> MatchResponse:
        """Top-k candidates for ``record``, scored and ranked."""
        pending = self.submit_match(record, k, tenant=tenant)
        if not self.is_running:
            while not pending.done():
                if not self.process_once():
                    break
        return pending.result(timeout)

    # ------------------------------------------------------------------
    # Observability surfaces (duck-typed: ServingPool offers the same)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness payload for ``GET /healthz`` (no locks beyond
        the queue/swap peeks, no scoring, safe for LB probes)."""
        with self._cond:
            depth = len(self._queue)
        bundle, version = self._snapshot()
        payload = {
            "mode": "single",
            "model_version": version,
            "bundle": bundle.name,
            "catalog_size": len(self.index),
            "candidate_mode": self._candidate_mode,
            "candidate_index": self._candidate_index_kind(),
            "queue_depth": depth,
            "scheduler_running": self.is_running,
        }
        if self.clk_index is not None:
            payload["clk_catalog_size"] = len(self.clk_index)
        if self.tenants is not None:
            tstats = self.tenants.stats()
            payload["tenants"] = {
                "registered": tstats["registered"],
                "loaded": tstats["loaded"],
                "capacity": tstats["capacity"],
            }
        return payload

    def slo_snapshot(self) -> dict:
        """Per-tenant SLO compliance plus drift state for ``GET /slo``."""
        return {
            "slo": self.slo.snapshot() if self.slo is not None else None,
            "drift": self.drift.snapshot() if self.drift is not None
            else None,
            "traces": (self.request_tracer.snapshot()
                       if self.request_tracer is not None else None),
        }

    def metrics_snapshot(self) -> dict:
        """The active registry's snapshot, shaped like the pool's merged
        view (one source) so ``GET /metrics`` is mode-agnostic."""
        snap = get_telemetry().metrics.snapshot()
        return {"merged": snap, "sources": {"server": snap}}

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus the underlying engine's stats."""
        with self._cond:
            depth = len(self._queue)
        stats = {
            "queue_depth": depth,
            "requests": self.request_count,
            "responses": self.response_count,
            "shed": self.shed_count,
            "errors": self.error_count,
            "batches": self._batch_id,
            "model_version": self.version,
            "bundle": self.bundle.name,
            "candidate_mode": self._candidate_mode,
            "index": self.index.stats(),
            "engine": self.engine.stats_dict(),
        }
        if self.dense_index is not None:
            stats["dense_index"] = self.dense_index.stats()
        if self.clk_index is not None:
            stats["clk_index"] = self.clk_index.stats()
        if self.tenants is not None:
            stats["tenants"] = self.tenants.stats()
        return stats
